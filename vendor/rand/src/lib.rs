//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API subset the workspace uses — `Rng`,
//! `SeedableRng`, `rngs::StdRng`, `rngs::SmallRng` and
//! `seq::SliceRandom` — backed by the xoshiro256** generator seeded via
//! SplitMix64. Streams are deterministic per seed but intentionally make
//! no attempt to match upstream `rand`'s byte-for-byte output; everything
//! in this repository (golden tests included) is generated against this
//! implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their full domain (the
/// stand-in for upstream's `Standard` distribution).
pub trait SampleStandard {
    /// Draws one uniform sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce uniform samples (the stand-in for upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping is overkill here;
                // a modulo draw is fine for the span sizes this repo uses.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `T`'s full domain (`f64` is `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: used to expand seeds into xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not the ChaCha12 generator of upstream `rand` — deterministic per
    /// seed, but with its own stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for v in &mut s {
                *v = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Small fast generator — same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

/// Slice helpers (the stand-in for `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2u64..=5);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
