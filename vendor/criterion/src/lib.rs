//! Offline stand-in for `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the macro/API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`] and
//! [`Bencher::iter`] — backed by a plain wall-clock timer.
//!
//! It reports mean and best ns/iter per benchmark on stdout. There is no
//! statistical analysis, outlier rejection or HTML report; numbers are
//! indicative, and the dedicated `bench_hotpath` binary is the
//! reproducible harness for this repository's performance claims.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(400);

/// Target wall-clock spent warming each benchmark up.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// A benchmark label: either a bare name or a `name/parameter` pair.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (grouped benches).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id by `bench_function`.
pub trait IntoBenchmarkLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Runs the routine under timing. Handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling for a fixed
    /// wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also calibrates how many calls fit in one sample.
        let warm_start = Instant::now();
        let mut calls: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed() / calls.max(1) as u32;
        // Aim for ~10 samples within the measure budget, at least one
        // call per sample.
        let iters_per_sample =
            ((MEASURE_BUDGET.as_nanos() / 10).saturating_div(per_call.as_nanos().max(1))).max(1);
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_label(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named set of benchmarks (prints as `group/bench`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; sampling here is wall-clock budgeted, so
    /// the requested count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_label()), &mut f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    let mut nanos: Vec<u128> = bencher.samples.iter().map(Duration::as_nanos).collect();
    nanos.sort_unstable();
    let best = nanos[0];
    let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
    println!(
        "bench {label:<50} mean {:>12} ns/iter  best {:>12} ns/iter  ({} samples)",
        mean,
        best,
        nanos.len()
    );
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).into_label(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("tetris").into_label(), "tetris");
    }
}
