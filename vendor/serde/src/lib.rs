//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides a small but functional serialization framework with the
//! same surface the workspace uses: `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(skip)]` and `#[serde(default)]`), driven through a
//! JSON-like [`Value`] tree. The sibling `serde_json` crate supplies the
//! text format on top of [`Value`].
//!
//! Design notes:
//!
//! * All numbers travel as `f64` (like JSON itself); integers above 2^53
//!   would lose precision, which nothing in this workspace serializes.
//! * Struct fields become object entries, newtype structs are
//!   transparent, unit enum variants become strings and tuple variants
//!   externally tagged objects — matching real serde's JSON conventions.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the wire format of this mini-framework.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short tag naming the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization failure: a human-readable path/description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "field missing" error.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- Primitive impls. ---

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected {expected}-tuple, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(3)];
        let back = Vec::<Option<u64>>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Num(3.0)).is_err());
        let err = bool::from_value(&Value::Null).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }

    #[test]
    fn get_field_on_objects() {
        let obj = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(obj.get_field("a"), Some(&Value::Num(1.0)));
        assert_eq!(obj.get_field("b"), None);
        assert_eq!(Value::Null.get_field("a"), None);
    }
}
