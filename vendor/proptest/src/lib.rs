//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `any::<T>()`, `prop::collection::vec`, [`ProptestConfig`] and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its inputs (via the panic
//!   message) but is not minimised;
//! * deterministic seeding — each test derives its RNG stream from the
//!   test's module path and name plus the case index, so failures
//!   reproduce exactly on re-run;
//! * default case count of 32 (tests that need more set
//!   `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Builds the RNG for one test case.
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// FNV-1a hash of a string — stable across runs, used to give every test
/// its own RNG stream.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A failed property: carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms sampled values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — enough for the seeds and probabilities the
    /// workspace samples (real proptest draws from all bit patterns).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.min >= self.size.max_excl {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max_excl)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Vectors of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// A vector-length specification: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed length.
    pub min: usize,
    /// One past the largest allowed length.
    pub max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::new_rng(
                    __base ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::new_rng(1);
        for _ in 0..1000 {
            let v = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (1u64..5).prop_map(|x| x * 10);
        let mut rng = crate::new_rng(2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v >= 10 && v < 50 && v % 10 == 0);
        }
    }

    #[test]
    fn vec_strategy_honours_sizes() {
        let mut rng = crate::new_rng(3);
        let fixed = prop::collection::vec(0.0f64..1.0, 4);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
        let ranged = prop::collection::vec(1u64..10, 1..12);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((1..12).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, pair in (0usize..4, 0.0f64..1.0)) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4);
            prop_assert!((0.0..1.0).contains(&pair.1));
        }

        #[test]
        fn macro_supports_any(seed in any::<u64>()) {
            let _ = seed;
            prop_assert_eq!(1 + 1, 2);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails`")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
