//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! tree to JSON text and parses it back with a recursive-descent parser.
//!
//! Numbers that are finite, integral and below 2^53 in magnitude are
//! printed without a decimal point (matching how real serde_json prints
//! integers); non-finite numbers become `null`, as JSON has no NaN.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;

/// Any serialization / deserialization / IO failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Infallible for this implementation; `Result` kept for API parity.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for this implementation; `Result` kept for API parity.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Writes compact JSON to `writer`.
///
/// # Errors
///
/// Returns any IO error from the writer.
pub fn to_writer<W: Write, T: serde::Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Writes pretty-printed JSON to `writer`.
///
/// # Errors
///
/// Returns any IO error from the writer.
pub fn to_writer_pretty<W: Write, T: serde::Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatches.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Reads all of `reader` and parses it as JSON.
///
/// # Errors
///
/// Returns IO errors from the reader and parse errors from the text.
pub fn from_reader<R: Read, T: serde::Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// --- Printing. ---

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parsing. ---

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]` at byte {}, found `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}` at byte {}, found `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("non-ascii \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's printer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: re-borrow from the source text.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated utf-8".into()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-2.25e2").unwrap(), -225.0);
        assert_eq!(from_str::<bool>(" false ").unwrap(), false);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.5, -3.0];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2.5,-3]");
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "line\none \"two\" \\ tab\t";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn objects_parse() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        assert_eq!(
            v.get_field("a"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]))
        );
        assert_eq!(v.get_field("b").unwrap().get_field("c"), Some(&Value::Null));
    }

    #[test]
    fn pretty_print_is_parseable() {
        let v = Value::Obj(vec![
            ("x".into(), Value::Arr(vec![Value::Num(1.0)])),
            ("y".into(), Value::Str("hi".into())),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn errors_reported() {
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nope").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn nonfinite_prints_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
