//! Derive macros for the vendored `serde` stand-in.
//!
//! crates.io is unreachable in this build environment, so `syn`/`quote`
//! are unavailable; instead the item is parsed with a small hand-rolled
//! token walker that supports exactly the shapes this workspace derives:
//!
//! * structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(default)]`),
//! * tuple structs (newtypes serialize transparently),
//! * enums with unit and tuple variants (externally tagged, as in JSON
//!   serde).
//!
//! Generics, struct variants and the wider serde attribute language are
//! rejected with a compile error naming the offending item so the gap is
//! obvious if future code needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// One parsed enum variant: unit (`arity == 0`) or tuple.
struct Variant {
    name: String,
    arity: usize,
}

/// The shapes this derive supports.
enum Shape {
    Named {
        name: String,
        fields: Vec<Field>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Unit {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

// --- Parsing. ---

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes a `#[...]` attribute if one is next; returns its tokens.
    fn take_attr(&mut self) -> Option<TokenStream> {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == '#' {
                self.pos += 1;
                match self.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        return Some(g.stream());
                    }
                    _ => {}
                }
                return Some(TokenStream::new());
            }
        }
        None
    }

    /// Consumes attributes, returning (skip, default) serde flags.
    fn take_attrs(&mut self) -> (bool, bool) {
        let (mut skip, mut default) = (false, false);
        while let Some(attr) = self.take_attr() {
            let mut inner = Cursor::new(attr);
            if let Some(TokenTree::Ident(id)) = inner.next() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(g)) = inner.next() {
                        for t in g.stream() {
                            if let TokenTree::Ident(flag) = t {
                                match flag.to_string().as_str() {
                                    "skip" | "skip_serializing" | "skip_deserializing" => {
                                        skip = true;
                                    }
                                    "default" => default = true,
                                    _ => {}
                                }
                            }
                        }
                    }
                }
            }
        }
        (skip, default)
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Consumes tokens of a type until a top-level comma (or the end),
    /// tracking `<`/`>` nesting.
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Shape, String> {
    let mut c = Cursor::new(input);
    // Item-level attributes and visibility.
    loop {
        if c.take_attr().is_some() {
            continue;
        }
        break;
    }
    c.skip_visibility();
    let kind = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generics (on `{name}`)"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Named {
                name,
                fields: parse_named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::Tuple {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                variants: parse_variants(g.stream(), &name)?,
                name,
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let (skip, default) = c.take_attrs();
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        c.skip_type();
        c.next(); // the comma, if any
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        let _ = c.take_attrs();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        c.skip_type();
        c.next(); // comma
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream, enum_name: &str) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        let _ = c.take_attrs();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let mut arity = 0;
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_tuple_fields(g.stream());
                c.pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde stand-in derive does not support struct variants \
                     (`{enum_name}::{name}`)"
                ));
            }
            _ => {}
        }
        // Optional discriminant `= expr`.
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                c.pos += 1;
                c.skip_type();
            }
        }
        c.next(); // comma
        variants.push(Variant { name, arity });
    }
    Ok(variants)
}

// --- Code generation (string-built, parsed back into a TokenStream). ---

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "entries.push(({:?}.to_string(), \
                     ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Obj(entries)\n}}\n}}"
            )
        }
        Shape::Tuple { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                if v.arity == 0 {
                    arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    ));
                } else {
                    let binders: Vec<String> = (0..v.arity).map(|i| format!("f{i}")).collect();
                    let values: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    let payload = if v.arity == 1 {
                        values[0].clone()
                    } else {
                        format!("::serde::Value::Arr(vec![{}])", values.join(", "))
                    };
                    arms.push_str(&format!(
                        "{name}::{vn}({binds}) => ::serde::Value::Obj(vec![\
                         ({vn:?}.to_string(), {payload})]),\n",
                        binds = binders.join(", ")
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{field}: match v.get_field({field:?}) {{\n\
                         Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                         None => ::std::default::Default::default(),\n}},\n",
                        field = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{field}: match v.get_field({field:?}) {{\n\
                         Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                         None => return ::std::result::Result::Err(\
                         ::serde::DeError::missing({field:?})),\n}},\n",
                        field = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !matches!(v, ::serde::Value::Obj(_)) {{\n\
                 return ::std::result::Result::Err(\
                 ::serde::DeError::expected(concat!(\"struct `\", stringify!({name}), \"`\"), v));\n}}\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Shape::Tuple { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                     ::serde::Value::Arr(items) if items.len() == {arity} => \
                     ::std::result::Result::Ok({name}({fields})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\
                     concat!(\"{arity}-element array for `\", stringify!({name}), \"`\"), other)),\n}}",
                    fields = items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}"
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ \
             ::std::result::Result::Ok({name}) }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                if v.arity == 0 {
                    unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    ));
                } else if v.arity == 1 {
                    tagged_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    ));
                } else {
                    let items: Vec<String> = (0..v.arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    tagged_arms.push_str(&format!(
                        "{vn:?} => match inner {{\n\
                         ::serde::Value::Arr(items) if items.len() == {arity} => \
                         ::std::result::Result::Ok({name}::{vn}({fields})),\n\
                         other => ::std::result::Result::Err(::serde::DeError::expected(\
                         \"{arity}-element array\", other)),\n}},\n",
                        arity = v.arity,
                        fields = items.join(", ")
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{other}}` of `{name}`\"))),\n}},\n\
                 ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                 \"unknown variant `{{other}}` of `{name}`\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\
                 concat!(\"enum `\", stringify!({name}), \"`\"), other)),\n}}\n}}\n}}"
            )
        }
    }
}
