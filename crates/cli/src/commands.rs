//! The subcommand implementations.

use std::error::Error;

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{
    execute_multi_under_faults, execute_under_faults, Action, ArrivalProcess, ArrivalStreamSpec,
    ClusterSpec, CpScheduler, Dag, Env, FaultProfile, FeatureConfig, Graphene, JctReport, JobQueue,
    JobSource, MachineProfile, MctsConfig, MctsScheduler, MetricsRegistry, MultiJobEnv, Obs,
    ObservedScheduler, PolicyNetwork, RandomScheduler, ResourceVec, Scheduler, SjfScheduler,
    SyntheticTraceSpec, TetrisScheduler, Trace, TraceStats, TransferMode, TreeParallelMcts,
};

use crate::args::Args;

/// The `help` text.
pub const HELP: &str = "\
spear-cli — dependency-aware task scheduling with MCTS + deep RL

USAGE:
  spear-cli generate [--tasks 100] [--seed 0] [--trace] [--output file.json]
  spear-cli schedule (--dag file.json | --stg file.stg [--drop-dummies])
                     [--algo spear|mcts|tetris|sjf|cp|graphene|random]
                     [--budget 100] [--min-budget 50] [--policy policy.json]
                     [--capacity 1.0] [--seed 0] [--gantt] [--no-eval-cache]
                     [--machines 1] [--bandwidth 4]
                     [--transfer-mode direct|via-master]
                     [--nn-precision exact|fast]
                     [--search-threads 1] [--leaf-batch 8]
                     [--faults 0.0] [--straggler 1.5] [--max-retries 3]
                     [--metrics-out metrics.jsonl]
  spear-cli schedule --arrivals poisson|periodic [--jobs 20] [--job-tasks 8]
                     [--mean-gap 8.0 | --gap 8] [--trace-file trace.json]
                     [--horizon N] [--algo ...] [... as above]
  spear-cli train    [--profile tiny|fast|paper] --output policy.json
                     [--metrics-out metrics.jsonl]
  spear-cli evaluate [--tasks 100] [--dags 5] [--seed 0] [--budget 200]
                     [--metrics-out metrics.jsonl]
  spear-cli stats    (--dag file.json | --stg file.stg | --trace-file file.json)

All demands/capacities are fractions of a two-dimensional (CPU, memory)
cluster unless the input file says otherwise.

--nn-precision selects the numeric mode of the DRL policy's inference
inside the search: `exact` (the default) runs the training-grade f64
forward pass and is bit-identical to previous releases; `fast` runs a
lane-padded f32 snapshot of the weights (and doubles the eval cache's
capacity at the same memory budget) for speed, at a bounded makespan-
quality cost validated by the differential judges. Training is always
f64; only search-time inference changes.

--search-threads > 1 runs the mcts/spear searches tree-parallel: the
workers share one tree (virtual-loss decorrelated) and DRL leaf
inference is batched --leaf-batch rows at a time. At 1 (the default)
the search is sequential and bit-identical to previous releases.

--arrivals switches `schedule` to the online multi-job mode: a seeded
stream of jobs (random layered DAGs, or a trace's jobs with
--trace-file) arrives over time — Poisson with --mean-gap, or every
--gap slots — and the scheduler works the whole stream through one
continuous episode. The report is per-job completion times (mean, p50,
p99 JCT and the slowdown-spread unfairness) instead of one makespan.
--horizon caps the episode's wall clock: jobs not fully scheduled by
then count as unfinished.

--faults injects seeded failures and stragglers at *execution* time:
the scheduler still plans against the fault-free DAG, then the plan is
executed under a deterministic per-(task, attempt) fault plan derived
from --seed. Both the failure and the straggler probability are set to
the --faults rate. A failing attempt frees its resources mid-run and
the task re-queues (dependencies unchanged) until --max-retries extra
attempts are exhausted, which aborts the run with a typed error; a
straggling attempt occupies the cluster --straggler times longer than
its runtime. The realized makespan (or, with --arrivals, the realized
JCT report) is printed next to the planned one.

--machines > 1 plans against a seeded heterogeneous cluster instead of
one box: machine 0 keeps the full --capacity, later machines shrink by
a seeded factor, and every placement names its machine. A task whose
parent ran elsewhere waits for a deterministic transfer of the edge's
payload — ceil(bytes / link bandwidth) slots over the direct link, or
up then down the master uplinks with --transfer-mode via-master.
--bandwidth sets the baseline link speed in bytes per slot. The same
--seed always yields the same machine set, payload sizes and schedule.
With --machines 1 (explicitly) the degenerate one-machine cluster
reproduces the single-box schedule exactly.

--metrics-out writes every metric recorded during the run as JSON lines
(one metric per line). Metric recording is compiled in behind the `obs`
cargo feature; without it the flag still works but the file only notes
that the build has metrics compiled out.";

/// An active registry when `--metrics-out` was given (plus the path).
fn metrics_registry(args: &Args) -> (MetricsRegistry, Option<String>) {
    match args.get("metrics-out") {
        Some(path) => {
            if !spear::obs::compiled() {
                eprintln!(
                    "note: this build has metrics compiled out; \
                     rebuild with `--features obs` for real data"
                );
            }
            (MetricsRegistry::new(), Some(path.to_owned()))
        }
        None => (MetricsRegistry::disabled(), None),
    }
}

/// Writes the registry snapshot as JSONL if `--metrics-out` was given.
fn write_metrics(registry: &MetricsRegistry, path: Option<&str>) -> Result<(), Box<dyn Error>> {
    let Some(path) = path else { return Ok(()) };
    let body = if spear::obs::compiled() {
        registry.snapshot().to_jsonl()
    } else {
        "{\"note\":\"metrics compiled out; rebuild with --features obs\"}\n".to_owned()
    };
    std::fs::write(path, body)?;
    eprintln!("wrote metrics to {path}");
    Ok(())
}

/// The unreliable-cluster knobs of `schedule`: `--faults <rate>` sets both
/// the failure and the straggler probability, `--straggler` the slowdown
/// factor, `--max-retries` the per-task retry budget. Without `--faults`
/// the profile is null and execution stays bit-identical to the fault-free
/// simulator.
fn fault_profile(args: &Args) -> Result<FaultProfile, Box<dyn Error>> {
    let rate: f64 = args.get_or("faults", 0.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--faults {rate} outside [0, 1]").into());
    }
    if rate == 0.0 {
        return Ok(FaultProfile::none());
    }
    Ok(FaultProfile {
        straggler_factor: args.get_or("straggler", 1.5)?,
        max_retries: args.get_or("max-retries", 3)?,
        ..FaultProfile::with_rate(rate)
    })
}

/// `Some(value)` as its display form, `None` as `n/a` — JCT statistics
/// are absent (not zero) when no job completed.
fn opt_stat<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "n/a".to_owned(), |x| x.to_string())
}

/// The cluster the schedulers plan against: a single box of `--capacity`
/// by default, or — with `--machines N` — a seeded heterogeneous set of
/// `N` machines linked at `--bandwidth` bytes/slot with `--transfer-mode`
/// routing (machine 0 keeps the full `--capacity`, so single-box
/// workloads stay admissible).
fn cluster_spec(dims: usize, args: &Args) -> Result<ClusterSpec, Box<dyn Error>> {
    let capacity: f64 = args.get_or("capacity", 1.0)?;
    let machines: usize = args.get_or("machines", 1)?;
    // Validate the mode even on the single-box path below, so a typo'd
    // value never silently degrades to a default.
    let mode = match args.get("transfer-mode") {
        Some(raw) => TransferMode::parse(raw).map_err(|e| format!("--transfer-mode: {e}"))?,
        None => TransferMode::Direct,
    };
    if machines <= 1 && args.get("machines").is_none() {
        return Ok(ClusterSpec::new(ResourceVec::splat(dims, capacity))?);
    }
    let profile = MachineProfile {
        machines,
        dims,
        base_capacity: capacity,
        base_bandwidth: args.get_or("bandwidth", 4)?,
        mode,
        ..MachineProfile::sweep(machines)
    };
    let seed: u64 = args.get_or("seed", 0)?;
    Ok(ClusterSpec::hetero(profile.generate(seed)?)?)
}

fn cluster_for(dag: &Dag, args: &Args) -> Result<ClusterSpec, Box<dyn Error>> {
    cluster_spec(dag.dims(), args)
}

/// Loads a DAG from `--dag file.json` or `--stg file.stg` (STG files get
/// demands from the simulation distribution, seeded by `--seed`).
fn load_dag(args: &Args) -> Result<Dag, Box<dyn Error>> {
    if let Some(path) = args.get("dag") {
        return Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?);
    }
    if let Some(path) = args.get("stg") {
        let seed: u64 = args.get_or("seed", 0)?;
        let model = spear::dag::stg::DemandModel::Normal {
            dims: 2,
            mean: 0.45,
            std_dev: 0.2,
            min: 0.05,
            max: 1.0,
        };
        let dag = spear::dag::stg::parse_stg(
            &std::fs::read_to_string(path)?,
            &model,
            args.flag("drop-dummies"),
            &mut StdRng::seed_from_u64(seed),
        )?;
        return Ok(dag);
    }
    Err("need --dag file.json or --stg file.stg".into())
}

fn write_or_print(args: &Args, json: &str) -> Result<(), Box<dyn Error>> {
    match args.get("output") {
        Some(path) => {
            std::fs::write(path, json)?;
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

/// `spear-cli generate`: a random layered DAG, or with `--trace` the full
/// synthetic 99-job production trace.
pub fn generate(args: &Args) -> Result<(), Box<dyn Error>> {
    let seed: u64 = args.get_or("seed", 0)?;
    if args.flag("trace") {
        let trace = SyntheticTraceSpec::paper().generate(seed);
        return write_or_print(args, &serde_json::to_string_pretty(&trace)?);
    }
    let spec = LayeredDagSpec {
        num_tasks: args.get_or("tasks", 100)?,
        ..LayeredDagSpec::paper_simulation()
    };
    let dag = spec.generate(&mut StdRng::seed_from_u64(seed));
    write_or_print(args, &serde_json::to_string_pretty(&dag)?)
}

fn build_scheduler(
    algo: &str,
    args: &Args,
    dag_dims: usize,
    obs: &Obs,
) -> Result<Box<dyn Scheduler>, Box<dyn Error>> {
    let budget: u64 = args.get_or("budget", 100)?;
    let min_budget: u64 = args.get_or("min-budget", budget / 2)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let search_threads: usize = args.get_or("search-threads", 1)?;
    let nn_precision: spear::nn::Precision = match args.get("nn-precision") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("unknown --nn-precision `{raw}` (exact|fast)"))?,
        None => spear::nn::Precision::Exact,
    };
    let config = MctsConfig {
        initial_budget: budget,
        min_budget,
        seed,
        // `--no-eval-cache` disables the fingerprint-keyed inference
        // cache for differential runs; results are bit-identical either
        // way, only the speed differs.
        eval_cache: !args.flag("no-eval-cache"),
        search_threads,
        leaf_batch_size: args.get_or("leaf-batch", 8)?,
        nn_precision,
        ..MctsConfig::default()
    };
    Ok(match algo {
        "tetris" => Box::new(TetrisScheduler::new().with_obs(obs)),
        "sjf" => Box::new(SjfScheduler::new().with_obs(obs)),
        "cp" => Box::new(CpScheduler::new().with_obs(obs)),
        "graphene" => Box::new(Graphene::new()),
        "random" => Box::new(RandomScheduler::seeded(seed).with_obs(obs)),
        "mcts" if search_threads > 1 => Box::new(TreeParallelMcts::pure(config).with_obs(obs)),
        "mcts" => Box::new(MctsScheduler::pure(config).with_obs(obs)),
        "spear" => {
            let features = FeatureConfig::paper(dag_dims);
            let policy = match args.get("policy") {
                Some(path) => {
                    let net = spear::nn::Mlp::load_from_path(path)?;
                    PolicyNetwork::from_parts(features, net)
                }
                None => {
                    eprintln!("note: no --policy given; using an untrained network");
                    PolicyNetwork::new(features, &mut StdRng::seed_from_u64(seed))
                }
            };
            if search_threads > 1 {
                Box::new(TreeParallelMcts::drl(config, policy).with_obs(obs))
            } else {
                Box::new(MctsScheduler::drl(config, policy).with_obs(obs))
            }
        }
        other => return Err(format!("unknown --algo `{other}`").into()),
    })
}

/// Builds the seeded `(arrival, DAG)` stream for the multi-job mode.
fn load_arrival_stream(args: &Args) -> Result<JobQueue, Box<dyn Error>> {
    let seed: u64 = args.get_or("seed", 0)?;
    let process = match args.require("arrivals")? {
        "poisson" => ArrivalProcess::Poisson {
            mean_gap: args.get_or("mean-gap", 8.0)?,
        },
        "periodic" => ArrivalProcess::Periodic {
            gap: args.get_or("gap", 8)?,
        },
        other => return Err(format!("unknown --arrivals `{other}` (poisson|periodic)").into()),
    };
    let source = match args.get("trace-file") {
        Some(path) => {
            let trace: Trace = serde_json::from_str(&std::fs::read_to_string(path)?)?;
            JobSource::Trace(trace)
        }
        None => JobSource::Layered(LayeredDagSpec {
            num_tasks: args.get_or("job-tasks", 8)?,
            ..LayeredDagSpec::paper_training()
        }),
    };
    let stream = ArrivalStreamSpec {
        jobs: args.get_or("jobs", 20)?,
        process,
        source,
    }
    .generate(seed)?;
    Ok(JobQueue::new(stream)?)
}

/// Replays the union `schedule` through a horizon-capped [`MultiJobEnv`]
/// and reports the JCTs at truncation: jobs whose tasks were not all
/// scheduled before the clock hit the horizon count as unfinished.
fn truncated_report(
    queue: &JobQueue,
    spec: &ClusterSpec,
    schedule: &spear::Schedule,
    horizon: u64,
) -> Result<JctReport, Box<dyn Error>> {
    let mut env = MultiJobEnv::new(queue, spec)?.with_horizon(Some(horizon));
    let mut order: Vec<spear::Placement> = schedule.placements().to_vec();
    order.sort_by_key(|p| (p.start, p.task));
    'placements: for p in &order {
        while env.observe().clock() < p.start {
            if env.is_terminal() {
                break 'placements;
            }
            env.step(Action::Process)?;
        }
        if env.is_terminal() {
            break;
        }
        env.step(Action::Schedule(p.task))?;
    }
    while !env.is_terminal() {
        env.step(Action::Process)?;
    }
    Ok(env.jct_report())
}

/// The online multi-job branch of `spear-cli schedule` (`--arrivals`).
fn schedule_arrivals(args: &Args) -> Result<(), Box<dyn Error>> {
    let queue = load_arrival_stream(args)?;
    let union = queue.union_dag();
    let spec = cluster_spec(union.dims(), args)?;
    let algo = args.get("algo").unwrap_or("spear");
    let (registry, metrics_path) = metrics_registry(args);
    let sink = registry.sink("cli");
    let mut scheduler =
        ObservedScheduler::new(build_scheduler(algo, args, union.dims(), &sink)?, &sink);
    let start = std::time::Instant::now();
    let schedule = scheduler.schedule_multi(&queue, &spec)?;
    let elapsed = start.elapsed();
    schedule.validate(union, &spec)?;
    let horizon = match args.get("horizon") {
        Some(_) => Some(args.get_or("horizon", 0)?),
        None => None,
    };
    println!(
        "{}: {} jobs ({} tasks), stream makespan {} in {:.2?}",
        scheduler.name(),
        queue.jobs(),
        union.len(),
        schedule.makespan(),
        elapsed
    );
    let profile = fault_profile(args)?;
    let report = if profile.is_none() {
        match horizon {
            Some(h) => truncated_report(&queue, &spec, &schedule, h)?,
            None => queue.jct_report(&schedule),
        }
    } else {
        let plan = profile.plan(args.get_or("seed", 0)?);
        let faulty = execute_multi_under_faults(&queue, &spec, &schedule, &plan, horizon)?;
        println!(
            "faults: realized makespan {} (planned {}), {} failures, {} stragglers{}",
            faulty.run.makespan,
            schedule.makespan(),
            faulty.run.failures,
            faulty.run.straggles,
            if faulty.truncated {
                ", truncated at the horizon"
            } else {
                ""
            }
        );
        faulty.report
    };
    println!(
        "completed {}/{} jobs ({} unfinished), jct mean {} p50 {} p99 {}, unfairness {:.2}",
        report.completions().len(),
        queue.jobs(),
        report.unfinished(),
        opt_stat(report.mean_jct().map(|m| format!("{m:.1}"))),
        opt_stat(report.p50_jct()),
        opt_stat(report.p99_jct()),
        report.unfairness()
    );
    if args.flag("gantt") {
        println!("{}", schedule.render_gantt(union, &spec, 100));
    }
    if let Some(out) = args.get("output") {
        std::fs::write(out, serde_json::to_string_pretty(&schedule)?)?;
        eprintln!("wrote {out}");
    }
    write_metrics(&registry, metrics_path.as_deref())?;
    Ok(())
}

/// `spear-cli schedule`: schedule a DAG file and report the makespan, or —
/// with `--arrivals` — an online multi-job stream and its JCT report.
pub fn schedule(args: &Args) -> Result<(), Box<dyn Error>> {
    if args.get("arrivals").is_some() {
        return schedule_arrivals(args);
    }
    let dag = load_dag(args)?;
    let spec = cluster_for(&dag, args)?;
    let algo = args.get("algo").unwrap_or("spear");
    let (registry, metrics_path) = metrics_registry(args);
    let sink = registry.sink("cli");
    let mut scheduler =
        ObservedScheduler::new(build_scheduler(algo, args, dag.dims(), &sink)?, &sink);
    let start = std::time::Instant::now();
    let schedule = scheduler.schedule(&dag, &spec)?;
    let elapsed = start.elapsed();
    schedule.validate(&dag, &spec)?;
    println!(
        "{}: makespan {} (lower bound {}, serial {}) in {:.2?}",
        scheduler.name(),
        schedule.makespan(),
        dag.makespan_lower_bound(spec.capacity()),
        dag.total_work(),
        elapsed
    );
    println!(
        "utilization {:.1}%",
        100.0 * schedule.utilization(&dag, &spec)
    );
    let profile = fault_profile(args)?;
    if !profile.is_none() {
        let plan = profile.plan(args.get_or("seed", 0)?);
        let run = execute_under_faults(&dag, &spec, &schedule, &plan)?;
        let tri = spear::diffcheck::check_faulty_run(&dag, &spec, &schedule, &plan, &run);
        if !tri.all_ok() {
            return Err(format!("fault replay judges disagree: {}", tri.summary()).into());
        }
        let attempts: u32 = run.attempts.iter().sum();
        println!(
            "faults: realized makespan {} (planned {}), {} failures, {} stragglers, \
             {attempts} attempts / {} tasks",
            run.makespan,
            schedule.makespan(),
            run.failures,
            run.straggles,
            dag.len()
        );
    }
    if args.flag("gantt") {
        println!("{}", schedule.render_gantt(&dag, &spec, 100));
    }
    if let Some(out) = args.get("output") {
        std::fs::write(out, serde_json::to_string_pretty(&schedule)?)?;
        eprintln!("wrote {out}");
    }
    write_metrics(&registry, metrics_path.as_deref())?;
    Ok(())
}

/// `spear-cli train`: run the training pipeline and save the policy.
pub fn train(args: &Args) -> Result<(), Box<dyn Error>> {
    use spear::{train_policy_observed, TrainingPipelineConfig};
    let profile = args.get("profile").unwrap_or("fast");
    let config = match profile {
        "tiny" => TrainingPipelineConfig::tiny(),
        "fast" => TrainingPipelineConfig::fast(),
        "paper" => TrainingPipelineConfig::paper(),
        other => return Err(format!("unknown --profile `{other}`").into()),
    };
    let output = args.require("output")?;
    eprintln!(
        "training profile `{profile}`: {} examples × {} tasks, {} epochs",
        config.num_examples, config.example_spec.num_tasks, config.reinforce.epochs
    );
    let spec = ClusterSpec::unit(2);
    let (registry, metrics_path) = metrics_registry(args);
    let trained = train_policy_observed(&config, &spec, &registry.sink("train"))?;
    trained.policy.net().save_to_path(output)?;
    println!(
        "pretrain accuracy {:.0}%; final mean makespan {:.1}; saved to {output}",
        100.0 * trained.pretrain_accuracy,
        trained.curve.last().map_or(f64::NAN, |p| p.mean_makespan),
    );
    write_metrics(&registry, metrics_path.as_deref())?;
    Ok(())
}

/// `spear-cli evaluate`: compare every scheduler on random workloads.
pub fn evaluate(args: &Args) -> Result<(), Box<dyn Error>> {
    let tasks: usize = args.get_or("tasks", 100)?;
    let dags: usize = args.get_or("dags", 5)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let budget: u64 = args.get_or("budget", 200)?;
    let gen = LayeredDagSpec {
        num_tasks: tasks,
        ..LayeredDagSpec::paper_simulation()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs: Vec<Dag> = (0..dags).map(|_| gen.generate(&mut rng)).collect();
    let spec = ClusterSpec::unit(2);

    let (registry, metrics_path) = metrics_registry(args);
    let sink = registry.sink("evaluate");
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TetrisScheduler::new().with_obs(&sink)),
        Box::new(SjfScheduler::new().with_obs(&sink)),
        Box::new(CpScheduler::new().with_obs(&sink)),
        Box::new(Graphene::new()),
        Box::new(
            MctsScheduler::pure(MctsConfig {
                initial_budget: budget,
                min_budget: (budget / 5).max(1),
                seed,
                ..MctsConfig::default()
            })
            .with_obs(&sink),
        ),
    ];
    println!("{:<10} {:>12} {:>10}", "scheduler", "mean", "seconds");
    for s in &mut schedulers {
        let mut s = ObservedScheduler::new(s, &sink);
        let start = std::time::Instant::now();
        let total: u64 = jobs
            .iter()
            .map(|d| s.schedule(d, &spec).map(|x| x.makespan()))
            .sum::<Result<u64, _>>()?;
        println!(
            "{:<10} {:>12.1} {:>10.2}",
            s.name(),
            total as f64 / dags as f64,
            start.elapsed().as_secs_f64()
        );
    }
    write_metrics(&registry, metrics_path.as_deref())?;
    Ok(())
}

/// `spear-cli stats`: summarize a DAG or trace file.
pub fn stats(args: &Args) -> Result<(), Box<dyn Error>> {
    if args.get("dag").is_some() || args.get("stg").is_some() {
        let dag = load_dag(args)?;
        println!("tasks         : {}", dag.len());
        println!("edges         : {}", dag.edges().len());
        println!("dimensions    : {}", dag.dims());
        println!("critical path : {}", dag.critical_path_length());
        println!("total work    : {}", dag.total_work());
        println!("width         : {}", spear::dag::topo::width(&dag));
        println!("depth         : {}", spear::dag::topo::depth(&dag));
        println!("max demand    : {}", dag.max_demand());
        return Ok(());
    }
    if let Some(path) = args.get("trace-file") {
        let trace: Trace = serde_json::from_str(&std::fs::read_to_string(path)?)?;
        let s = TraceStats::compute(&trace);
        println!("jobs                  : {}", s.jobs);
        println!("median map tasks      : {}", s.median_map_tasks);
        println!("median reduce tasks   : {}", s.median_reduce_tasks);
        println!(
            "max map / reduce      : {} / {}",
            s.max_map_tasks, s.max_reduce_tasks
        );
        println!("median map runtime    : {}", s.median_map_runtime);
        println!("median reduce runtime : {}", s.median_reduce_runtime);
        return Ok(());
    }
    Err("stats needs --dag, --stg or --trace-file".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        let argv: Vec<String> = parts.iter().map(|s| (*s).to_owned()).collect();
        Args::parse(&argv).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("spear-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_schedule_roundtrip() {
        let dag_path = tmp("cli-dag.json");
        generate(&args(&[
            "--tasks", "12", "--seed", "3", "--output", &dag_path,
        ]))
        .unwrap();
        schedule(&args(&["--dag", &dag_path, "--algo", "cp", "--gantt"])).unwrap();
        stats(&args(&["--dag", &dag_path])).unwrap();
    }

    #[test]
    fn generate_trace_and_stats() {
        let path = tmp("cli-trace.json");
        generate(&args(&["--trace", "--seed", "1", "--output", &path])).unwrap();
        stats(&args(&["--trace-file", &path])).unwrap();
    }

    #[test]
    fn schedule_with_mcts_and_output() {
        let dag_path = tmp("cli-dag2.json");
        generate(&args(&["--tasks", "8", "--output", &dag_path])).unwrap();
        let out = tmp("cli-schedule.json");
        schedule(&args(&[
            "--dag", &dag_path, "--algo", "mcts", "--budget", "15", "--output", &out,
        ]))
        .unwrap();
        let loaded: spear::Schedule =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(loaded.makespan() > 0);
    }

    #[test]
    fn no_eval_cache_flag_matches_cached_run() {
        let dag_path = tmp("cli-dag-cache.json");
        generate(&args(&[
            "--tasks", "8", "--seed", "2", "--output", &dag_path,
        ]))
        .unwrap();
        let on = tmp("cli-cache-on.json");
        let off = tmp("cli-cache-off.json");
        schedule(&args(&[
            "--dag", &dag_path, "--algo", "spear", "--budget", "10", "--output", &on,
        ]))
        .unwrap();
        schedule(&args(&[
            "--dag",
            &dag_path,
            "--algo",
            "spear",
            "--budget",
            "10",
            "--no-eval-cache",
            "--output",
            &off,
        ]))
        .unwrap();
        // The escape hatch changes speed only, never the schedule.
        assert_eq!(
            std::fs::read_to_string(&on).unwrap(),
            std::fs::read_to_string(&off).unwrap()
        );
    }

    /// `--nn-precision fast` must run end to end, and — like the exact
    /// path — the eval cache must change only speed, never the schedule
    /// (the f32 rounding happens on the inference path, before the
    /// cache).
    #[test]
    fn fast_precision_flag_is_cache_transparent() {
        let dag_path = tmp("cli-dag-fastprec.json");
        generate(&args(&[
            "--tasks", "8", "--seed", "5", "--output", &dag_path,
        ]))
        .unwrap();
        let on = tmp("cli-fastprec-on.json");
        let off = tmp("cli-fastprec-off.json");
        schedule(&args(&[
            "--dag",
            &dag_path,
            "--algo",
            "spear",
            "--budget",
            "10",
            "--nn-precision",
            "fast",
            "--output",
            &on,
        ]))
        .unwrap();
        schedule(&args(&[
            "--dag",
            &dag_path,
            "--algo",
            "spear",
            "--budget",
            "10",
            "--nn-precision",
            "fast",
            "--no-eval-cache",
            "--output",
            &off,
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&on).unwrap(),
            std::fs::read_to_string(&off).unwrap()
        );
    }

    #[test]
    fn unknown_nn_precision_is_rejected() {
        let dag_path = tmp("cli-dag-badprec.json");
        generate(&args(&["--tasks", "4", "--output", &dag_path])).unwrap();
        let err = schedule(&args(&[
            "--dag",
            &dag_path,
            "--algo",
            "spear",
            "--nn-precision",
            "f16",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("f16"), "unexpected error: {err}");
    }

    #[test]
    fn schedule_with_search_threads_runs_tree_parallel() {
        let dag_path = tmp("cli-dag-tp.json");
        generate(&args(&[
            "--tasks", "10", "--seed", "4", "--output", &dag_path,
        ]))
        .unwrap();
        for algo in ["mcts", "spear"] {
            schedule(&args(&[
                "--dag",
                &dag_path,
                "--algo",
                algo,
                "--budget",
                "12",
                "--search-threads",
                "3",
                "--leaf-batch",
                "2",
            ]))
            .unwrap();
        }
    }

    #[test]
    fn schedule_arrivals_poisson_stream() {
        schedule(&args(&[
            "--arrivals",
            "poisson",
            "--jobs",
            "5",
            "--job-tasks",
            "5",
            "--mean-gap",
            "4.0",
            "--algo",
            "tetris",
            "--seed",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn schedule_arrivals_periodic_with_horizon_and_output() {
        let out = tmp("cli-multi-schedule.json");
        schedule(&args(&[
            "--arrivals",
            "periodic",
            "--gap",
            "3",
            "--jobs",
            "4",
            "--job-tasks",
            "4",
            "--algo",
            "sjf",
            "--horizon",
            "6",
            "--output",
            &out,
        ]))
        .unwrap();
        let loaded: spear::Schedule =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(loaded.makespan() > 0);
    }

    #[test]
    fn schedule_arrivals_replays_a_trace_file() {
        let trace_path = tmp("cli-multi-trace.json");
        generate(&args(&["--trace", "--seed", "2", "--output", &trace_path])).unwrap();
        schedule(&args(&[
            "--arrivals",
            "poisson",
            "--jobs",
            "3",
            "--mean-gap",
            "10.0",
            "--trace-file",
            &trace_path,
            "--algo",
            "cp",
        ]))
        .unwrap();
    }

    #[test]
    fn schedule_with_faults_replays_the_plan_under_failures() {
        let dag_path = tmp("cli-dag-faults.json");
        generate(&args(&[
            "--tasks", "12", "--seed", "6", "--output", &dag_path,
        ]))
        .unwrap();
        schedule(&args(&[
            "--dag", &dag_path, "--algo", "cp", "--seed", "6", "--faults", "0.3",
        ]))
        .unwrap();
    }

    #[test]
    fn schedule_arrivals_with_faults_and_horizon() {
        schedule(&args(&[
            "--arrivals",
            "periodic",
            "--gap",
            "4",
            "--jobs",
            "4",
            "--job-tasks",
            "5",
            "--algo",
            "tetris",
            "--seed",
            "2",
            "--faults",
            "0.2",
            "--straggler",
            "2.0",
            "--horizon",
            "40",
        ]))
        .unwrap();
    }

    #[test]
    fn exhausted_retries_surface_as_a_typed_error() {
        let dag_path = tmp("cli-dag-exhaust.json");
        generate(&args(&["--tasks", "6", "--output", &dag_path])).unwrap();
        let err = schedule(&args(&[
            "--dag",
            &dag_path,
            "--algo",
            "sjf",
            "--faults",
            "1.0",
            "--max-retries",
            "0",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("retry budget"), "unexpected error: {err}");
    }

    #[test]
    fn out_of_range_fault_rates_are_rejected() {
        let dag_path = tmp("cli-dag-badrate.json");
        generate(&args(&["--tasks", "4", "--output", &dag_path])).unwrap();
        let err = schedule(&args(&["--dag", &dag_path, "--faults", "1.5"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("outside [0, 1]"));
    }

    #[test]
    fn unknown_arrival_process_is_rejected() {
        let err = schedule(&args(&["--arrivals", "bursty", "--algo", "tetris"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("bursty"));
    }

    #[test]
    fn unknown_algo_is_rejected() {
        let dag_path = tmp("cli-dag3.json");
        generate(&args(&["--tasks", "4", "--output", &dag_path])).unwrap();
        let err = schedule(&args(&["--dag", &dag_path, "--algo", "magic"]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("magic"));
    }

    #[test]
    fn schedule_on_a_heterogeneous_cluster() {
        let dag_path = tmp("cli-dag-hetero.json");
        generate(&args(&[
            "--tasks", "10", "--seed", "9", "--output", &dag_path,
        ]))
        .unwrap();
        let out = tmp("cli-hetero-schedule.json");
        schedule(&args(&[
            "--dag",
            &dag_path,
            "--algo",
            "tetris",
            "--machines",
            "3",
            "--bandwidth",
            "2",
            "--transfer-mode",
            "via-master",
            "--seed",
            "9",
            "--output",
            &out,
        ]))
        .unwrap();
        let loaded: spear::Schedule =
            serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
        // A 3-machine run actually spreads across machines.
        assert!(loaded.placements().iter().any(|p| p.machine > 0));
    }

    #[test]
    fn explicit_single_machine_matches_the_single_box_schedule() {
        let dag_path = tmp("cli-dag-onebox.json");
        generate(&args(&[
            "--tasks", "10", "--seed", "4", "--output", &dag_path,
        ]))
        .unwrap();
        let homo = tmp("cli-onebox-homo.json");
        let one = tmp("cli-onebox-hetero.json");
        schedule(&args(&[
            "--dag", &dag_path, "--algo", "cp", "--output", &homo,
        ]))
        .unwrap();
        schedule(&args(&[
            "--dag",
            &dag_path,
            "--algo",
            "cp",
            "--machines",
            "1",
            "--output",
            &one,
        ]))
        .unwrap();
        let a: spear::Schedule =
            serde_json::from_str(&std::fs::read_to_string(&homo).unwrap()).unwrap();
        let b: spear::Schedule =
            serde_json::from_str(&std::fs::read_to_string(&one).unwrap()).unwrap();
        // Same starts and finishes; the degenerate cluster only adds the
        // (all-zero) machine column.
        assert_eq!(a.makespan(), b.makespan());
        for (x, y) in a.placements().iter().zip(b.placements()) {
            assert_eq!((x.task, x.start, x.finish), (y.task, y.start, y.finish));
            assert_eq!(y.machine, 0);
        }
    }

    #[test]
    fn unknown_transfer_mode_is_rejected() {
        let dag_path = tmp("cli-dag-badmode.json");
        generate(&args(&["--tasks", "4", "--output", &dag_path])).unwrap();
        let err = schedule(&args(&[
            "--dag",
            &dag_path,
            "--machines",
            "2",
            "--transfer-mode",
            "teleport",
        ]))
        .unwrap_err()
        .to_string();
        assert!(err.contains("teleport"), "unexpected error: {err}");
    }

    #[test]
    fn stats_requires_an_input() {
        assert!(stats(&args(&[])).is_err());
    }

    #[test]
    fn schedules_stg_files() {
        let path = tmp("cli-graph.stg");
        std::fs::write(&path, "4\n0 0 0\n1 5 1 0\n2 7 1 0\n3 0 2 1 2\n").unwrap();
        schedule(&args(&["--stg", &path, "--algo", "cp", "--drop-dummies"])).unwrap();
        stats(&args(&["--stg", &path])).unwrap();
    }

    #[test]
    fn evaluate_small_workload() {
        evaluate(&args(&["--tasks", "8", "--dags", "2", "--budget", "10"])).unwrap();
    }
}
