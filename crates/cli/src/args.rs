//! Minimal `--key value` argument parsing.

use std::collections::BTreeMap;
use std::error::Error;
use std::str::FromStr;

/// Parsed flags: a map from `--key` (without dashes) to its value.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs (a `--key` followed by another `--key`
    /// or nothing is treated as the boolean value `"true"`).
    ///
    /// # Errors
    ///
    /// Rejects positional arguments (everything must be a flag).
    pub fn parse(argv: &[String]) -> Result<Self, Box<dyn Error>> {
        let mut values = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, found `{arg}`"))?;
            let next_is_value = argv
                .get(i + 1)
                .map(|v| !v.starts_with("--"))
                .unwrap_or(false);
            if next_is_value {
                values.insert(key.to_owned(), argv[i + 1].clone());
                i += 2;
            } else {
                values.insert(key.to_owned(), "true".to_owned());
                i += 1;
            }
        }
        Ok(Args { values })
    }

    /// The raw value of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Errors if the flag is missing.
    pub fn require(&self, key: &str) -> Result<&str, Box<dyn Error>> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}").into())
    }

    /// A typed flag with a default.
    ///
    /// # Errors
    ///
    /// Errors if the flag is present but does not parse as `T`.
    pub fn get_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, Box<dyn Error>>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("invalid --{key} `{raw}`: {e}").into()),
            None => Ok(default),
        }
    }

    /// A boolean flag (present = true).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = Args::parse(&argv(&["--tasks", "100", "--seed", "7"])).unwrap();
        assert_eq!(a.get("tasks"), Some("100"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn parses_boolean_flags() {
        let a = Args::parse(&argv(&["--gantt", "--budget", "50"])).unwrap();
        assert!(a.flag("gantt"));
        assert!(!a.flag("absent"));
        assert_eq!(a.get_or("budget", 0u64).unwrap(), 50);
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(&argv(&["oops"])).is_err());
    }

    #[test]
    fn rejects_bad_typed_values() {
        let a = Args::parse(&argv(&["--tasks", "many"])).unwrap();
        assert!(a.get_or("tasks", 1usize).is_err());
    }

    #[test]
    fn require_reports_missing_flags() {
        let a = Args::parse(&[]).unwrap();
        let err = a.require("dag").unwrap_err().to_string();
        assert!(err.contains("--dag"));
    }
}
