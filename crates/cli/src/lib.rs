//! Implementation of the `spear-cli` command-line tool.
//!
//! Subcommands:
//!
//! * `generate` — emit a random layered DAG (or a full synthetic trace) as
//!   JSON;
//! * `schedule` — schedule a DAG JSON file with any of the implemented
//!   algorithms, optionally rendering an ASCII Gantt chart;
//! * `train` — run the pre-train → REINFORCE pipeline and save the policy
//!   network;
//! * `evaluate` — compare every scheduler on a workload and print a table;
//! * `stats` — summarize a DAG or trace file.
//!
//! The argument parser is deliberately dependency-free: `--key value`
//! flags only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::error::Error;

/// Entry point shared by the binary and the tests: dispatches on the
/// first positional argument.
///
/// # Errors
///
/// Returns a human-readable error for unknown commands, bad flags or I/O
/// failures.
pub fn run(argv: &[String]) -> Result<(), Box<dyn Error>> {
    let (command, rest) = argv.split_first().ok_or(
        "usage: spear-cli <generate|schedule|train|evaluate|stats> [--flag value]…\n\
         run `spear-cli help` for details",
    )?;
    let args = args::Args::parse(rest)?;
    match command.as_str() {
        "generate" => commands::generate(&args),
        "schedule" => commands::schedule(&args),
        "train" => commands::train(&args),
        "evaluate" => commands::evaluate(&args),
        "stats" => commands::stats(&args),
        "help" | "--help" | "-h" => {
            println!("{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; run `spear-cli help`").into()),
    }
}
