//! The `spear-cli` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = spear_cli::run(&argv) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
