//! Property tests for the DRL agent: featurization bounds, mask/simulator
//! agreement, and policy legality on arbitrary reachable states.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spear_cluster::{Action, ClusterSpec, SimState};
use spear_dag::analysis::GraphFeatures;
use spear_dag::generator::LayeredDagSpec;
use spear_dag::Dag;
use spear_rl::{FeatureConfig, Featurizer, PolicyNetwork};

fn random_dag(num_tasks: usize, seed: u64) -> Dag {
    LayeredDagSpec {
        num_tasks,
        min_width: 1,
        max_width: 4,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

/// Drives a simulation a random number of random steps to reach an
/// arbitrary mid-episode state.
fn random_state(dag: &Dag, spec: &ClusterSpec, steps: usize, seed: u64) -> SimState {
    let mut sim = SimState::new(dag, spec).expect("fits");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..steps {
        if sim.is_terminal(dag) {
            break;
        }
        let legal = sim.legal_actions(dag);
        sim.apply(dag, legal[rng.gen_range(0..legal.len())])
            .expect("legal");
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every feature is finite and within [0, 1] on every reachable state.
    #[test]
    fn features_are_bounded(
        num_tasks in 1usize..25,
        dag_seed in any::<u64>(),
        steps in 0usize..40,
        walk_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let gf = GraphFeatures::compute(&dag);
        let fz = Featurizer::new(FeatureConfig::small(2));
        let state = random_state(&dag, &spec, steps, walk_seed);
        if state.is_terminal(&dag) {
            return Ok(());
        }
        let view = fz.featurize(&dag, &spec, &state, &gf);
        prop_assert_eq!(view.features.len(), fz.config().input_dim());
        for (i, &f) in view.features.iter().enumerate() {
            prop_assert!(f.is_finite(), "feature {} not finite", i);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&f), "feature {} = {} out of range", i, f);
        }
    }

    /// The mask marks exactly the network actions whose simulator
    /// counterpart is legal.
    #[test]
    fn mask_agrees_with_simulator(
        num_tasks in 1usize..20,
        dag_seed in any::<u64>(),
        steps in 0usize..30,
        walk_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let gf = GraphFeatures::compute(&dag);
        let fz = Featurizer::new(FeatureConfig::small(2));
        let state = random_state(&dag, &spec, steps, walk_seed);
        if state.is_terminal(&dag) {
            return Ok(());
        }
        let view = fz.featurize(&dag, &spec, &state, &gf);
        let legal = state.legal_actions(&dag);
        // Process legality agrees.
        prop_assert_eq!(
            view.mask[fz.config().process_action()],
            legal.contains(&Action::Process)
        );
        // Slot legality agrees with the simulator for the slot's task.
        for (slot, task) in view.slot_tasks.iter().enumerate() {
            match task {
                Some(t) => prop_assert_eq!(
                    view.mask[slot],
                    legal.contains(&Action::Schedule(*t)),
                    "slot {} task {}", slot, t
                ),
                None => prop_assert!(!view.mask[slot], "empty slot {} marked legal", slot),
            }
        }
        // In non-terminal states the network always has a move.
        prop_assert!(view.mask.iter().any(|&m| m));
    }

    /// Slot tasks are distinct ready tasks, ordered by non-increasing
    /// b-level.
    #[test]
    fn slots_are_distinct_ready_and_ordered(
        num_tasks in 1usize..25,
        dag_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let gf = GraphFeatures::compute(&dag);
        let fz = Featurizer::new(FeatureConfig::small(2));
        let state = SimState::new(&dag, &spec).unwrap();
        let view = fz.featurize(&dag, &spec, &state, &gf);
        let filled: Vec<_> = view.slot_tasks.iter().flatten().copied().collect();
        for w in filled.windows(2) {
            prop_assert!(gf.task(w[0]).b_level >= gf.task(w[1]).b_level);
        }
        let mut dedup = filled.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), filled.len(), "duplicate slot task");
        for t in filled {
            prop_assert!(state.ready().contains(&t));
        }
    }

    /// A freshly initialized policy drives any job to completion with only
    /// legal actions (the masked sampler never escapes the simulator's
    /// rules).
    #[test]
    fn untrained_policy_completes_any_job(
        num_tasks in 1usize..18,
        dag_seed in any::<u64>(),
        net_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(net_seed);
        let mut policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut rng);
        let ep = spear_rl::run_episode(
            &mut policy,
            &dag,
            &spec,
            spear_rl::SelectionMode::Sample,
            false,
            &mut rng,
        )
        .unwrap();
        prop_assert!(ep.makespan >= dag.critical_path_length());
        prop_assert!(ep.makespan <= dag.total_work());
    }

    /// Disabling graph features zeroes exactly the graph-feature slots and
    /// never changes the mask.
    #[test]
    fn graph_feature_ablation_only_zeroes_features(
        num_tasks in 2usize..20,
        dag_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let gf = GraphFeatures::compute(&dag);
        let with = Featurizer::new(FeatureConfig::small(2));
        let without = Featurizer::new(FeatureConfig::small(2).without_graph_features());
        let state = SimState::new(&dag, &spec).unwrap();
        let a = with.featurize(&dag, &spec, &state, &gf);
        let b = without.featurize(&dag, &spec, &state, &gf);
        prop_assert_eq!(&a.mask, &b.mask);
        prop_assert_eq!(&a.slot_tasks, &b.slot_tasks);
        prop_assert_eq!(a.features.len(), b.features.len());
        // The ablated vector differs only where the full one had graph
        // features; everything it keeps matches the full vector.
        for (x, y) in a.features.iter().zip(&b.features) {
            if *y != 0.0 {
                prop_assert_eq!(x, y);
            }
        }
    }
}
