//! The deep-reinforcement-learning scheduling agent of Spear (§III-D).
//!
//! A small MLP (the paper's 256/32/32 ReLU network) maps the cluster state
//! and the ready-task frontier to a distribution over the decoupled action
//! space `{schedule slot i, process}`. The input combines:
//!
//! * a *resource-time image* of the cluster over the next `H` slots (per
//!   resource dimension),
//! * up to `M` ready-task slots, each carrying the task's runtime, demand
//!   vector, **b-level**, **number of children** and per-resource
//!   **b-load** — the graph features §III-D argues are required to beat
//!   Tetris and SJF,
//! * a few global scalars (backlog size, running and completed fractions).
//!
//! Training follows the paper's two phases: supervised **pre-training**
//! that imitates the critical-path expert ([`pretrain`]), then
//! **REINFORCE** with a 20-rollout average baseline ([`ReinforceTrainer`]),
//! both under RMSProp with the paper's hyper-parameters.
//!
//! # Example: rolling out a freshly initialized policy
//!
//! ```
//! use rand::SeedableRng;
//! use spear_cluster::ClusterSpec;
//! use spear_dag::generator::LayeredDagSpec;
//! use spear_rl::{FeatureConfig, PolicyNetwork, run_episode, SelectionMode};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let dag = LayeredDagSpec::paper_training().generate(&mut rng);
//! let spec = ClusterSpec::unit(2);
//! let mut policy = PolicyNetwork::new(FeatureConfig::small(2), &mut rng);
//! let episode = run_episode(
//!     &mut policy, &dag, &spec, SelectionMode::Sample, true, &mut rng,
//! ).unwrap();
//! assert!(episode.makespan >= dag.critical_path_length());
//! assert!(!episode.steps.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod episode;
mod expert;
mod features;
mod policy;
pub mod pretrain;
mod reinforce;
mod shared_cache;
pub mod value;

pub use cache::{EvalCache, EvalCacheF32, EvalCacheStats, ValueCache, ValueCacheF32};
pub use episode::{
    run_episode, run_episode_with_features, run_episode_with_features_precision, Episode,
    SelectionMode, StepRecord,
};
pub use expert::{collect_expert_dataset, CpExpert, ExpertDataset};
pub use features::{FeatureConfig, Featurizer, StateView};
pub use policy::PolicyNetwork;
pub use reinforce::{ReinforceConfig, ReinforceTrainer, TrainingCurvePoint};
pub use shared_cache::SharedEvalCache;
pub use value::{train_value_network, ValueNetwork, ValueTrainConfig};
