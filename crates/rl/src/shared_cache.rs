//! A thread-shared view of the policy-evaluation cache.
//!
//! Tree-parallel MCTS runs N workers against one DAG/network pair, so a
//! state evaluated by one worker is a cache hit for every other worker —
//! but [`EvalCache`] counts probes through `&mut self` and is therefore
//! single-owner. [`SharedEvalCache`] stripes one logical cache across
//! `S` independently locked [`EvalCache`] shards, with the stripe chosen
//! by the key's high bits (the low bits index the probe window inside a
//! shard, so using disjoint bit ranges keeps both selections well
//! distributed). Contention on any single mutex drops roughly by the
//! stripe count; the payload copy out of the shard happens under the
//! lock, but a policy row is a few hundred bytes, so the critical
//! section stays in the sub-microsecond range.
//!
//! Hits are copied into caller-owned buffers rather than borrowed,
//! because a borrow would hold the stripe lock for the caller's whole
//! decision. The copy is the price of sharing; the sequential path keeps
//! using the unlocked [`EvalCache`] directly and pays nothing.

use std::sync::Mutex;

use spear_dag::TaskId;

use crate::{EvalCache, EvalCacheStats};

/// Striped-mutex wrapper sharing one logical [`EvalCache`] between
/// search workers.
#[derive(Debug)]
pub struct SharedEvalCache {
    /// Independently locked shards; length is a power of two.
    stripes: Vec<Mutex<EvalCache>>,
    /// `64 - log2(stripes.len())`: right-shift that maps a key's high
    /// bits to a stripe index.
    shift: u32,
}

impl SharedEvalCache {
    /// Creates a cache with room for at least `capacity` entries in
    /// total, striped across `stripes` shards (rounded up to a power of
    /// two). Row widths follow [`EvalCache::new`].
    #[must_use]
    pub fn new(capacity: usize, action_dim: usize, max_ready: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        let per_stripe = capacity.div_ceil(stripes);
        Self {
            stripes: (0..stripes)
                .map(|_| Mutex::new(EvalCache::new(per_stripe, action_dim, max_ready)))
                .collect(),
            shift: 64 - stripes.trailing_zeros(),
        }
    }

    fn stripe(&self, key: u64) -> &Mutex<EvalCache> {
        // `shift == 64` means a single stripe; the shift itself would
        // overflow, so special-case it.
        let idx = if self.shift >= 64 {
            0
        } else {
            (key >> self.shift) as usize
        };
        &self.stripes[idx]
    }

    /// Looks up `key`; on a hit copies the cached probability row and
    /// slot-task row into the caller's buffers (cleared first) and
    /// returns `true`. Counts a hit or a miss on the owning stripe.
    pub fn get_into(
        &self,
        key: u64,
        probs: &mut Vec<f64>,
        slot_tasks: &mut Vec<Option<TaskId>>,
    ) -> bool {
        let mut shard = self.stripe(key).lock().expect("cache stripe poisoned");
        match shard.get(key) {
            Some((p, s)) => {
                probs.clear();
                probs.extend_from_slice(p);
                slot_tasks.clear();
                slot_tasks.extend_from_slice(s);
                true
            }
            None => false,
        }
    }

    /// Stores `(probs, slot_tasks)` under `key` in the owning stripe.
    ///
    /// # Panics
    /// If the row widths disagree with the ones given to `new`.
    pub fn insert(&self, key: u64, probs: &[f64], slot_tasks: &[Option<TaskId>]) {
        self.stripe(key)
            .lock()
            .expect("cache stripe poisoned")
            .insert(key, probs, slot_tasks);
    }

    /// Invalidates every entry in O(stripes). Call at episode
    /// boundaries, from one thread, while no worker is probing.
    pub fn begin_generation(&self) {
        for stripe in &self.stripes {
            stripe
                .lock()
                .expect("cache stripe poisoned")
                .begin_generation();
        }
    }

    /// Lifetime counters summed across stripes.
    #[must_use]
    pub fn stats(&self) -> EvalCacheStats {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("cache stripe poisoned").stats())
            .fold(EvalCacheStats::default(), EvalCacheStats::merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_stripes() {
        let cache = SharedEvalCache::new(256, 3, 2, 4);
        let mut probs = Vec::new();
        let mut slots = Vec::new();
        // Keys spanning all high-bit patterns so every stripe is hit.
        let keys: Vec<u64> = (0..16).map(|i| (i as u64) << 60 | i as u64).collect();
        for &k in &keys {
            assert!(!cache.get_into(k, &mut probs, &mut slots));
            cache.insert(
                k,
                &[k as f64, 0.0, 1.0],
                &[Some(TaskId::new(k as usize)), None],
            );
        }
        for &k in &keys {
            assert!(cache.get_into(k, &mut probs, &mut slots));
            assert_eq!(probs, &[k as f64, 0.0, 1.0]);
            assert_eq!(slots, &[Some(TaskId::new(k as usize)), None]);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 16);
        assert_eq!(stats.misses, 16);
    }

    #[test]
    fn single_stripe_degenerate_shift_is_sound() {
        let cache = SharedEvalCache::new(64, 1, 1, 1);
        cache.insert(u64::MAX, &[0.5], &[None]);
        let mut probs = Vec::new();
        let mut slots = Vec::new();
        assert!(cache.get_into(u64::MAX, &mut probs, &mut slots));
        assert_eq!(probs, &[0.5]);
    }

    #[test]
    fn generation_bump_clears_all_stripes() {
        let cache = SharedEvalCache::new(256, 1, 1, 8);
        let keys: Vec<u64> = (0u64..32)
            .map(|i| i << 59 ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i))
            .collect();
        let mut probs = Vec::new();
        let mut slots = Vec::new();
        for &k in &keys {
            cache.insert(k, &[1.0], &[None]);
        }
        cache.begin_generation();
        for &k in &keys {
            assert!(
                !cache.get_into(k, &mut probs, &mut slots),
                "key {k:#x} survived the bump"
            );
        }
    }

    #[test]
    fn concurrent_probes_agree_with_inserts() {
        let cache = SharedEvalCache::new(1024, 2, 1, 8);
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    let mut probs = Vec::new();
                    let mut slots = Vec::new();
                    for i in 0..200u64 {
                        let key = worker << 62 | i;
                        cache.insert(
                            key,
                            &[worker as f64, i as f64],
                            &[Some(TaskId::new(i as usize))],
                        );
                        assert!(cache.get_into(key, &mut probs, &mut slots));
                        assert_eq!(probs, &[worker as f64, i as f64]);
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 800);
    }
}
