//! A value network: predicts the *remaining* makespan of a partial
//! schedule.
//!
//! This is an extension beyond the paper (flagged as such in DESIGN.md):
//! Spear spends most of its wall-clock simulating rollouts whose every
//! step pays a policy-network forward pass. AlphaZero replaces rollouts
//! with a learned value function; here we implement the half-way point —
//! rollouts run a bounded number of steps and the value network estimates
//! the rest — which keeps the paper's architecture intact while cutting
//! the dominant cost.
//!
//! The network reuses the policy featurization and predicts the
//! *normalized* remaining makespan `(final − clock) / scale`, where
//! `scale` is a per-job magnitude (the Tetris estimate, like the MCTS
//! exploration constant). Training data comes from recorded policy
//! episodes.

use rand::Rng;
use spear_cluster::{ClusterSpec, SimState, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::Dag;
use spear_nn::{InferScratch, InferenceEngine, Matrix, Mlp, MlpConfig, Optimizer, RmsProp};

use crate::episode::run_episode_with_features;
use crate::{FeatureConfig, Featurizer, PolicyNetwork, SelectionMode};

/// The value network: featurizer + MLP with a single linear output.
#[derive(Debug, Clone)]
pub struct ValueNetwork {
    featurizer: Featurizer,
    net: Mlp,
}

impl ValueNetwork {
    /// Creates a value network over the given featurization with the
    /// given hidden widths.
    pub fn new<R: Rng + ?Sized>(config: FeatureConfig, hidden: &[usize], rng: &mut R) -> Self {
        let net = Mlp::new(MlpConfig::new(config.input_dim(), hidden, 1), rng);
        ValueNetwork {
            featurizer: Featurizer::new(config),
            net,
        }
    }

    /// The feature configuration.
    pub fn feature_config(&self) -> &FeatureConfig {
        self.featurizer.config()
    }

    /// The featurizer (used by the fast-precision evaluator, which
    /// featurizes in `f64` and runs the `f32` engine).
    pub fn featurizer(&self) -> &Featurizer {
        &self.featurizer
    }

    /// Snapshots the current weights into an `f32`
    /// [`InferenceEngine`]. Like the policy snapshot, it does not track
    /// later training updates.
    #[must_use]
    pub fn inference_engine(&self) -> InferenceEngine {
        InferenceEngine::from_mlp(&self.net)
    }

    /// The underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for training / persistence.
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Predicts the remaining makespan from `state`, in time slots.
    /// `scale` is the per-job magnitude used during training (the greedy
    /// makespan estimate). Clamped to be non-negative.
    pub fn predict_remaining(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        scale: f64,
    ) -> f64 {
        let view = self.featurizer.featurize(dag, spec, state, features);
        let out = self.net.forward_one(&view.features);
        (out[0] * scale).max(0.0)
    }

    /// Fast-precision [`ValueNetwork::predict_remaining`]: the same
    /// featurization, the `f32` engine forward pass, and the same
    /// `(out · scale).max(0)` epilogue with the single output upcast
    /// exactly at the boundary.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_remaining_fast(
        &mut self,
        engine: &InferenceEngine,
        scratch: &mut InferScratch,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        scale: f64,
    ) -> f64 {
        let view = self.featurizer.featurize(dag, spec, state, features);
        let out = engine.forward_one(&view.features, scratch);
        (f64::from(out[0]) * scale).max(0.0)
    }

    /// Fast-precision [`ValueNetwork::predict_final`]: clock plus the
    /// fast remainder, floored at the largest committed finish time.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_final_fast(
        &mut self,
        engine: &InferenceEngine,
        scratch: &mut InferScratch,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        scale: f64,
    ) -> f64 {
        let remaining =
            self.predict_remaining_fast(engine, scratch, dag, spec, state, features, scale);
        (state.clock() as f64 + remaining).max(state.max_finish() as f64)
    }

    /// Predicts the *final* makespan from `state`: the current clock plus
    /// the predicted remainder, floored at the largest committed finish
    /// time (the prediction can never undercut what is already decided).
    pub fn predict_final(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        scale: f64,
    ) -> f64 {
        let remaining = self.predict_remaining(dag, spec, state, features, scale);
        (state.clock() as f64 + remaining).max(state.max_finish() as f64)
    }
}

/// Configuration of [`train_value_network`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValueTrainConfig {
    /// Episodes rolled out per training job.
    pub episodes_per_dag: usize,
    /// Passes over the collected dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RMSProp learning rate.
    pub learning_rate: f64,
}

impl Default for ValueTrainConfig {
    fn default() -> Self {
        ValueTrainConfig {
            episodes_per_dag: 8,
            epochs: 20,
            batch_size: 128,
            learning_rate: 1e-3,
        }
    }
}

/// Collects `(features, normalized remaining makespan)` pairs by rolling
/// the policy out on the jobs, then trains the value network with MSE
/// regression. Returns the per-epoch mean loss.
///
/// The normalization scale per job is its serial total work — an
/// always-available magnitude of the same order as the makespan.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn train_value_network<R: Rng + ?Sized>(
    value: &mut ValueNetwork,
    policy: &mut PolicyNetwork,
    dags: &[Dag],
    spec: &ClusterSpec,
    config: &ValueTrainConfig,
    rng: &mut R,
) -> Result<Vec<f64>, SpearError> {
    assert_eq!(
        policy.feature_config(),
        value.feature_config(),
        "policy and value featurizations must agree"
    );
    // 1. Collect the dataset.
    let mut inputs: Vec<Vec<f64>> = Vec::new();
    let mut targets: Vec<f64> = Vec::new();
    for dag in dags {
        let features = GraphFeatures::compute(dag);
        let scale = dag.total_work().max(1) as f64;
        for _ in 0..config.episodes_per_dag {
            let episode = run_episode_with_features(
                policy,
                dag,
                spec,
                &features,
                SelectionMode::Sample,
                true,
                rng,
            )?;
            // Reconstruct per-step clocks by replaying is costly; instead
            // exploit that StepRecord keeps the full feature vector, whose
            // *completed fraction* global moves monotonically. We use the
            // recorded clock directly.
            for step in &episode.steps {
                inputs.push(step.features.clone());
                let remaining = episode.makespan.saturating_sub(step.clock) as f64;
                targets.push(remaining / scale);
            }
        }
    }
    // 2. Regression.
    let mut opt = RmsProp::new(config.learning_rate, 0.9, 1e-9);
    let n = inputs.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        use rand::seq::SliceRandom;
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let rows: Vec<&[f64]> = chunk.iter().map(|&i| inputs[i].as_slice()).collect();
            let x = Matrix::from_rows(&rows);
            let predictions = value.net_mut().forward(&x);
            // MSE: L = mean((pred − target)²); dL/dpred = 2(pred − t)/m.
            let m = chunk.len() as f64;
            let mut d = Matrix::zeros(chunk.len(), 1);
            let mut loss = 0.0;
            for (row, &i) in chunk.iter().enumerate() {
                let err = predictions.get(row, 0) - targets[i];
                loss += err * err;
                d.set(row, 0, 2.0 * err / m);
            }
            value.net_mut().zero_grad();
            value.net_mut().backward(&d);
            opt.step(value.net_mut());
            value.net_mut().zero_grad();
            epoch_loss += loss / m;
            batches += 1;
        }
        history.push(epoch_loss / batches.max(1) as f64);
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;

    fn setup() -> (Vec<Dag>, ClusterSpec, PolicyNetwork, ValueNetwork) {
        let mut rng = StdRng::seed_from_u64(5);
        let dags: Vec<Dag> = (0..3)
            .map(|_| {
                LayeredDagSpec {
                    num_tasks: 10,
                    ..LayeredDagSpec::paper_training()
                }
                .generate(&mut rng)
            })
            .collect();
        let spec = ClusterSpec::unit(2);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let value = ValueNetwork::new(FeatureConfig::small(2), &[24], &mut rng);
        (dags, spec, policy, value)
    }

    #[test]
    fn training_reduces_regression_loss() {
        let (dags, spec, mut policy, mut value) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let history = train_value_network(
            &mut value,
            &mut policy,
            &dags,
            &spec,
            &ValueTrainConfig {
                episodes_per_dag: 4,
                epochs: 25,
                batch_size: 64,
                learning_rate: 1e-2,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(history.len(), 25);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss did not decrease: {history:?}"
        );
    }

    #[test]
    fn predictions_are_sane() {
        let (dags, spec, mut policy, mut value) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        train_value_network(
            &mut value,
            &mut policy,
            &dags,
            &spec,
            &ValueTrainConfig {
                episodes_per_dag: 4,
                epochs: 15,
                batch_size: 64,
                learning_rate: 1e-2,
            },
            &mut rng,
        )
        .unwrap();
        let dag = &dags[0];
        let features = GraphFeatures::compute(dag);
        let scale = dag.total_work() as f64;
        let state = SimState::new(dag, &spec).unwrap();
        let remaining = value.predict_remaining(dag, &spec, &state, &features, scale);
        assert!(remaining >= 0.0);
        // From the initial state the prediction should be within a loose
        // factor of the theoretical window.
        assert!(remaining <= 2.0 * dag.total_work() as f64);
        let fin = value.predict_final(dag, &spec, &state, &features, scale);
        assert!(fin >= state.max_finish() as f64);
    }

    #[test]
    #[should_panic(expected = "featurizations must agree")]
    fn mismatched_featurizations_panic() {
        let (dags, spec, mut policy, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut value = ValueNetwork::new(FeatureConfig::paper(2), &[8], &mut rng);
        let _ = train_value_network(
            &mut value,
            &mut policy,
            &dags,
            &spec,
            &ValueTrainConfig::default(),
            &mut rng,
        );
    }
}
