//! The critical-path expert used for supervised pre-training.
//!
//! The paper (§IV) initializes the policy network by imitating "a greedy
//! heuristic approach such as the critical path algorithm", because
//! REINFORCE from a random network produces "extremely long and
//! meaningless trajectories". [`CpExpert`] replays the CP list scheduler
//! in the network's own action space, and [`collect_expert_dataset`] turns
//! its decisions into `(features, action, mask)` training rows.

use spear_cluster::env::{Env, EnvContext, EpisodeDriver, FnPolicy, NoRng, SimEnv};
use spear_cluster::{Action, ClusterSpec, SimState, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::Dag;

use crate::{Featurizer, StateView};

/// The expert policy: schedule the legal visible slot with the largest
/// b-level (slot 0 first, since slots are b-level-ordered), otherwise
/// process.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpExpert;

impl CpExpert {
    /// Creates the expert.
    pub fn new() -> Self {
        CpExpert
    }

    /// The expert's action index for a featurized state: the first legal
    /// slot (slots are ordered by descending b-level), else process.
    ///
    /// # Panics
    ///
    /// Panics if no action is legal (impossible for non-terminal states).
    pub fn action_index(&self, view: &StateView) -> usize {
        view.mask
            .iter()
            .position(|&legal| legal)
            .expect("non-terminal states always have a legal action")
    }
}

/// A supervised dataset of expert decisions.
#[derive(Debug, Clone, Default)]
pub struct ExpertDataset {
    /// Network inputs, one per decision.
    pub features: Vec<Vec<f64>>,
    /// Expert action indices.
    pub actions: Vec<usize>,
    /// Legality masks.
    pub masks: Vec<Vec<bool>>,
}

impl ExpertDataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Appends another dataset.
    pub fn extend(&mut self, other: ExpertDataset) {
        self.features.extend(other.features);
        self.actions.extend(other.actions);
        self.masks.extend(other.masks);
    }
}

/// Rolls the CP expert through `dag` on `spec`, recording every decision.
/// Returns the dataset and the expert's makespan.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn collect_expert_dataset(
    featurizer: &Featurizer,
    dag: &Dag,
    spec: &ClusterSpec,
) -> Result<(ExpertDataset, u64), SpearError> {
    let features = GraphFeatures::compute(dag);
    let expert = CpExpert::new();
    let mut data = ExpertDataset::default();
    let mut env = SimEnv::new(dag, spec)?;
    let mut driver = EpisodeDriver::new(FnPolicy(
        |ctx: &EnvContext<'_>, state: &SimState, _legal: &[Action]| {
            let view = featurizer.featurize(ctx.dag, ctx.spec, state, &features);
            let idx = expert.action_index(&view);
            let action = if idx == featurizer.config().process_action() {
                Action::Process
            } else {
                Action::Schedule(view.slot_tasks[idx].expect("legal slot actions hold a task"))
            };
            data.features.push(view.features);
            data.actions.push(idx);
            data.masks.push(view.mask);
            action
        },
    ));
    driver.drive(&mut env, &mut NoRng, u64::MAX)?;
    drop(driver);
    let makespan = env.makespan().ok_or(SpearError::IncompleteEpisode)?;
    Ok((data, makespan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;
    use spear_sched::{CpScheduler, Scheduler};

    fn setup() -> (Dag, ClusterSpec, Featurizer) {
        let dag = LayeredDagSpec {
            num_tasks: 15,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(11));
        (
            dag,
            ClusterSpec::unit(2),
            Featurizer::new(FeatureConfig::small(2)),
        )
    }

    #[test]
    fn expert_dataset_covers_episode() {
        let (dag, spec, fz) = setup();
        let (data, makespan) = collect_expert_dataset(&fz, &dag, &spec).unwrap();
        assert!(data.len() > dag.len());
        assert!(makespan >= dag.critical_path_length());
        for (idx, mask) in data.actions.iter().zip(&data.masks) {
            assert!(mask[*idx], "expert chose an illegal action");
        }
    }

    /// The expert in network action space reproduces the CP list
    /// scheduler's makespan when the frontier fits in the visible window.
    #[test]
    fn expert_matches_cp_scheduler() {
        let (dag, spec, _) = setup();
        // A window large enough that no task is ever hidden in the backlog.
        let fz = Featurizer::new(FeatureConfig {
            max_ready: dag.len(),
            ..FeatureConfig::small(2)
        });
        let (_, expert_makespan) = collect_expert_dataset(&fz, &dag, &spec).unwrap();
        let cp = CpScheduler::new().schedule(&dag, &spec).unwrap();
        assert_eq!(expert_makespan, cp.makespan());
    }

    #[test]
    fn dataset_extend_concatenates() {
        let (dag, spec, fz) = setup();
        let (mut a, _) = collect_expert_dataset(&fz, &dag, &spec).unwrap();
        let (b, _) = collect_expert_dataset(&fz, &dag, &spec).unwrap();
        let n = a.len();
        a.extend(b);
        assert_eq!(a.len(), 2 * n);
        assert!(!a.is_empty());
    }
}
