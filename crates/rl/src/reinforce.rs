//! REINFORCE with an averaged-rollout baseline (paper §II-B, Eq. 2–3 and
//! §IV).
//!
//! For every training example (a DAG), the trainer simulates `rollouts`
//! episodes with the stochastic policy, uses the mean return as the
//! baseline, and ascends `advantage · ∇ log π(a|s)` accumulated over all
//! steps of all rollouts. The paper trains on 144 random 25-task examples
//! with 20 rollouts each; both counts are configurable because wall-clock
//! budgets differ.

use rand::Rng;
use spear_cluster::{ClusterSpec, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::Dag;
use spear_nn::{loss, Matrix, Optimizer, RmsProp};
use spear_obs::{Counter, Gauge, Histogram, Obs};

use crate::episode::run_episode_with_features;
use crate::{PolicyNetwork, SelectionMode};

/// Hyper-parameters of the REINFORCE phase.
#[derive(Debug, Clone, PartialEq)]
pub struct ReinforceConfig {
    /// Training epochs (passes over the example set).
    pub epochs: usize,
    /// Monte-Carlo rollouts per example per epoch (paper: 20); their mean
    /// return is the baseline.
    pub rollouts: usize,
    /// Optional global gradient-norm clip (stabilizes small-batch runs).
    pub max_grad_norm: Option<f64>,
    /// Normalize returns by the Tetris estimate of each DAG so examples of
    /// different scales contribute comparable advantages.
    pub normalize_returns: bool,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        ReinforceConfig {
            epochs: 100,
            rollouts: 20,
            max_grad_norm: Some(10.0),
            normalize_returns: true,
        }
    }
}

/// One point of the learning curve (Fig. 8(b)).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainingCurvePoint {
    /// Epoch index.
    pub epoch: usize,
    /// Mean makespan over every rollout of every example in the epoch —
    /// the negative of the mean reward.
    pub mean_makespan: f64,
    /// Mean policy entropy over the epoch's decisions (diagnostic).
    pub mean_entropy: f64,
}

/// The trainer's instruments (the `rl.*` metric family): per-epoch curve
/// gauges, per-episode return distribution, and gradient norms. Built
/// when an enabled sink is attached.
#[derive(Debug, Clone)]
struct TrainObs {
    epochs: Counter,
    episodes: Counter,
    episode_return: Histogram,
    epoch_ns: Histogram,
    mean_makespan: Gauge,
    mean_entropy: Gauge,
    grad_norm: Gauge,
}

impl TrainObs {
    fn new(obs: &Obs) -> Self {
        TrainObs {
            epochs: obs.counter("rl.epochs"),
            episodes: obs.counter("rl.episodes"),
            episode_return: obs.histogram("rl.episode_return"),
            epoch_ns: obs.histogram("rl.epoch_ns"),
            mean_makespan: obs.gauge("rl.mean_makespan"),
            mean_entropy: obs.gauge("rl.mean_entropy"),
            grad_norm: obs.gauge("rl.grad_norm"),
        }
    }
}

/// The REINFORCE trainer. Owns the optimizer; borrows the policy per call
/// so callers can evaluate between epochs.
///
/// An [`Obs`] sink attached via [`ReinforceTrainer::with_obs`] records the
/// `rl.*` metric family: per-epoch mean makespan/entropy and pre-clip
/// gradient norm as gauges, per-episode returns (as makespans) into a
/// histogram, and epoch wall time. Recording reads values the trainer
/// already computes (plus one gradient-norm pass per example when
/// enabled) and never changes an update.
#[derive(Debug)]
pub struct ReinforceTrainer {
    config: ReinforceConfig,
    optimizer: RmsProp,
    obs: Obs,
    train_obs: Option<TrainObs>,
}

impl ReinforceTrainer {
    /// Creates a trainer with the paper's RMSProp hyper-parameters.
    pub fn new(config: ReinforceConfig) -> Self {
        ReinforceTrainer {
            config,
            optimizer: RmsProp::default_paper(),
            obs: Obs::noop(),
            train_obs: None,
        }
    }

    /// Creates a trainer with a custom optimizer learning rate (the
    /// paper's 1e-4 needs thousands of epochs; larger rates converge in
    /// fewer for the scaled-down experiments).
    pub fn with_learning_rate(config: ReinforceConfig, alpha: f64) -> Self {
        let mut optimizer = RmsProp::default_paper();
        optimizer.set_alpha(alpha);
        ReinforceTrainer {
            config,
            optimizer,
            obs: Obs::noop(),
            train_obs: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ReinforceConfig {
        &self.config
    }

    /// Attaches a metric sink recording the `rl.*` family (see the
    /// type-level docs). Pass [`Obs::noop`] to detach.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place variant of [`ReinforceTrainer::with_obs`].
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.train_obs =
            (spear_obs::compiled() && self.obs.is_enabled()).then(|| TrainObs::new(&self.obs));
    }

    /// Runs one training epoch over `examples`, updating the policy once
    /// per example (mini-batch = the example's rollouts). Returns the
    /// epoch's curve point.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        policy: &mut PolicyNetwork,
        examples: &[(Dag, GraphFeatures)],
        spec: &ClusterSpec,
        epoch: usize,
        rng: &mut R,
    ) -> Result<TrainingCurvePoint, SpearError> {
        let _epoch_span = if spear_obs::compiled() {
            self.train_obs.as_ref().map(|to| to.epoch_ns.start_span())
        } else {
            None
        };
        let mut makespan_sum = 0.0;
        let mut makespan_count = 0usize;
        let mut entropy_sum = 0.0;
        let mut entropy_count = 0usize;

        for (dag, features) in examples {
            // 1. Roll out.
            let episodes: Vec<_> = (0..self.config.rollouts)
                .map(|_| {
                    run_episode_with_features(
                        policy,
                        dag,
                        spec,
                        features,
                        SelectionMode::Sample,
                        true,
                        rng,
                    )
                })
                .collect::<Result<_, _>>()?;

            // 2. Baseline = mean return over the rollouts (paper §IV).
            let mean_ret: f64 =
                episodes.iter().map(|e| e.ret()).sum::<f64>() / episodes.len() as f64;
            let scale = if self.config.normalize_returns {
                // Returns are O(makespan); normalize by the mean magnitude
                // so advantages are O(1) regardless of DAG size.
                mean_ret.abs().max(1.0)
            } else {
                1.0
            };

            for e in &episodes {
                makespan_sum += e.makespan as f64;
            }
            makespan_count += episodes.len();
            if spear_obs::compiled() {
                if let Some(to) = &self.train_obs {
                    to.episodes.add(episodes.len() as u64);
                    for e in &episodes {
                        to.episode_return.record(e.makespan);
                    }
                }
            }

            // 3. Accumulate the policy gradient over all steps.
            policy.net_mut().zero_grad();
            let total_steps: usize = episodes.iter().map(|e| e.steps.len()).sum();
            if total_steps == 0 {
                continue;
            }
            for episode in &episodes {
                let advantage = (episode.ret() - mean_ret) / scale;
                if advantage == 0.0 {
                    continue;
                }
                let rows: Vec<&[f64]> = episode
                    .steps
                    .iter()
                    .map(|s| s.features.as_slice())
                    .collect();
                let x = Matrix::from_rows(&rows);
                let actions: Vec<usize> = episode.steps.iter().map(|s| s.action).collect();
                let masks: Vec<Vec<bool>> = episode.steps.iter().map(|s| s.mask.clone()).collect();
                let advantages = vec![advantage; actions.len()];
                let logits = policy.net_mut().forward(&x);
                entropy_sum += loss::mean_entropy(&logits, &masks) * actions.len() as f64;
                entropy_count += actions.len();
                let d = loss::policy_gradient(
                    &logits,
                    &actions,
                    &advantages,
                    &masks,
                    1.0 / total_steps as f64,
                );
                policy.net_mut().backward(&d);
            }

            // 4. Update.
            if spear_obs::compiled() {
                if let Some(to) = &self.train_obs {
                    to.grad_norm.set(policy.net_mut().grad_norm());
                }
            }
            if let Some(max_norm) = self.config.max_grad_norm {
                policy.net_mut().clip_grad_norm(max_norm);
            }
            self.optimizer.step(policy.net_mut());
            policy.net_mut().zero_grad();
        }

        let point = TrainingCurvePoint {
            epoch,
            mean_makespan: makespan_sum / makespan_count.max(1) as f64,
            mean_entropy: entropy_sum / entropy_count.max(1) as f64,
        };
        if spear_obs::compiled() {
            if let Some(to) = &self.train_obs {
                to.epochs.incr();
                to.mean_makespan.set(point.mean_makespan);
                to.mean_entropy.set(point.mean_entropy);
            }
        }
        Ok(point)
    }

    /// Runs the full training loop, returning the learning curve.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        policy: &mut PolicyNetwork,
        dags: &[Dag],
        spec: &ClusterSpec,
        rng: &mut R,
    ) -> Result<Vec<TrainingCurvePoint>, SpearError> {
        let examples: Vec<(Dag, GraphFeatures)> = dags
            .iter()
            .map(|d| (d.clone(), GraphFeatures::compute(d)))
            .collect();
        let mut curve = Vec::with_capacity(self.config.epochs);
        for epoch in 0..self.config.epochs {
            curve.push(self.train_epoch(policy, &examples, spec, epoch, rng)?);
        }
        Ok(curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;

    /// End-to-end smoke test: a few epochs on tiny DAGs must improve (or
    /// at least not catastrophically regress) the mean makespan, and the
    /// curve must be fully recorded.
    #[test]
    fn reinforce_improves_tiny_policy() {
        let mut rng = StdRng::seed_from_u64(33);
        let dags: Vec<Dag> = (0..3)
            .map(|_| {
                LayeredDagSpec {
                    num_tasks: 8,
                    ..LayeredDagSpec::paper_training()
                }
                .generate(&mut rng)
            })
            .collect();
        let spec = ClusterSpec::unit(2);
        let mut policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[24], &mut rng);
        let mut trainer = ReinforceTrainer::with_learning_rate(
            ReinforceConfig {
                epochs: 15,
                rollouts: 8,
                max_grad_norm: Some(5.0),
                normalize_returns: true,
            },
            1e-2,
        );
        let curve = trainer.train(&mut policy, &dags, &spec, &mut rng).unwrap();
        assert_eq!(curve.len(), 15);
        let first: f64 = curve[..3].iter().map(|p| p.mean_makespan).sum::<f64>() / 3.0;
        let last: f64 = curve[curve.len() - 3..]
            .iter()
            .map(|p| p.mean_makespan)
            .sum::<f64>()
            / 3.0;
        assert!(
            last <= first * 1.05,
            "training diverged: first {first}, last {last}"
        );
        for p in &curve {
            assert!(p.mean_makespan.is_finite());
            assert!(p.mean_entropy >= 0.0);
        }
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = ReinforceConfig::default();
        assert_eq!(cfg.rollouts, 20);
    }

    #[test]
    fn trainer_is_deterministic_given_seed() {
        let make_curve = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let dag = LayeredDagSpec {
                num_tasks: 6,
                ..LayeredDagSpec::paper_training()
            }
            .generate(&mut rng);
            let spec = ClusterSpec::unit(2);
            let mut policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[12], &mut rng);
            let mut trainer = ReinforceTrainer::new(ReinforceConfig {
                epochs: 3,
                rollouts: 4,
                max_grad_norm: None,
                normalize_returns: false,
            });
            trainer.train(&mut policy, &[dag], &spec, &mut rng).unwrap()
        };
        let a = make_curve(5);
        let b = make_curve(5);
        assert_eq!(a, b);
    }
}
