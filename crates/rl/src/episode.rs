//! Full-episode rollouts of the policy on the simulator.

use rand::Rng;
use spear_cluster::env::{DecisionPolicy, Env, EnvContext, EpisodeDriver, SimEnv};
use spear_cluster::{Action, ClusterSpec, SimState, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::Dag;
use spear_nn::{InferScratch, InferenceEngine, Precision};

use crate::PolicyNetwork;

/// Whether the policy samples from its distribution (training) or takes
/// the argmax (evaluation / MCTS guidance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMode {
    /// Sample from the masked softmax — used during REINFORCE training,
    /// where exploration comes from the stochastic policy itself.
    Sample,
    /// Always take the most probable action.
    Greedy,
}

/// One recorded decision of an episode.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// The network input at the decision point.
    pub features: Vec<f64>,
    /// The action index the policy chose.
    pub action: usize,
    /// The legality mask at the decision point.
    pub mask: Vec<bool>,
    /// Simulation clock at the decision point (used by value-network
    /// regression targets: remaining makespan = final − clock).
    pub clock: u64,
}

/// The outcome of one rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// Recorded decisions (empty when recording was disabled).
    pub steps: Vec<StepRecord>,
    /// Final makespan of the produced schedule.
    pub makespan: u64,
}

impl Episode {
    /// The REINFORCE return of the episode: the negative makespan (the
    /// paper's cumulative reward of −1 per processed time slot telescopes
    /// to exactly this).
    pub fn ret(&self) -> f64 {
        -(self.makespan as f64)
    }
}

/// Rolls the policy out on `dag` from the initial state to completion.
///
/// With `record = true` every decision's features/action/mask are kept for
/// the policy-gradient update; evaluation rollouts pass `false` to skip the
/// bookkeeping.
///
/// # Errors
///
/// Propagates simulator errors (impossible for a well-formed policy, since
/// sampling is restricted to the legality mask).
pub fn run_episode<R: Rng + ?Sized>(
    policy: &mut PolicyNetwork,
    dag: &Dag,
    spec: &ClusterSpec,
    mode: SelectionMode,
    record: bool,
    rng: &mut R,
) -> Result<Episode, SpearError> {
    let features = GraphFeatures::compute(dag);
    run_episode_with_features(policy, dag, spec, &features, mode, record, rng)
}

/// [`PolicyNetwork`] adapted to the environment layer's
/// [`DecisionPolicy`]: each decision featurizes the state, runs one
/// masked forward pass, and (optionally) records the decision for the
/// policy-gradient update.
struct NetworkPolicy<'a, 'b> {
    policy: &'a mut PolicyNetwork,
    features: &'a GraphFeatures,
    greedy: bool,
    record: Option<&'b mut Vec<StepRecord>>,
}

impl<R: Rng + ?Sized> DecisionPolicy<R> for NetworkPolicy<'_, '_> {
    fn decide(
        &mut self,
        ctx: &EnvContext<'_>,
        state: &SimState,
        _legal: &[Action],
        rng: &mut R,
    ) -> Action {
        let (idx, view) = self.policy.choose_action_index(
            ctx.dag,
            ctx.spec,
            state,
            self.features,
            self.greedy,
            rng,
        );
        let action = self.policy.action_from_index(&view, idx);
        if let Some(steps) = self.record.as_deref_mut() {
            steps.push(StepRecord {
                features: view.features,
                action: idx,
                mask: view.mask,
                clock: state.clock(),
            });
        }
        action
    }

    fn name(&self) -> &str {
        "policy-network"
    }
}

/// Like [`run_episode`] but reuses precomputed [`GraphFeatures`] — the
/// trainers roll out the same DAG many times and compute features once.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_episode_with_features<R: Rng + ?Sized>(
    policy: &mut PolicyNetwork,
    dag: &Dag,
    spec: &ClusterSpec,
    features: &GraphFeatures,
    mode: SelectionMode,
    record: bool,
    rng: &mut R,
) -> Result<Episode, SpearError> {
    let mut steps = Vec::new();
    let mut env = SimEnv::new(dag, spec)?;
    let mut driver = EpisodeDriver::new(NetworkPolicy {
        policy,
        features,
        greedy: mode == SelectionMode::Greedy,
        record: record.then_some(&mut steps),
    });
    let outcome = driver.drive(&mut env, rng, u64::MAX)?;
    debug_assert!(outcome.is_terminal());
    drop(driver);
    let makespan = env.makespan().ok_or(SpearError::IncompleteEpisode)?;
    Ok(Episode { steps, makespan })
}

/// [`NetworkPolicy`] over the `f32` inference engine: each decision
/// runs the fast forward pass and selects through the same rules
/// ([`PolicyNetwork::choose_action_index_fast`]).
struct FastNetworkPolicy<'a, 'b> {
    policy: &'a mut PolicyNetwork,
    engine: InferenceEngine,
    scratch: InferScratch,
    features: &'a GraphFeatures,
    greedy: bool,
    record: Option<&'b mut Vec<StepRecord>>,
}

impl<R: Rng + ?Sized> DecisionPolicy<R> for FastNetworkPolicy<'_, '_> {
    fn decide(
        &mut self,
        ctx: &EnvContext<'_>,
        state: &SimState,
        _legal: &[Action],
        rng: &mut R,
    ) -> Action {
        let (idx, view) = self.policy.choose_action_index_fast(
            &self.engine,
            &mut self.scratch,
            ctx.dag,
            ctx.spec,
            state,
            self.features,
            self.greedy,
            rng,
        );
        let action = self.policy.action_from_index(&view, idx);
        if let Some(steps) = self.record.as_deref_mut() {
            steps.push(StepRecord {
                features: view.features,
                action: idx,
                mask: view.mask,
                clock: state.clock(),
            });
        }
        action
    }

    fn name(&self) -> &str {
        "policy-network-fast"
    }
}

/// [`run_episode_with_features`] with an explicit [`Precision`]:
/// `Exact` delegates to the `f64` path unchanged (bit-identical to the
/// pinned golden rollouts); `Fast` snapshots an `f32`
/// [`InferenceEngine`] once for the episode and decides through it.
///
/// Training never calls this with `Fast` — gradients always come from
/// the `f64` network — but *evaluation* rollouts (greedy benchmarking,
/// the CLI's `evaluate`) can.
///
/// # Errors
///
/// Propagates simulator errors.
#[allow(clippy::too_many_arguments)]
pub fn run_episode_with_features_precision<R: Rng + ?Sized>(
    policy: &mut PolicyNetwork,
    dag: &Dag,
    spec: &ClusterSpec,
    features: &GraphFeatures,
    mode: SelectionMode,
    record: bool,
    rng: &mut R,
    precision: Precision,
) -> Result<Episode, SpearError> {
    if precision == Precision::Exact {
        return run_episode_with_features(policy, dag, spec, features, mode, record, rng);
    }
    let mut steps = Vec::new();
    let mut env = SimEnv::new(dag, spec)?;
    let engine = policy.inference_engine();
    let mut driver = EpisodeDriver::new(FastNetworkPolicy {
        policy,
        engine,
        scratch: InferScratch::new(),
        features,
        greedy: mode == SelectionMode::Greedy,
        record: record.then_some(&mut steps),
    });
    let outcome = driver.drive(&mut env, rng, u64::MAX)?;
    debug_assert!(outcome.is_terminal());
    drop(driver);
    let makespan = env.makespan().ok_or(SpearError::IncompleteEpisode)?;
    Ok(Episode { steps, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;

    fn setup() -> (Dag, ClusterSpec, PolicyNetwork) {
        let mut rng = StdRng::seed_from_u64(7);
        let dag = LayeredDagSpec {
            num_tasks: 12,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut rng);
        let spec = ClusterSpec::unit(2);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        (dag, spec, policy)
    }

    #[test]
    fn episode_completes_and_is_bounded() {
        let (dag, spec, mut policy) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let ep = run_episode(
            &mut policy,
            &dag,
            &spec,
            SelectionMode::Sample,
            true,
            &mut rng,
        )
        .unwrap();
        assert!(ep.makespan >= dag.critical_path_length());
        assert!(ep.makespan <= dag.total_work());
        assert_eq!(ep.ret(), -(ep.makespan as f64));
    }

    #[test]
    fn recording_captures_every_decision() {
        let (dag, spec, mut policy) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let ep = run_episode(
            &mut policy,
            &dag,
            &spec,
            SelectionMode::Sample,
            true,
            &mut rng,
        )
        .unwrap();
        // At least one schedule decision per task plus at least one
        // process decision.
        assert!(ep.steps.len() > dag.len());
        for step in &ep.steps {
            assert!(step.mask[step.action], "recorded an illegal action");
            assert_eq!(step.features.len(), policy.feature_config().input_dim());
        }
    }

    #[test]
    fn unrecorded_episode_has_no_steps() {
        let (dag, spec, mut policy) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let ep = run_episode(
            &mut policy,
            &dag,
            &spec,
            SelectionMode::Sample,
            false,
            &mut rng,
        )
        .unwrap();
        assert!(ep.steps.is_empty());
        assert!(ep.makespan > 0);
    }

    #[test]
    fn greedy_episodes_are_reproducible() {
        let (dag, spec, mut policy) = setup();
        let a = run_episode(
            &mut policy,
            &dag,
            &spec,
            SelectionMode::Greedy,
            false,
            &mut StdRng::seed_from_u64(10),
        )
        .unwrap();
        let b = run_episode(
            &mut policy,
            &dag,
            &spec,
            SelectionMode::Greedy,
            false,
            &mut StdRng::seed_from_u64(20),
        )
        .unwrap();
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn exact_precision_delegates_bit_identically() {
        let (dag, spec, mut policy) = setup();
        let features = GraphFeatures::compute(&dag);
        let a = run_episode_with_features(
            &mut policy,
            &dag,
            &spec,
            &features,
            SelectionMode::Sample,
            true,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        let b = run_episode_with_features_precision(
            &mut policy,
            &dag,
            &spec,
            &features,
            SelectionMode::Sample,
            true,
            &mut StdRng::seed_from_u64(5),
            Precision::Exact,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fast_episode_completes_near_exact() {
        let (dag, spec, mut policy) = setup();
        let features = GraphFeatures::compute(&dag);
        let exact = run_episode_with_features_precision(
            &mut policy,
            &dag,
            &spec,
            &features,
            SelectionMode::Greedy,
            false,
            &mut StdRng::seed_from_u64(6),
            Precision::Exact,
        )
        .unwrap();
        let fast = run_episode_with_features_precision(
            &mut policy,
            &dag,
            &spec,
            &features,
            SelectionMode::Greedy,
            false,
            &mut StdRng::seed_from_u64(6),
            Precision::Fast,
        )
        .unwrap();
        assert!(fast.makespan >= dag.critical_path_length());
        assert!(fast.makespan <= dag.total_work());
        // Greedy fast decisions may flip only inside the f32 tolerance
        // band, so the makespans stay in the same neighbourhood.
        let (lo, hi) = (
            exact.makespan.min(fast.makespan),
            exact.makespan.max(fast.makespan),
        );
        assert!(
            hi as f64 <= lo as f64 * 1.5,
            "exact {} vs fast {}",
            exact.makespan,
            fast.makespan
        );
    }

    #[test]
    fn sampled_episodes_vary_with_seed() {
        let (dag, spec, mut policy) = setup();
        let runs: Vec<u64> = (0..8)
            .map(|s| {
                run_episode(
                    &mut policy,
                    &dag,
                    &spec,
                    SelectionMode::Sample,
                    false,
                    &mut StdRng::seed_from_u64(s),
                )
                .unwrap()
                .makespan
            })
            .collect();
        // A fresh random policy explores: not every rollout is identical.
        assert!(runs.iter().any(|&m| m != runs[0]));
    }
}
