//! Transposition-keyed inference caches for DRL-guided search.
//!
//! MCTS rollouts revisit identical [`SimState`]s along different tree
//! paths (and the path-replay tree re-derives them on every iteration),
//! so the same featurize → forward → softmax pipeline runs many times
//! per scheduling decision. These caches key the *result* of that
//! pipeline by [`SimState::fingerprint`] — an incremental 64-bit hash
//! whose coherence the `InvariantAuditor` checks against a from-scratch
//! recomputation — so a repeat visit costs one probe instead of a full
//! network inference.
//!
//! Both caches are capacity-bounded open-addressing tables with linear
//! probing and **generation clearing**: callers bump the generation at
//! each scheduling *episode* (one complete `schedule()` of one DAG),
//! which invalidates every entry in O(1) without touching the storage.
//! Within an episode the DAG, cluster spec, graph features, and network
//! weights are all fixed, so a fingerprint-keyed entry can never go
//! stale across the episode's decisions — consecutive decisions
//! re-explore overlapping subtrees, and retaining entries across them
//! is where most hits come from. Entries from a *previous* episode
//! would be wrong (different DAG or weights), hence the per-episode
//! bump. There are no deletions, so an out-of-generation slot
//! terminates a probe chain soundly.
//!
//! Collision safety: keys are 64-bit. With tens of thousands of
//! distinct states per episode, the birthday bound puts the
//! per-episode collision probability around 2⁻³⁵; a collision would
//! return a well-formed distribution over the *probed* state's
//! actions, so the search stays deterministic and legal-action-safe
//! either way, and the cache can be disabled outright for differential
//! runs.
//!
//! [`SimState`]: spear_cluster::SimState
//! [`SimState::fingerprint`]: spear_cluster::SimState::fingerprint

use spear_dag::TaskId;

/// How many slots a probe walks before giving up (on `get`) or
/// evicting (on `insert`).
const PROBE_LIMIT: usize = 8;

/// Hit/miss/evict counters for one cache instance.
///
/// "Hit" and "miss" count `get` probes; "evictions" counts inserts that
/// displaced a live same-generation entry because the whole probe
/// window was occupied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Probes that found a live entry for the requested key.
    pub hits: u64,
    /// Probes that found nothing (and were typically followed by a
    /// fresh inference plus an `insert`).
    pub misses: u64,
    /// Inserts that overwrote a live entry for a *different* key.
    pub evictions: u64,
}

impl EvalCacheStats {
    /// Component-wise sum, for aggregating per-worker caches.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// Generation-cleared policy-evaluation cache.
///
/// Stores, per state fingerprint, the masked softmax distribution a
/// `DrlPolicy` produced (`action_dim` probabilities) together with the
/// ready-slot → task assignment (`max_ready` slots) that gives those
/// probabilities meaning. A hit reproduces `action_probs` output
/// bit-identically without featurizing or running the network.
///
/// Generic over the probability element: `f64` (the default) for the
/// exact path, `f32` ([`EvalCacheF32`]) for the fast-precision path,
/// where halving the row footprint doubles the effective entry count at
/// the same memory budget.
#[derive(Debug, Clone)]
pub struct EvalCache<T = f64> {
    /// Slot count; always a power of two so probing can mask.
    capacity: usize,
    /// Fingerprint stored in each slot (valid only when the slot's
    /// generation matches the current one).
    keys: Vec<u64>,
    /// Generation tag per slot; `0` is never current, so fresh slots
    /// read as stale.
    gens: Vec<u64>,
    /// Current generation; bumped by [`EvalCache::begin_generation`].
    generation: u64,
    /// Flat `capacity × action_dim` probability storage.
    probs: Vec<T>,
    /// Flat `capacity × max_ready` slot-task storage.
    slots: Vec<Option<TaskId>>,
    /// Probability row width.
    action_dim: usize,
    /// Slot-task row width.
    max_ready: usize,
    /// Lifetime counters.
    stats: EvalCacheStats,
}

impl<T: Copy + Default> EvalCache<T> {
    /// Creates a cache with room for at least `capacity` entries
    /// (rounded up to a power of two), each holding `action_dim`
    /// probabilities and `max_ready` slot tasks.
    #[must_use]
    pub fn new(capacity: usize, action_dim: usize, max_ready: usize) -> Self {
        let capacity = capacity.max(PROBE_LIMIT).next_power_of_two();
        Self {
            capacity,
            keys: vec![0; capacity],
            gens: vec![0; capacity],
            generation: 1,
            probs: vec![T::default(); capacity * action_dim],
            slots: vec![None; capacity * max_ready],
            action_dim,
            max_ready,
            stats: EvalCacheStats::default(),
        }
    }

    /// Invalidates every entry in O(1). Call at each scheduling
    /// episode boundary so entries never outlive the DAG/network pair
    /// they were computed under.
    pub fn begin_generation(&mut self) {
        self.generation += 1;
    }

    /// Looks up `key`, returning the cached `(probabilities,
    /// slot_tasks)` rows on a hit. Counts a hit or a miss either way.
    pub fn get(&mut self, key: u64) -> Option<(&[T], &[Option<TaskId>])> {
        let mask = self.capacity - 1;
        let start = (key as usize) & mask;
        for step in 0..PROBE_LIMIT {
            let idx = (start + step) & mask;
            if self.gens[idx] != self.generation {
                // Occupancy is monotone within a generation (no
                // deletions), so a stale slot ends the chain.
                break;
            }
            if self.keys[idx] == key {
                self.stats.hits += 1;
                let p = &self.probs[idx * self.action_dim..(idx + 1) * self.action_dim];
                let s = &self.slots[idx * self.max_ready..(idx + 1) * self.max_ready];
                return Some((p, s));
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores `(probs, slot_tasks)` under `key`, evicting the entry at
    /// the probe start if the whole window is live with other keys.
    ///
    /// # Panics
    /// If the row widths disagree with the ones given to `new`.
    pub fn insert(&mut self, key: u64, probs: &[T], slot_tasks: &[Option<TaskId>]) {
        assert_eq!(probs.len(), self.action_dim);
        assert_eq!(slot_tasks.len(), self.max_ready);
        let mask = self.capacity - 1;
        let start = (key as usize) & mask;
        let mut target = start;
        let mut found = false;
        for step in 0..PROBE_LIMIT {
            let idx = (start + step) & mask;
            if self.gens[idx] != self.generation || self.keys[idx] == key {
                target = idx;
                found = true;
                break;
            }
        }
        if !found {
            self.stats.evictions += 1;
        }
        self.keys[target] = key;
        self.gens[target] = self.generation;
        self.probs[target * self.action_dim..(target + 1) * self.action_dim].copy_from_slice(probs);
        self.slots[target * self.max_ready..(target + 1) * self.max_ready]
            .copy_from_slice(slot_tasks);
    }

    /// Lifetime hit/miss/evict counters.
    #[must_use]
    pub fn stats(&self) -> EvalCacheStats {
        self.stats
    }
}

/// The `f32`-row policy cache of the fast-precision inference path.
pub type EvalCacheF32 = EvalCache<f32>;

/// The `f32` value cache of the fast-precision inference path.
pub type ValueCacheF32 = ValueCache<f32>;

/// Generation-cleared scalar cache for value-network estimates, keyed
/// the same way as [`EvalCache`]. Generic over the stored scalar like
/// [`EvalCache`] (`f64` exact, `f32` fast).
#[derive(Debug, Clone)]
pub struct ValueCache<T = f64> {
    /// Slot count; always a power of two so probing can mask.
    capacity: usize,
    /// Fingerprint stored in each slot.
    keys: Vec<u64>,
    /// Generation tag per slot; `0` is never current.
    gens: Vec<u64>,
    /// Current generation.
    generation: u64,
    /// Cached scalar per slot.
    values: Vec<T>,
    /// Lifetime counters.
    stats: EvalCacheStats,
}

impl<T: Copy + Default> ValueCache<T> {
    /// Creates a cache with room for at least `capacity` entries
    /// (rounded up to a power of two).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(PROBE_LIMIT).next_power_of_two();
        Self {
            capacity,
            keys: vec![0; capacity],
            gens: vec![0; capacity],
            generation: 1,
            values: vec![T::default(); capacity],
            stats: EvalCacheStats::default(),
        }
    }

    /// Invalidates every entry in O(1).
    pub fn begin_generation(&mut self) {
        self.generation += 1;
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn get(&mut self, key: u64) -> Option<T> {
        let mask = self.capacity - 1;
        let start = (key as usize) & mask;
        for step in 0..PROBE_LIMIT {
            let idx = (start + step) & mask;
            if self.gens[idx] != self.generation {
                break;
            }
            if self.keys[idx] == key {
                self.stats.hits += 1;
                return Some(self.values[idx]);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores `value` under `key`, evicting at the probe start if the
    /// window is full.
    pub fn insert(&mut self, key: u64, value: T) {
        let mask = self.capacity - 1;
        let start = (key as usize) & mask;
        let mut target = start;
        let mut found = false;
        for step in 0..PROBE_LIMIT {
            let idx = (start + step) & mask;
            if self.gens[idx] != self.generation || self.keys[idx] == key {
                target = idx;
                found = true;
                break;
            }
        }
        if !found {
            self.stats.evictions += 1;
        }
        self.keys[target] = key;
        self.gens[target] = self.generation;
        self.values[target] = value;
    }

    /// Lifetime hit/miss/evict counters.
    #[must_use]
    pub fn stats(&self) -> EvalCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f64, dim: usize) -> Vec<f64> {
        vec![v; dim]
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut cache = EvalCache::new(64, 3, 2);
        assert!(cache.get(42).is_none());
        cache.insert(42, &row(0.5, 3), &[Some(TaskId::new(7)), None]);
        let (p, s) = cache.get(42).expect("inserted key must hit");
        assert_eq!(p, &[0.5, 0.5, 0.5]);
        assert_eq!(s, &[Some(TaskId::new(7)), None]);
        assert_eq!(
            cache.stats(),
            EvalCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn generation_bump_clears_without_touching_storage() {
        let mut cache = EvalCache::new(64, 1, 1);
        cache.insert(9, &[1.0], &[None]);
        assert!(cache.get(9).is_some());
        cache.begin_generation();
        assert!(cache.get(9).is_none(), "old generation must read as empty");
        cache.insert(9, &[2.0], &[None]);
        assert_eq!(cache.get(9).unwrap().0, &[2.0]);
    }

    #[test]
    fn full_probe_window_evicts_and_counts() {
        let mut cache = EvalCache::new(8, 1, 1);
        // Capacity 8 with PROBE_LIMIT 8: nine distinct keys mapping into
        // the table must force at least one eviction.
        for key in 0..9u64 {
            cache.insert(key, &[key as f64], &[None]);
        }
        assert!(cache.stats().evictions >= 1);
        // The survivors still hit with the right payload.
        let mut live = 0;
        for key in 0..9u64 {
            if let Some((p, _)) = cache.get(key) {
                assert_eq!(p, &[key as f64]);
                live += 1;
            }
        }
        assert_eq!(live, 8);
    }

    #[test]
    fn reinsert_same_key_overwrites_in_place() {
        let mut cache = EvalCache::new(16, 2, 1);
        cache.insert(5, &[1.0, 2.0], &[Some(TaskId::new(0))]);
        cache.insert(5, &[3.0, 4.0], &[Some(TaskId::new(1))]);
        let (p, s) = cache.get(5).unwrap();
        assert_eq!(p, &[3.0, 4.0]);
        assert_eq!(s, &[Some(TaskId::new(1))]);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn value_cache_round_trips_and_clears() {
        let mut cache = ValueCache::new(32);
        assert!(cache.get(1).is_none());
        cache.insert(1, 123.5);
        assert_eq!(cache.get(1), Some(123.5));
        cache.begin_generation();
        assert!(cache.get(1).is_none());
        assert_eq!(
            cache.stats(),
            EvalCacheStats {
                hits: 1,
                misses: 2,
                evictions: 0
            }
        );
    }

    #[test]
    fn f32_variants_round_trip_at_half_footprint() {
        let mut cache: EvalCacheF32 = EvalCache::new(64, 3, 2);
        assert!(cache.get(42).is_none());
        cache.insert(42, &[0.25f32, 0.5, 0.25], &[Some(TaskId::new(7)), None]);
        let (p, s) = cache.get(42).expect("inserted key must hit");
        assert_eq!(p, &[0.25f32, 0.5, 0.25]);
        assert_eq!(s, &[Some(TaskId::new(7)), None]);
        cache.begin_generation();
        assert!(cache.get(42).is_none());

        let mut values: ValueCacheF32 = ValueCache::new(32);
        values.insert(9, 123.5f32);
        assert_eq!(values.get(9), Some(123.5f32));
        values.begin_generation();
        assert!(values.get(9).is_none());
    }

    #[test]
    fn stats_merge_componentwise() {
        let a = EvalCacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
        };
        let b = EvalCacheStats {
            hits: 10,
            misses: 20,
            evictions: 30,
        };
        assert_eq!(
            a.merged(b),
            EvalCacheStats {
                hits: 11,
                misses: 22,
                evictions: 33
            }
        );
    }
}
