//! State featurization: cluster image + ready-task slots + globals.

use serde::{Deserialize, Serialize};
use spear_cluster::{ClusterSpec, SimState};
use spear_dag::analysis::GraphFeatures;
use spear_dag::{Dag, TaskId};

/// Shape parameters of the featurizer / policy input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Resource dimensions (must match the DAG and cluster).
    pub dims: usize,
    /// Time horizon of the cluster occupancy image, in slots (paper: 20).
    pub horizon: usize,
    /// Maximum ready tasks visible to the network (paper: 15); additional
    /// ready tasks wait in a backlog the network only sees as a count.
    pub max_ready: usize,
    /// Include the graph-derived task features (b-level, child count,
    /// b-loads). §III-D argues these are what lifts the DRL agent above
    /// Tetris/SJF; setting this to `false` zeroes them out (the feature
    /// ablation) while keeping the input width unchanged.
    pub graph_features: bool,
    /// Per-machine occupancy rows appended to the input for heterogeneous
    /// clusters: one row of `dims` utilization fractions per machine, up
    /// to this many machines. `0` — the default, and what every existing
    /// constructor produces — appends nothing, keeping the single-box
    /// input layout (and therefore every exact-precision golden)
    /// bit-identical to the pre-hetero featurizer.
    #[serde(default)]
    pub machine_rows: usize,
}

impl FeatureConfig {
    /// The paper's configuration: horizon 20, up to 15 ready tasks.
    pub fn paper(dims: usize) -> Self {
        FeatureConfig {
            dims,
            horizon: 20,
            max_ready: 15,
            graph_features: true,
            machine_rows: 0,
        }
    }

    /// A reduced configuration for fast tests and examples.
    pub fn small(dims: usize) -> Self {
        FeatureConfig {
            dims,
            horizon: 8,
            max_ready: 5,
            graph_features: true,
            machine_rows: 0,
        }
    }

    /// Disables the graph-derived features (ablation).
    pub fn without_graph_features(mut self) -> Self {
        self.graph_features = false;
        self
    }

    /// Appends per-machine occupancy rows for clusters of up to
    /// `machines` machines (heterogeneous scheduling).
    pub fn with_machine_rows(mut self, machines: usize) -> Self {
        self.machine_rows = machines;
        self
    }

    /// Number of features per ready-task slot: presence flag, normalized
    /// runtime, demand per dimension, b-level, child count, b-load per
    /// dimension.
    pub fn per_task_features(&self) -> usize {
        1 + 1 + self.dims + 1 + 1 + self.dims
    }

    /// Total input width of the policy network.
    pub fn input_dim(&self) -> usize {
        // Cluster image + task slots + globals (backlog, running fraction,
        // completed fraction) + per-machine occupancy rows.
        self.dims * self.horizon
            + self.max_ready * self.per_task_features()
            + 3
            + self.machine_rows * self.dims
    }

    /// Output width: one logit per visible ready slot plus the process
    /// action (the paper's `n + 1` action space, truncated at `max_ready`).
    pub fn action_dim(&self) -> usize {
        self.max_ready + 1
    }

    /// The index of the *process* action in the output layer.
    pub fn process_action(&self) -> usize {
        self.max_ready
    }
}

/// The featurized view of one simulation state: the network input, the
/// tasks occupying each visible slot, and the action legality mask.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateView {
    /// Flat feature vector of length [`FeatureConfig::input_dim`].
    pub features: Vec<f64>,
    /// Task in each visible slot (`None` = empty slot).
    pub slot_tasks: Vec<Option<TaskId>>,
    /// Legality mask of length [`FeatureConfig::action_dim`]: slot actions
    /// are legal when the slot holds a task that fits the free capacity;
    /// the process action is legal when the cluster is non-empty.
    pub mask: Vec<bool>,
}

/// Renders [`SimState`]s into policy-network inputs.
///
/// Ready tasks are assigned to slots in descending b-level order (ties by
/// id), so the most critical work is always visible even when the frontier
/// exceeds `max_ready` — the overflow forms the paper's backlog.
#[derive(Debug, Clone)]
pub struct Featurizer {
    config: FeatureConfig,
}

impl Featurizer {
    /// Creates a featurizer.
    pub fn new(config: FeatureConfig) -> Self {
        Featurizer { config }
    }

    /// The shape parameters.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// Orders the ready set by descending b-level, breaking ties by
    /// descending child count then ascending id (the CP ordering), and
    /// truncates to the visible window.
    pub fn visible_ready(&self, state: &SimState, features: &GraphFeatures) -> Vec<TaskId> {
        let mut ready = Vec::new();
        self.visible_ready_into(state, features, &mut ready);
        ready
    }

    /// [`Featurizer::visible_ready`] into a caller-owned buffer (cleared
    /// first).
    pub fn visible_ready_into(
        &self,
        state: &SimState,
        features: &GraphFeatures,
        out: &mut Vec<TaskId>,
    ) {
        out.clear();
        out.extend_from_slice(state.ready());
        // Unstable sort: keys are unique (the id tiebreak), so the result
        // matches a stable sort while skipping its temp-buffer allocation.
        out.sort_unstable_by_key(|&t| {
            let f = features.task(t);
            (
                std::cmp::Reverse(f.b_level),
                std::cmp::Reverse(f.children),
                t,
            )
        });
        out.truncate(self.config.max_ready);
    }

    /// Featurizes one state.
    ///
    /// # Panics
    ///
    /// Panics if the DAG/cluster dimensionality disagrees with the config.
    pub fn featurize(
        &self,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
    ) -> StateView {
        let mut view = StateView::default();
        let mut ready = Vec::new();
        self.featurize_into(dag, spec, state, features, &mut ready, &mut view);
        view
    }

    /// [`Featurizer::featurize`] into caller-owned buffers: the view's
    /// vectors and a ready-ordering scratch are cleared and refilled, so a
    /// caller that reuses them featurizes without heap allocations. The
    /// pushed values are bit-identical to [`Featurizer::featurize`] — in
    /// particular the occupancy image accumulates running tasks per pixel
    /// in the same order, just task-outer instead of pixel-outer.
    ///
    /// # Panics
    ///
    /// Panics if the DAG/cluster dimensionality disagrees with the config.
    pub fn featurize_into(
        &self,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        ready_scratch: &mut Vec<TaskId>,
        view: &mut StateView,
    ) {
        assert_eq!(dag.dims(), self.config.dims, "dimension mismatch");
        assert_eq!(spec.dims(), self.config.dims, "dimension mismatch");
        let cfg = &self.config;
        let out = &mut view.features;
        out.clear();
        out.reserve(cfg.input_dim());

        // --- Cluster occupancy image over [clock, clock + horizon). ---
        // out[r * horizon + h] = fraction of capacity r occupied at
        // clock + h. A task running until `finish` covers the first
        // `finish - clock` pixels of its row.
        let clock = state.clock();
        out.resize(cfg.dims * cfg.horizon, 0.0);
        for run in state.running() {
            let span = run.finish.saturating_sub(clock).min(cfg.horizon as u64) as usize;
            if span == 0 {
                continue;
            }
            let demand = dag.task(run.task).demand();
            for r in 0..cfg.dims {
                let d = demand[r];
                for v in &mut out[r * cfg.horizon..r * cfg.horizon + span] {
                    *v += d;
                }
            }
        }
        for r in 0..cfg.dims {
            let cap = spec.capacity()[r];
            for v in &mut out[r * cfg.horizon..(r + 1) * cfg.horizon] {
                *v = (*v / cap).min(1.0);
            }
        }

        // --- Ready-task slots. ---
        self.visible_ready_into(state, features, ready_scratch);
        let max_rt = dag.max_runtime().max(1) as f64;
        let cp = features.critical_path().max(1) as f64;
        let max_children = features.max_children().max(1) as f64;
        view.slot_tasks.clear();
        view.slot_tasks.resize(cfg.max_ready, None);
        for (slot, &task) in ready_scratch.iter().enumerate() {
            view.slot_tasks[slot] = Some(task);
        }
        for slot_task in &view.slot_tasks {
            match *slot_task {
                Some(task) => {
                    let t = dag.task(task);
                    let f = features.task(task);
                    out.push(1.0);
                    out.push(t.runtime() as f64 / max_rt);
                    for r in 0..cfg.dims {
                        out.push(t.demand()[r] / spec.capacity()[r]);
                    }
                    if cfg.graph_features {
                        out.push(f.b_level as f64 / cp);
                        out.push(f.children as f64 / max_children);
                        for r in 0..cfg.dims {
                            let max_load = features.max_b_load()[r].max(f64::MIN_POSITIVE);
                            out.push(f.b_load[r] / max_load);
                        }
                    } else {
                        out.extend(std::iter::repeat_n(0.0, 2 + cfg.dims));
                    }
                }
                None => out.extend(std::iter::repeat_n(0.0, cfg.per_task_features())),
            }
        }

        // --- Globals. ---
        let n = dag.len() as f64;
        let backlog = state.ready().len().saturating_sub(cfg.max_ready) as f64;
        out.push(backlog / n);
        out.push(state.running().len() as f64 / n);
        out.push(state.completed() as f64 / n);

        // --- Per-machine occupancy rows (heterogeneous clusters). ---
        // One row of current utilization fractions per configured machine;
        // rows beyond the state's machine count (or on a single-box state)
        // are zero. A `machine_rows: 0` config appends nothing, so the
        // single-box layout is bit-identical to the pre-hetero featurizer.
        for m in 0..cfg.machine_rows {
            match state.machines() {
                Some(ms) if m < ms.len() => {
                    let used = state.machine_used(m as u32);
                    let cap = ms.capacity(m as u32);
                    for r in 0..cfg.dims {
                        out.push((used[r] / cap[r]).min(1.0));
                    }
                }
                _ => out.extend(std::iter::repeat_n(0.0, cfg.dims)),
            }
        }

        debug_assert_eq!(out.len(), cfg.input_dim());

        // --- Legality mask. ---
        view.mask.clear();
        view.mask.resize(cfg.action_dim(), false);
        for (slot, task) in view.slot_tasks.iter().enumerate() {
            if let Some(t) = *task {
                // Route through the simulator's own admission rule so the
                // mask can never disagree with `SimState::legal_actions`.
                view.mask[slot] = state.can_schedule(dag, t);
            }
        }
        view.mask[cfg.process_action()] = !state.running().is_empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_cluster::Action;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    fn small_dag() -> Dag {
        // 0 -> 2, 1 -> 2; runtimes 4, 2, 6.
        let mut b = DagBuilder::new(2);
        let a = b.add_task(Task::new(4, ResourceVec::from_slice(&[0.5, 0.2])));
        let c = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3, 0.3])));
        let d = b.add_task(Task::new(6, ResourceVec::from_slice(&[0.8, 0.8])));
        b.add_edge(a, d).unwrap();
        b.add_edge(c, d).unwrap();
        b.build().unwrap()
    }

    fn setup() -> (Dag, ClusterSpec, GraphFeatures, Featurizer) {
        let dag = small_dag();
        let spec = ClusterSpec::unit(2);
        let gf = GraphFeatures::compute(&dag);
        let f = Featurizer::new(FeatureConfig::small(2));
        (dag, spec, gf, f)
    }

    #[test]
    fn input_dim_formula() {
        let cfg = FeatureConfig::paper(2);
        // 2*20 + 15*(1+1+2+1+1+2) + 3 = 40 + 120 + 3 = 163.
        assert_eq!(cfg.input_dim(), 163);
        assert_eq!(cfg.action_dim(), 16);
        assert_eq!(cfg.process_action(), 15);
    }

    #[test]
    fn featurize_initial_state() {
        let (dag, spec, gf, f) = setup();
        let state = SimState::new(&dag, &spec).unwrap();
        let view = f.featurize(&dag, &spec, &state, &gf);
        assert_eq!(view.features.len(), f.config().input_dim());
        // Empty cluster: occupancy image all zeros.
        let image_len = 2 * f.config().horizon;
        assert!(view.features[..image_len].iter().all(|&v| v == 0.0));
        // Two ready tasks occupy the first two slots; the rest are empty.
        assert_eq!(view.slot_tasks.iter().filter(|t| t.is_some()).count(), 2);
        // Process illegal (nothing running); both task slots legal.
        assert!(!view.mask[f.config().process_action()]);
        assert!(view.mask[0] && view.mask[1]);
        // All features are finite and in a sane range.
        assert!(view.features.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn slots_are_ordered_by_b_level() {
        let (dag, spec, gf, f) = setup();
        let state = SimState::new(&dag, &spec).unwrap();
        let view = f.featurize(&dag, &spec, &state, &gf);
        // Task 0 has b-level 10, task 1 has 8: task 0 first.
        assert_eq!(view.slot_tasks[0], Some(TaskId::new(0)));
        assert_eq!(view.slot_tasks[1], Some(TaskId::new(1)));
    }

    #[test]
    fn occupancy_image_reflects_running_tasks() {
        let (dag, spec, gf, f) = setup();
        let mut state = SimState::new(&dag, &spec).unwrap();
        state.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        let view = f.featurize(&dag, &spec, &state, &gf);
        let h = f.config().horizon;
        // Dimension 0 occupied at 0.5 for the first 4 slots, then free.
        for i in 0..4 {
            assert!((view.features[i] - 0.5).abs() < 1e-9);
        }
        for i in 4..h {
            assert_eq!(view.features[i], 0.0);
        }
        // Dimension 1 occupied at 0.2 for the first 4 slots.
        for i in 0..4 {
            assert!((view.features[h + i] - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn mask_reflects_fit() {
        let (dag, spec, gf, f) = setup();
        let mut state = SimState::new(&dag, &spec).unwrap();
        // Schedule task 0 (0.5, 0.2): task 1 (0.3,0.3) still fits.
        state.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        let view = f.featurize(&dag, &spec, &state, &gf);
        assert_eq!(view.slot_tasks[0], Some(TaskId::new(1)));
        assert!(view.mask[0]);
        assert!(view.mask[f.config().process_action()]);
    }

    #[test]
    fn backlog_counts_overflow() {
        // 8 independent tasks with max_ready = 5.
        let mut b = DagBuilder::new(2);
        for _ in 0..8 {
            b.add_task(Task::new(2, ResourceVec::from_slice(&[0.1, 0.1])));
        }
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(2);
        let gf = GraphFeatures::compute(&dag);
        let f = Featurizer::new(FeatureConfig::small(2));
        let state = SimState::new(&dag, &spec).unwrap();
        let view = f.featurize(&dag, &spec, &state, &gf);
        assert_eq!(view.slot_tasks.iter().filter(|t| t.is_some()).count(), 5);
        // Backlog global = 3/8.
        let backlog_idx = f.config().input_dim() - 3;
        assert!((view.features[backlog_idx] - 3.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn featurize_into_reused_buffers_match_fresh_featurize() {
        let (dag, spec, gf, f) = setup();
        let mut state = SimState::new(&dag, &spec).unwrap();
        let mut ready = Vec::new();
        let mut view = StateView::default();
        // Drive a whole episode through the same buffers; every refill must
        // equal a from-scratch featurization bit for bit.
        while !state.is_terminal(&dag) {
            f.featurize_into(&dag, &spec, &state, &gf, &mut ready, &mut view);
            assert_eq!(view, f.featurize(&dag, &spec, &state, &gf));
            let legal = state.legal_actions(&dag);
            state.apply(&dag, legal[0]).unwrap();
        }
    }

    #[test]
    fn machine_rows_append_per_machine_utilization() {
        use spear_cluster::{MachineSet, TransferMode};
        let dag = small_dag();
        let gf = GraphFeatures::compute(&dag);
        let ms = MachineSet::uniform(
            2,
            ResourceVec::from_slice(&[1.0, 1.0]),
            4,
            TransferMode::Direct,
            7,
            8,
        )
        .unwrap();
        let spec = ClusterSpec::hetero(ms).unwrap();
        let f = Featurizer::new(FeatureConfig::small(2).with_machine_rows(2));
        let mut state = SimState::new(&dag, &spec).unwrap();
        state.apply(&dag, Action::Place(TaskId::new(0), 1)).unwrap();
        let view = f.featurize(&dag, &spec, &state, &gf);
        assert_eq!(view.features.len(), f.config().input_dim());
        let base = f.config().input_dim() - 2 * 2;
        // Machine 0 idle, machine 1 running task 0 (0.5, 0.2).
        assert_eq!(&view.features[base..base + 2], &[0.0, 0.0]);
        assert!((view.features[base + 2] - 0.5).abs() < 1e-9);
        assert!((view.features[base + 3] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn machine_rows_beyond_cluster_are_zero_and_single_box_is_unchanged() {
        let (dag, spec, gf, _) = setup();
        let state = SimState::new(&dag, &spec).unwrap();
        let plain = Featurizer::new(FeatureConfig::small(2));
        let wide = Featurizer::new(FeatureConfig::small(2).with_machine_rows(3));
        let a = plain.featurize(&dag, &spec, &state, &gf);
        let b = wide.featurize(&dag, &spec, &state, &gf);
        // A single-box state has no machines: the extra rows are all zero and
        // the prefix is bit-identical to the machine_rows = 0 layout.
        assert_eq!(b.features.len(), a.features.len() + 3 * 2);
        assert_eq!(&b.features[..a.features.len()], &a.features[..]);
        assert!(b.features[a.features.len()..].iter().all(|&v| v == 0.0));
        assert_eq!(a.slot_tasks, b.slot_tasks);
        assert_eq!(a.mask, b.mask);
    }

    #[test]
    fn at_least_one_action_is_always_legal() {
        let (dag, spec, gf, f) = setup();
        let mut state = SimState::new(&dag, &spec).unwrap();
        while !state.is_terminal(&dag) {
            let view = f.featurize(&dag, &spec, &state, &gf);
            assert!(view.mask.iter().any(|&m| m), "no legal network action");
            let legal = state.legal_actions(&dag);
            state.apply(&dag, legal[0]).unwrap();
        }
    }
}
