//! The policy network: featurizer + MLP + masked softmax sampling.

use rand::Rng;
use spear_cluster::{Action, ClusterSpec, SimState};
use spear_dag::analysis::GraphFeatures;
use spear_dag::{Dag, TaskId};
use spear_nn::{
    softmax_masked_f32_into, softmax_masked_into, ForwardScratch, InferScratch, InferenceEngine,
    Mlp, MlpConfig,
};

use crate::{FeatureConfig, Featurizer, StateView};

/// The DRL scheduling policy: maps a [`SimState`] to a distribution over
/// `{schedule visible slot i, process}` and converts the chosen network
/// action back into a simulator [`Action`].
///
/// The policy owns the scratch buffers of its inference path (featurizer
/// ready-ordering and MLP activations), so repeated
/// [`PolicyNetwork::action_distribution_into`] calls touch the heap only
/// until the buffers reach their steady-state sizes.
#[derive(Debug, Clone)]
pub struct PolicyNetwork {
    featurizer: Featurizer,
    net: Mlp,
    ready_scratch: Vec<TaskId>,
    forward_scratch: ForwardScratch,
}

impl PolicyNetwork {
    /// Creates a policy with the paper's MLP architecture (256/32/32 ReLU)
    /// over the given feature configuration.
    pub fn new<R: Rng + ?Sized>(config: FeatureConfig, rng: &mut R) -> Self {
        let net = Mlp::new(
            MlpConfig::paper(config.input_dim(), config.action_dim()),
            rng,
        );
        Self::from_parts_unchecked(config, net)
    }

    /// Creates a policy with a custom network architecture (hidden widths),
    /// used for fast tests and the feature-ablation experiments.
    pub fn with_hidden<R: Rng + ?Sized>(
        config: FeatureConfig,
        hidden: &[usize],
        rng: &mut R,
    ) -> Self {
        let net = Mlp::new(
            MlpConfig::new(config.input_dim(), hidden, config.action_dim()),
            rng,
        );
        Self::from_parts_unchecked(config, net)
    }

    /// Wraps an existing network (e.g. loaded from disk).
    ///
    /// # Panics
    ///
    /// Panics if the network shape disagrees with the feature config.
    pub fn from_parts(config: FeatureConfig, net: Mlp) -> Self {
        assert_eq!(net.config().input, config.input_dim(), "input mismatch");
        assert_eq!(net.config().output, config.action_dim(), "output mismatch");
        Self::from_parts_unchecked(config, net)
    }

    fn from_parts_unchecked(config: FeatureConfig, net: Mlp) -> Self {
        PolicyNetwork {
            featurizer: Featurizer::new(config),
            net,
            ready_scratch: Vec::new(),
            forward_scratch: ForwardScratch::default(),
        }
    }

    /// The feature configuration.
    pub fn feature_config(&self) -> &FeatureConfig {
        self.featurizer.config()
    }

    /// The featurizer.
    pub fn featurizer(&self) -> &Featurizer {
        &self.featurizer
    }

    /// The underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access to the underlying network (training).
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Featurizes `state` and returns the masked action distribution
    /// together with the view (slot mapping + mask).
    pub fn action_distribution(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
    ) -> (Vec<f64>, StateView) {
        let mut probs = Vec::new();
        let mut view = StateView::default();
        self.action_distribution_into(dag, spec, state, features, &mut probs, &mut view);
        (probs, view)
    }

    /// [`PolicyNetwork::action_distribution`] into caller-owned buffers —
    /// the allocation-free inference hot path used by the MCTS guidance
    /// policy. `probs` and `view` are cleared and refilled; the values are
    /// bit-identical to the allocating variant.
    pub fn action_distribution_into(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        probs: &mut Vec<f64>,
        view: &mut StateView,
    ) {
        self.featurizer
            .featurize_into(dag, spec, state, features, &mut self.ready_scratch, view);
        let logits = self
            .net
            .forward_one_into(&view.features, &mut self.forward_scratch);
        softmax_masked_into(logits, &view.mask, probs);
    }

    /// Snapshots the current weights into an `f32`
    /// [`InferenceEngine`] for the fast-precision path. The snapshot
    /// does not track later training updates — re-snapshot after an
    /// optimizer step.
    #[must_use]
    pub fn inference_engine(&self) -> InferenceEngine {
        InferenceEngine::from_mlp(&self.net)
    }

    /// The fast-precision variant of
    /// [`PolicyNetwork::action_distribution_into`]: featurizes in `f64`
    /// (featurization is exact in both modes), runs the `f32` engine,
    /// and computes the masked softmax entirely in `f32` — so a cached
    /// `f32` probability row replays bit-identically to the miss that
    /// produced it. Upcasting to `f64` at the sampling boundary is
    /// exact, which keeps cached and uncached fast-mode schedules
    /// identical.
    #[allow(clippy::too_many_arguments)]
    pub fn action_distribution_fast_into(
        &mut self,
        engine: &InferenceEngine,
        scratch: &mut InferScratch,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        probs: &mut Vec<f32>,
        view: &mut StateView,
    ) {
        self.featurizer
            .featurize_into(dag, spec, state, features, &mut self.ready_scratch, view);
        let logits = engine.forward_one(&view.features, scratch);
        softmax_masked_f32_into(logits, &view.mask, probs);
    }

    /// Fast-precision [`PolicyNetwork::choose_action_index`]: the same
    /// selection rules (argmax when `greedy`, one uniform draw
    /// otherwise) over the `f32` distribution, upcast exactly at the
    /// comparison boundary.
    #[allow(clippy::too_many_arguments)]
    pub fn choose_action_index_fast<R: Rng + ?Sized>(
        &mut self,
        engine: &InferenceEngine,
        scratch: &mut InferScratch,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        greedy: bool,
        rng: &mut R,
    ) -> (usize, StateView) {
        let mut probs = Vec::new();
        let mut view = StateView::default();
        self.action_distribution_fast_into(
            engine, scratch, dag, spec, state, features, &mut probs, &mut view,
        );
        let idx = if greedy {
            argmax_f32(&probs)
        } else {
            sample_index_f32(&probs, rng)
        };
        (idx, view)
    }

    /// Picks a network action: samples from the masked distribution, or
    /// takes the argmax when `greedy`.
    pub fn choose_action_index<R: Rng + ?Sized>(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        state: &SimState,
        features: &GraphFeatures,
        greedy: bool,
        rng: &mut R,
    ) -> (usize, StateView) {
        let (probs, view) = self.action_distribution(dag, spec, state, features);
        let idx = if greedy {
            argmax(&probs)
        } else {
            sample_index(&probs, rng)
        };
        (idx, view)
    }

    /// Converts a network action index into a simulator [`Action`] using
    /// the slot mapping of `view`.
    ///
    /// # Panics
    ///
    /// Panics if the index refers to an empty slot (the mask prevents
    /// this for indices produced by this policy).
    pub fn action_from_index(&self, view: &StateView, index: usize) -> Action {
        if index == self.featurizer.config().process_action() {
            Action::Process
        } else {
            Action::Schedule(
                view.slot_tasks[index].expect("masked sampling never picks an empty slot"),
            )
        }
    }
}

/// Index of the largest probability (first on ties).
fn argmax(probs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &p) in probs.iter().enumerate() {
        if p > probs[best] {
            best = i;
        }
    }
    best
}

/// [`argmax`] over an `f32` row (first on ties) — comparisons on the
/// `f32` values directly, which orders identically to exact upcasts.
fn argmax_f32(probs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &p) in probs.iter().enumerate() {
        if p > probs[best] {
            best = i;
        }
    }
    best
}

/// [`sample_index`] over an `f32` row: the same single uniform `f64`
/// draw, with each probability upcast exactly into the accumulation.
fn sample_index_f32<R: Rng + ?Sized>(probs: &[f32], rng: &mut R) -> usize {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += f64::from(p);
        if x < acc {
            return i;
        }
    }
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("distribution has positive mass")
}

/// Samples an index from a probability vector.
fn sample_index<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if x < acc {
            return i;
        }
    }
    // Floating-point slack: return the last positive-probability index.
    probs
        .iter()
        .rposition(|&p| p > 0.0)
        .expect("distribution has positive mass")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;

    fn setup() -> (Dag, ClusterSpec, GraphFeatures, PolicyNetwork) {
        let mut rng = StdRng::seed_from_u64(1);
        let dag = LayeredDagSpec {
            num_tasks: 10,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut rng);
        let spec = ClusterSpec::unit(2);
        let gf = GraphFeatures::compute(&dag);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16, 8], &mut rng);
        (dag, spec, gf, policy)
    }

    #[test]
    fn distribution_is_masked_and_normalized() {
        let (dag, spec, gf, mut policy) = setup();
        let state = SimState::new(&dag, &spec).unwrap();
        let (probs, view) = policy.action_distribution(&dag, &spec, &state, &gf);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (p, &legal) in probs.iter().zip(&view.mask) {
            if !legal {
                assert_eq!(*p, 0.0);
            }
        }
    }

    #[test]
    fn distribution_into_reused_buffers_matches_allocating_variant() {
        let (dag, spec, gf, mut policy) = setup();
        let mut state = SimState::new(&dag, &spec).unwrap();
        let mut probs = Vec::new();
        let mut view = StateView::default();
        while !state.is_terminal(&dag) {
            policy.action_distribution_into(&dag, &spec, &state, &gf, &mut probs, &mut view);
            let (fresh_probs, fresh_view) = policy.action_distribution(&dag, &spec, &state, &gf);
            assert_eq!(probs, fresh_probs);
            assert_eq!(view, fresh_view);
            let idx = view.mask.iter().position(|&m| m).expect("a legal action");
            let action = policy.action_from_index(&view, idx);
            state.apply(&dag, action).unwrap();
        }
    }

    #[test]
    fn fast_distribution_tracks_exact_and_respects_mask() {
        let (dag, spec, gf, mut policy) = setup();
        let engine = policy.inference_engine();
        let mut scratch = InferScratch::new();
        let mut state = SimState::new(&dag, &spec).unwrap();
        let mut fast = Vec::new();
        let mut fast_view = StateView::default();
        while !state.is_terminal(&dag) {
            policy.action_distribution_fast_into(
                &engine,
                &mut scratch,
                &dag,
                &spec,
                &state,
                &gf,
                &mut fast,
                &mut fast_view,
            );
            let (exact, view) = policy.action_distribution(&dag, &spec, &state, &gf);
            assert_eq!(fast_view, view);
            assert!((fast.iter().map(|&p| f64::from(p)).sum::<f64>() - 1.0).abs() < 1e-5);
            for ((f, e), &legal) in fast.iter().zip(&exact).zip(&view.mask) {
                if legal {
                    assert!((f64::from(*f) - e).abs() < 1e-3, "{f} vs {e}");
                } else {
                    assert_eq!(*f, 0.0);
                }
            }
            let idx = view.mask.iter().position(|&m| m).expect("a legal action");
            let action = policy.action_from_index(&view, idx);
            state.apply(&dag, action).unwrap();
        }
    }

    #[test]
    fn chosen_actions_are_always_legal() {
        let (dag, spec, gf, mut policy) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = SimState::new(&dag, &spec).unwrap();
        while !state.is_terminal(&dag) {
            let (idx, view) = policy.choose_action_index(&dag, &spec, &state, &gf, false, &mut rng);
            assert!(view.mask[idx], "sampled an illegal action");
            let action = policy.action_from_index(&view, idx);
            state.apply(&dag, action).unwrap();
        }
        assert!(state.makespan().is_some());
    }

    #[test]
    fn greedy_mode_is_deterministic() {
        let (dag, spec, gf, mut policy) = setup();
        let run = |policy: &mut PolicyNetwork, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = SimState::new(&dag, &spec).unwrap();
            while !state.is_terminal(&dag) {
                let (idx, view) =
                    policy.choose_action_index(&dag, &spec, &state, &gf, true, &mut rng);
                let action = policy.action_from_index(&view, idx);
                state.apply(&dag, action).unwrap();
            }
            state.makespan().unwrap()
        };
        // Greedy ignores the RNG: different seeds, same makespan.
        assert_eq!(run(&mut policy, 1), run(&mut policy, 999));
    }

    #[test]
    fn paper_architecture_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy = PolicyNetwork::new(FeatureConfig::paper(2), &mut rng);
        assert_eq!(policy.net().config().input, 163);
        assert_eq!(policy.net().config().output, 16);
        assert_eq!(policy.net().config().hidden, vec![256, 32, 32]);
    }

    #[test]
    fn from_parts_roundtrip() {
        let (_, _, _, policy) = setup();
        let cfg = policy.feature_config().clone();
        let net = policy.net().clone();
        let rebuilt = PolicyNetwork::from_parts(cfg, net);
        assert_eq!(
            rebuilt.net().parameter_count(),
            policy.net().parameter_count()
        );
    }

    #[test]
    fn sample_index_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let probs = [0.0, 0.25, 0.75];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_index(&probs, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac = counts[2] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[0.4, 0.4, 0.2]), 0);
        assert_eq!(argmax(&[0.1, 0.5, 0.4]), 1);
    }
}
