//! Supervised pre-training: imitate the critical-path expert.
//!
//! §IV of the paper: "Prior to reinforcement learning training, we
//! initialize our network by using supervised training … to imitate a
//! greedy heuristic approach such as the critical path algorithm".

use rand::seq::SliceRandom;
use rand::Rng;
use spear_cluster::{ClusterSpec, SpearError};
use spear_dag::Dag;
use spear_nn::{loss, Matrix, Optimizer};
use spear_obs::Obs;

use crate::{collect_expert_dataset, ExpertDataset, PolicyNetwork};

/// Hyper-parameters of the supervised phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            epochs: 20,
            batch_size: 64,
        }
    }
}

/// Collects the expert dataset over all `dags` (each scheduled once).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn build_dataset(
    policy: &PolicyNetwork,
    dags: &[Dag],
    spec: &ClusterSpec,
) -> Result<ExpertDataset, SpearError> {
    let mut data = ExpertDataset::default();
    for dag in dags {
        let (d, _) = collect_expert_dataset(policy.featurizer(), dag, spec)?;
        data.extend(d);
    }
    Ok(data)
}

/// Trains the policy to match the expert with mini-batch cross-entropy.
/// Returns the mean loss of each epoch (monotone-ish decreasing when the
/// learning rate is sane).
pub fn train<O: Optimizer, R: Rng + ?Sized>(
    policy: &mut PolicyNetwork,
    data: &ExpertDataset,
    optimizer: &mut O,
    config: &PretrainConfig,
    rng: &mut R,
) -> Vec<f64> {
    train_observed(policy, data, optimizer, config, rng, &Obs::noop())
}

/// [`train`] with a metric sink: records `rl.pretrain_epochs` and the
/// per-epoch mean cross-entropy as the `rl.pretrain_loss` gauge (so a
/// snapshot carries the final loss plus its min/max over the run). The
/// returned history is identical to [`train`]'s.
pub fn train_observed<O: Optimizer, R: Rng + ?Sized>(
    policy: &mut PolicyNetwork,
    data: &ExpertDataset,
    optimizer: &mut O,
    config: &PretrainConfig,
    rng: &mut R,
    obs: &Obs,
) -> Vec<f64> {
    assert!(!data.is_empty(), "empty pre-training dataset");
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let rows: Vec<&[f64]> = chunk.iter().map(|&i| data.features[i].as_slice()).collect();
            let x = Matrix::from_rows(&rows);
            let targets: Vec<usize> = chunk.iter().map(|&i| data.actions[i]).collect();
            let masks: Vec<Vec<bool>> = chunk.iter().map(|&i| data.masks[i].clone()).collect();
            let logits = policy.net_mut().forward(&x);
            let (l, d) = loss::softmax_cross_entropy(&logits, &targets, Some(&masks));
            policy.net_mut().zero_grad();
            policy.net_mut().backward(&d);
            optimizer.step(policy.net_mut());
            policy.net_mut().zero_grad();
            epoch_loss += l;
            batches += 1;
        }
        let mean_loss = epoch_loss / batches as f64;
        if spear_obs::compiled() && obs.is_enabled() {
            obs.counter("rl.pretrain_epochs").incr();
            obs.gauge("rl.pretrain_loss").set(mean_loss);
        }
        history.push(mean_loss);
    }
    history
}

/// Rows per [`Mlp::forward_batch`](spear_nn::Mlp::forward_batch) call in
/// [`accuracy`]: large enough to amortize the per-pass weight streaming,
/// small enough to bound the activation matrices.
const ACCURACY_CHUNK: usize = 256;

/// Fraction of dataset rows on which the policy's argmax agrees with the
/// expert — the imitation accuracy. Evaluates the network in batched
/// matrix-matrix passes (no gradient caching), so it is cheap to call
/// between epochs.
pub fn accuracy(policy: &PolicyNetwork, data: &ExpertDataset) -> f64 {
    accuracy_with_precision(policy, data, spear_nn::Precision::Exact)
}

/// [`accuracy`] with an explicit precision: `Exact` runs the batched
/// `f64` evaluation; `Fast` snapshots the `f32` engine once and scores
/// every row through it — the evaluation-side counterpart of the search
/// loop's fast path (training gradients always stay `f64`).
pub fn accuracy_with_precision(
    policy: &PolicyNetwork,
    data: &ExpertDataset,
    precision: spear_nn::Precision,
) -> f64 {
    if precision == spear_nn::Precision::Exact {
        return accuracy_exact(policy, data);
    }
    if data.is_empty() {
        return 0.0;
    }
    let engine = spear_nn::InferenceEngine::from_mlp(policy.net());
    let mut scratch = spear_nn::InferScratch::new();
    let mut probs = Vec::new();
    let mut correct = 0usize;
    for i in 0..data.len() {
        let logits = engine.forward_one(&data.features[i], &mut scratch);
        spear_nn::softmax_masked_f32_into(logits, &data.masks[i], &mut probs);
        let argmax = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(i, _)| i)
            .expect("non-empty action space");
        if argmax == data.actions[i] {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

fn accuracy_exact(policy: &PolicyNetwork, data: &ExpertDataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut probs = Vec::new();
    let mut correct = 0usize;
    for chunk_start in (0..data.len()).step_by(ACCURACY_CHUNK) {
        let chunk = chunk_start..(chunk_start + ACCURACY_CHUNK).min(data.len());
        let rows: Vec<&[f64]> = chunk.clone().map(|i| data.features[i].as_slice()).collect();
        let logits = policy.net().forward_batch(&Matrix::from_rows(&rows));
        for (r, i) in chunk.enumerate() {
            spear_nn::softmax_masked_into(logits.row(r), &data.masks[i], &mut probs);
            let argmax = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
                .map(|(i, _)| i)
                .expect("non-empty action space");
            if argmax == data.actions[i] {
                correct += 1;
            }
        }
    }
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;
    use spear_nn::RmsProp;

    #[test]
    fn pretraining_reduces_loss_and_improves_accuracy() {
        let mut rng = StdRng::seed_from_u64(21);
        let dags: Vec<Dag> = (0..4)
            .map(|_| {
                LayeredDagSpec {
                    num_tasks: 12,
                    ..LayeredDagSpec::paper_training()
                }
                .generate(&mut rng)
            })
            .collect();
        let spec = ClusterSpec::unit(2);
        let mut policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[32], &mut rng);
        let data = build_dataset(&policy, &dags, &spec).unwrap();
        assert!(data.len() > 40);

        let acc_before = accuracy(&policy, &data);
        let mut opt = RmsProp::new(1e-3, 0.9, 1e-9);
        let history = train(
            &mut policy,
            &data,
            &mut opt,
            &PretrainConfig {
                epochs: 30,
                batch_size: 32,
            },
            &mut rng,
        );
        let acc_after = accuracy(&policy, &data);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "loss did not decrease: {history:?}"
        );
        assert!(
            acc_after > acc_before,
            "accuracy did not improve: {acc_before} -> {acc_after}"
        );
        assert!(acc_after > 0.5, "accuracy too low: {acc_after}");
    }

    #[test]
    fn fast_accuracy_tracks_exact() {
        let mut rng = StdRng::seed_from_u64(33);
        let dags: Vec<Dag> = (0..3)
            .map(|_| {
                LayeredDagSpec {
                    num_tasks: 10,
                    ..LayeredDagSpec::paper_training()
                }
                .generate(&mut rng)
            })
            .collect();
        let spec = ClusterSpec::unit(2);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let data = build_dataset(&policy, &dags, &spec).unwrap();
        let exact = accuracy(&policy, &data);
        let fast = accuracy_with_precision(&policy, &data, spear_nn::Precision::Fast);
        // f32 rounding can flip rows whose top-two probabilities are
        // within tolerance of each other; the rates must stay close.
        assert!((exact - fast).abs() <= 0.05, "exact {exact} vs fast {fast}");
    }

    #[test]
    #[should_panic(expected = "empty pre-training dataset")]
    fn empty_dataset_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut rng);
        let mut opt = RmsProp::default_paper();
        let _ = train(
            &mut policy,
            &ExpertDataset::default(),
            &mut opt,
            &PretrainConfig::default(),
            &mut rng,
        );
    }
}
