//! Graphviz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::Dag;

/// Renders `dag` in Graphviz DOT syntax. Node labels show the task name (or
/// id), runtime and demand vector.
///
/// ```
/// use spear_dag::{DagBuilder, Task, ResourceVec, dot};
/// # fn main() -> Result<(), spear_dag::DagError> {
/// let mut b = DagBuilder::new(1);
/// let a = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])).with_name("map"));
/// let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.7])));
/// b.add_edge(a, c)?;
/// let dag = b.build()?;
/// let rendered = dot::to_dot(&dag);
/// assert!(rendered.contains("digraph"));
/// assert!(rendered.contains("map"));
/// assert!(rendered.contains("t0 -> t1"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(dag: &Dag) -> String {
    let mut out = String::new();
    out.push_str("digraph dag {\n  rankdir=TB;\n  node [shape=box];\n");
    for id in dag.task_ids() {
        let task = dag.task(id);
        let label = match task.name() {
            Some(name) => format!("{name}\\nrt={} d={}", task.runtime(), task.demand()),
            None => format!("{id}\\nrt={} d={}", task.runtime(), task.demand()),
        };
        let _ = writeln!(out, "  {id} [label=\"{label}\"];");
    }
    for e in dag.edges() {
        let _ = writeln!(out, "  {} -> {};", e.from, e.to);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DagBuilder, ResourceVec, Task};

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = DagBuilder::new(2);
        let t0 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1, 0.2])));
        let t1 = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.3, 0.4])));
        let t2 = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5, 0.6])));
        b.add_edge(t0, t1).unwrap();
        b.add_edge(t1, t2).unwrap();
        let dag = b.build().unwrap();
        let s = to_dot(&dag);
        for node in ["t0", "t1", "t2"] {
            assert!(s.contains(node));
        }
        assert!(s.contains("t0 -> t1;"));
        assert!(s.contains("t1 -> t2;"));
        assert!(s.starts_with("digraph"));
        assert!(s.trim_end().ends_with('}'));
    }
}
