//! Tasks and task identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ResourceVec;

/// Identifier of a task within a [`Dag`](crate::Dag).
///
/// Task ids are dense indices assigned by
/// [`DagBuilder::add_task`](crate::DagBuilder::add_task) in insertion
/// order, which lets every other
/// crate index per-task arrays with them.
///
/// ```
/// use spear_dag::TaskId;
/// let id = TaskId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "t3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates a task id from a raw index.
    pub const fn new(index: usize) -> Self {
        TaskId(index)
    }

    /// The dense index of this task.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(index: usize) -> Self {
        TaskId(index)
    }
}

/// A single task of a job: an integer runtime (in time slots) plus a
/// multi-dimensional resource demand held for the whole runtime.
///
/// ```
/// use spear_dag::{Task, ResourceVec};
/// let t = Task::new(5, ResourceVec::from_slice(&[0.25, 0.5])).with_name("reduce-0");
/// assert_eq!(t.runtime(), 5);
/// assert_eq!(t.name(), Some("reduce-0"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    runtime: u64,
    demand: ResourceVec,
    name: Option<String>,
}

impl Task {
    /// Creates a task with the given runtime (time slots) and resource
    /// demand.
    pub fn new(runtime: u64, demand: ResourceVec) -> Self {
        Task {
            runtime,
            demand,
            name: None,
        }
    }

    /// Attaches a human-readable name (e.g. `"map-3"`), useful in DOT dumps
    /// and trace round-trips.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Runtime in time slots. Always ≥ 1 once the task is part of a built
    /// [`Dag`](crate::Dag).
    pub fn runtime(&self) -> u64 {
        self.runtime
    }

    /// Resource demand held while the task runs.
    pub fn demand(&self) -> &ResourceVec {
        &self.demand
    }

    /// Optional task name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The *load* of the task in dimension `r`: `runtime × demand[r]`, i.e.
    /// the area the task occupies in the resource-time space. This is the
    /// quantity the paper's b-load feature accumulates along paths.
    pub fn load(&self, r: usize) -> f64 {
        self.runtime as f64 * self.demand[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_accessors() {
        let t = Task::new(4, ResourceVec::from_slice(&[0.5]));
        assert_eq!(t.runtime(), 4);
        assert_eq!(t.demand().as_slice(), &[0.5]);
        assert_eq!(t.name(), None);
    }

    #[test]
    fn load_is_runtime_times_demand() {
        let t = Task::new(4, ResourceVec::from_slice(&[0.5, 0.25]));
        assert_eq!(t.load(0), 2.0);
        assert_eq!(t.load(1), 1.0);
    }

    #[test]
    fn with_name_sets_name() {
        let t = Task::new(1, ResourceVec::zeros(1)).with_name("map-0");
        assert_eq!(t.name(), Some("map-0"));
    }

    #[test]
    fn task_id_ordering_follows_index() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert_eq!(TaskId::from(7).index(), 7);
    }
}
