//! Topological utilities: level structure and incremental ready-set
//! tracking.

use serde::{Deserialize, Serialize};

use crate::{Dag, TaskId};

/// Assigns each task its *level*: the length (in edges) of the longest path
/// from any source to the task. Sources are level 0.
///
/// ```
/// use spear_dag::{DagBuilder, Task, ResourceVec, topo};
/// # fn main() -> Result<(), spear_dag::DagError> {
/// let mut b = DagBuilder::new(1);
/// let a = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
/// let c = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
/// b.add_edge(a, c)?;
/// let dag = b.build()?;
/// assert_eq!(topo::levels(&dag), vec![0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn levels(dag: &Dag) -> Vec<usize> {
    let mut level = vec![0usize; dag.len()];
    for &v in dag.topological_order() {
        for &c in dag.children(v) {
            level[c.index()] = level[c.index()].max(level[v.index()] + 1);
        }
    }
    level
}

/// The *width* of the DAG: the maximum number of tasks sharing a level.
/// This is the quantity the paper's generator bounds to 2–5.
pub fn width(dag: &Dag) -> usize {
    let lv = levels(dag);
    let max_level = lv.iter().copied().max().unwrap_or(0);
    let mut counts = vec![0usize; max_level + 1];
    for l in lv {
        counts[l] += 1;
    }
    counts.into_iter().max().unwrap_or(0)
}

/// Number of levels (longest path in edges, plus one).
pub fn depth(dag: &Dag) -> usize {
    levels(dag).into_iter().max().unwrap_or(0) + 1
}

/// Incrementally tracks which tasks are *ready* (all parents completed).
///
/// The tracker starts with the DAG's sources ready; calling
/// [`ReadyTracker::complete`] marks a task finished and returns the tasks
/// that became ready as a result. The simulator, every baseline scheduler
/// and the MCTS state all use this to maintain the frontier.
///
/// ```
/// use spear_dag::{DagBuilder, Task, ResourceVec, topo::ReadyTracker};
/// # fn main() -> Result<(), spear_dag::DagError> {
/// let mut b = DagBuilder::new(1);
/// let a = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
/// let c = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
/// b.add_edge(a, c)?;
/// let dag = b.build()?;
/// let mut tracker = ReadyTracker::new(&dag);
/// assert_eq!(tracker.ready(), &[a]);
/// let newly = tracker.complete(&dag, a);
/// assert_eq!(newly, vec![c]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadyTracker {
    pending_parents: Vec<u32>,
    ready: Vec<TaskId>,
    completed: usize,
}

// Manual `Clone` so `clone_from` reuses both vectors' allocations; the MCTS
// rollout scratch clones a tracker per rollout and must not allocate in
// steady state.
impl Clone for ReadyTracker {
    fn clone(&self) -> Self {
        ReadyTracker {
            pending_parents: self.pending_parents.clone(),
            ready: self.ready.clone(),
            completed: self.completed,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.pending_parents.clone_from(&source.pending_parents);
        self.ready.clone_from(&source.ready);
        self.completed = source.completed;
    }
}

impl ReadyTracker {
    /// Creates a tracker with the sources of `dag` ready.
    pub fn new(dag: &Dag) -> Self {
        let pending_parents: Vec<u32> = dag
            .task_ids()
            .map(|t| dag.parents(t).len() as u32)
            .collect();
        let ready = dag.sources();
        ReadyTracker {
            pending_parents,
            ready,
            completed: 0,
        }
    }

    /// Tasks currently ready, sorted by id.
    #[inline]
    pub fn ready(&self) -> &[TaskId] {
        &self.ready
    }

    /// Number of tasks completed so far.
    #[inline]
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Whether all `n` tasks of the DAG have completed.
    #[inline]
    pub fn all_done(&self, dag: &Dag) -> bool {
        self.completed == dag.len()
    }

    /// Removes `task` from the ready set (because it was scheduled).
    ///
    /// # Panics
    ///
    /// Panics if `task` is not currently ready.
    #[inline]
    pub fn take(&mut self, task: TaskId) {
        // The set is sorted by id, so membership is a binary search.
        let pos = self
            .ready
            .binary_search(&task)
            .expect("task is not in the ready set");
        self.ready.remove(pos);
    }

    /// Inserts `task` into the ready set, keeping it sorted. The inverse of
    /// [`ReadyTracker::take`] for tasks *withheld* from the frontier rather
    /// than scheduled — the multi-job simulator takes the sources of a job
    /// out of the frontier until its arrival time, then reinserts them here.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `task` is already listed ready or has
    /// pending parents — reinsertion is only valid for withheld tasks.
    #[inline]
    pub fn insert_ready(&mut self, task: TaskId) {
        debug_assert_eq!(
            self.pending_parents[task.index()],
            0,
            "inserting a task with pending parents into the ready set"
        );
        let pos = self.ready.partition_point(|&r| r < task);
        debug_assert!(
            self.ready.get(pos) != Some(&task),
            "task is already in the ready set"
        );
        self.ready.insert(pos, task);
    }

    /// Marks `task` completed and returns the children that became ready
    /// (also inserted into the ready set, keeping it sorted).
    pub fn complete(&mut self, dag: &Dag, task: TaskId) -> Vec<TaskId> {
        self.completed += 1;
        let mut newly = Vec::new();
        for &c in dag.children(task) {
            let p = &mut self.pending_parents[c.index()];
            debug_assert!(*p > 0, "completing a parent twice");
            *p -= 1;
            if *p == 0 {
                newly.push(c);
            }
        }
        for &t in &newly {
            let pos = self.ready.partition_point(|&r| r < t);
            self.ready.insert(pos, t);
        }
        newly
    }

    /// Marks `task` completed, inserting newly ready children directly into
    /// the (sorted) ready set without allocating. The hot-path variant of
    /// [`ReadyTracker::complete`] for callers that discard the newly-ready
    /// list — e.g. the MCTS rollout loop.
    #[inline]
    pub fn complete_in_place(&mut self, dag: &Dag, task: TaskId) {
        self.completed += 1;
        for &c in dag.children(task) {
            let p = &mut self.pending_parents[c.index()];
            debug_assert!(*p > 0, "completing a parent twice");
            *p -= 1;
            if *p == 0 {
                let pos = self.ready.partition_point(|&r| r < c);
                self.ready.insert(pos, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DagBuilder, ResourceVec, Task};

    fn chain(n: usize) -> Dag {
        let mut b = DagBuilder::new(1);
        let ids: Vec<TaskId> = (0..n)
            .map(|_| b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1]))))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    fn fork_join() -> Dag {
        // 0 -> {1,2,3} -> 4
        let mut b = DagBuilder::new(1);
        let ids: Vec<TaskId> = (0..5)
            .map(|_| b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1]))))
            .collect();
        for i in 1..=3 {
            b.add_edge(ids[0], ids[i]).unwrap();
            b.add_edge(ids[i], ids[4]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn levels_of_chain() {
        assert_eq!(levels(&chain(4)), vec![0, 1, 2, 3]);
        assert_eq!(depth(&chain(4)), 4);
        assert_eq!(width(&chain(4)), 1);
    }

    #[test]
    fn levels_of_fork_join() {
        let d = fork_join();
        assert_eq!(levels(&d), vec![0, 1, 1, 1, 2]);
        assert_eq!(width(&d), 3);
        assert_eq!(depth(&d), 3);
    }

    #[test]
    fn tracker_walks_chain() {
        let d = chain(3);
        let mut t = ReadyTracker::new(&d);
        assert_eq!(t.ready(), &[TaskId::new(0)]);
        t.take(TaskId::new(0));
        assert_eq!(t.complete(&d, TaskId::new(0)), vec![TaskId::new(1)]);
        t.take(TaskId::new(1));
        assert_eq!(t.complete(&d, TaskId::new(1)), vec![TaskId::new(2)]);
        t.take(TaskId::new(2));
        assert_eq!(t.complete(&d, TaskId::new(2)), vec![]);
        assert!(t.all_done(&d));
    }

    #[test]
    fn tracker_join_waits_for_all_parents() {
        let d = fork_join();
        let mut t = ReadyTracker::new(&d);
        t.take(TaskId::new(0));
        let newly = t.complete(&d, TaskId::new(0));
        assert_eq!(newly.len(), 3);
        // Finish two of the three middle tasks: join is not ready yet.
        for id in [1, 2] {
            t.take(TaskId::new(id));
            assert!(t.complete(&d, TaskId::new(id)).is_empty());
        }
        t.take(TaskId::new(3));
        assert_eq!(t.complete(&d, TaskId::new(3)), vec![TaskId::new(4)]);
    }

    #[test]
    fn ready_set_stays_sorted() {
        let d = fork_join();
        let mut t = ReadyTracker::new(&d);
        t.take(TaskId::new(0));
        t.complete(&d, TaskId::new(0));
        let ready: Vec<usize> = t.ready().iter().map(|t| t.index()).collect();
        let mut sorted = ready.clone();
        sorted.sort_unstable();
        assert_eq!(ready, sorted);
    }

    #[test]
    fn withheld_source_round_trips_through_insert_ready() {
        // Two independent sources: withhold one, reinsert it sorted.
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        let c = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        let d = b.build().unwrap();
        let mut t = ReadyTracker::new(&d);
        t.take(c);
        assert_eq!(t.ready(), &[a]);
        t.insert_ready(c);
        assert_eq!(t.ready(), &[a, c]);
    }

    #[test]
    #[should_panic(expected = "not in the ready set")]
    fn take_panics_for_unready_task() {
        let d = chain(2);
        let mut t = ReadyTracker::new(&d);
        t.take(TaskId::new(1));
    }
}
