//! The DAG type and its builder.

use serde::{Deserialize, Serialize};

use crate::{DagError, ResourceVec, Task, TaskId};

/// A directed edge `from -> to`: `to` may only start after `from` finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Predecessor task.
    pub from: TaskId,
    /// Successor task.
    pub to: TaskId,
}

/// Incrementally builds a [`Dag`].
///
/// The builder records tasks and precedence edges, and [`DagBuilder::build`]
/// validates the whole graph (acyclicity, demand sanity, consistent resource
/// dimensionality) before freezing it into an immutable [`Dag`].
///
/// # Example
///
/// ```
/// use spear_dag::{DagBuilder, Task, ResourceVec};
///
/// # fn main() -> Result<(), spear_dag::DagError> {
/// let mut b = DagBuilder::new(2);
/// let map0 = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.2, 0.1])));
/// let map1 = b.add_task(Task::new(4, ResourceVec::from_slice(&[0.2, 0.1])));
/// let red = b.add_task(Task::new(6, ResourceVec::from_slice(&[0.5, 0.6])));
/// b.add_edge(map0, red)?;
/// b.add_edge(map1, red)?;
/// let dag = b.build()?;
/// assert_eq!(dag.sources(), vec![map0, map1]);
/// assert_eq!(dag.sinks(), vec![red]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DagBuilder {
    dims: usize,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
}

impl DagBuilder {
    /// Creates a builder for a graph whose tasks have `dims` resource
    /// dimensions.
    pub fn new(dims: usize) -> Self {
        DagBuilder {
            dims,
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a task, returning its id (dense, in insertion order).
    pub fn add_task(&mut self, task: Task) -> TaskId {
        let id = TaskId::new(self.tasks.len());
        self.tasks.push(task);
        id
    }

    /// Adds a precedence edge `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::UnknownTask`] for dangling endpoints,
    /// [`DagError::SelfLoop`] for `v -> v`, and [`DagError::DuplicateEdge`]
    /// if the edge already exists.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), DagError> {
        if from.index() >= self.tasks.len() {
            return Err(DagError::UnknownTask(from));
        }
        if to.index() >= self.tasks.len() {
            return Err(DagError::UnknownTask(to));
        }
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        let edge = Edge { from, to };
        if self.edges.contains(&edge) {
            return Err(DagError::DuplicateEdge(from, to));
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks have been added yet.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::Empty`] for a task-less graph,
    /// [`DagError::ZeroRuntime`] / [`DagError::InvalidDemand`] /
    /// [`DagError::DimensionMismatch`] for per-task problems, and
    /// [`DagError::Cycle`] if the edges contain a directed cycle.
    pub fn build(self) -> Result<Dag, DagError> {
        if self.tasks.is_empty() {
            return Err(DagError::Empty);
        }
        for (i, task) in self.tasks.iter().enumerate() {
            let id = TaskId::new(i);
            if task.runtime() == 0 {
                return Err(DagError::ZeroRuntime(id));
            }
            if !task.demand().is_valid_demand() {
                return Err(DagError::InvalidDemand(id));
            }
            if task.demand().dims() != self.dims {
                return Err(DagError::DimensionMismatch {
                    task: id,
                    expected: self.dims,
                    actual: task.demand().dims(),
                });
            }
        }

        let n = self.tasks.len();
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        for e in &self.edges {
            children[e.from.index()].push(e.to);
            parents[e.to.index()].push(e.from);
        }
        for list in children.iter_mut().chain(parents.iter_mut()) {
            list.sort_unstable();
        }

        let topo = topological_order(&children, &parents).ok_or(DagError::Cycle)?;

        Ok(Dag {
            dims: self.dims,
            tasks: self.tasks,
            edges: self.edges,
            children,
            parents,
            topo,
        })
    }
}

/// Kahn's algorithm; `None` if a cycle exists.
fn topological_order(children: &[Vec<TaskId>], parents: &[Vec<TaskId>]) -> Option<Vec<TaskId>> {
    let n = children.len();
    let mut indegree: Vec<usize> = parents.iter().map(Vec::len).collect();
    let mut queue: Vec<TaskId> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(TaskId::new)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &c in &children[v.index()] {
            indegree[c.index()] -= 1;
            if indegree[c.index()] == 0 {
                queue.push(c);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// An immutable, validated directed acyclic graph of [`Task`]s.
///
/// Construction goes through [`DagBuilder`], which guarantees that a `Dag`
/// is never empty, never cyclic, and that every task has a positive runtime
/// and a valid demand vector of the declared dimensionality. A precomputed
/// topological order is stored for the analyses in
/// [`analysis`](crate::analysis).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dag {
    dims: usize,
    tasks: Vec<Task>,
    edges: Vec<Edge>,
    children: Vec<Vec<TaskId>>,
    parents: Vec<Vec<TaskId>>,
    topo: Vec<TaskId>,
}

impl Dag {
    /// Number of resource dimensions of every task demand.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false`: built DAGs have at least one task.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All tasks, indexable by [`TaskId::index`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterates over all task ids in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::new)
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Direct successors of `id`, sorted by id.
    pub fn children(&self, id: TaskId) -> &[TaskId] {
        &self.children[id.index()]
    }

    /// Direct predecessors of `id`, sorted by id.
    pub fn parents(&self, id: TaskId) -> &[TaskId] {
        &self.parents[id.index()]
    }

    /// Tasks without predecessors (ready at time 0), sorted by id.
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.parents(t).is_empty())
            .collect()
    }

    /// Tasks without successors, sorted by id.
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|&t| self.children(t).is_empty())
            .collect()
    }

    /// A topological order of all tasks (sources first).
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Sum of all task runtimes — the serial makespan lower bound when only
    /// one task can run at a time.
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(Task::runtime).sum()
    }

    /// Length (total runtime) of the longest path through the graph; equals
    /// the largest b-level. No schedule can beat this makespan.
    pub fn critical_path_length(&self) -> u64 {
        crate::analysis::b_levels(self)
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    /// Largest runtime of any task.
    pub fn max_runtime(&self) -> u64 {
        self.tasks.iter().map(Task::runtime).max().unwrap_or(0)
    }

    /// Component-wise maximum demand over all tasks.
    pub fn max_demand(&self) -> ResourceVec {
        let mut m = ResourceVec::zeros(self.dims);
        for t in &self.tasks {
            m = m.component_max(t.demand());
        }
        m
    }

    /// Lower bound on the makespan from the per-dimension total load:
    /// `max_r ceil(Σ_v runtime(v)·demand(v)[r] / capacity[r])`, combined with
    /// the critical-path bound.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` has a different dimensionality than the graph.
    pub fn makespan_lower_bound(&self, capacity: &ResourceVec) -> u64 {
        assert_eq!(capacity.dims(), self.dims, "resource dimension mismatch");
        let mut load_bound = 0u64;
        for r in 0..self.dims {
            if capacity[r] <= 0.0 {
                continue;
            }
            let load: f64 = self.tasks.iter().map(|t| t.load(r)).sum();
            load_bound = load_bound.max((load / capacity[r]).ceil() as u64);
        }
        load_bound.max(self.critical_path_length())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> {1,2} -> 3
        let mut b = DagBuilder::new(1);
        let t0 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        let t1 = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let t2 = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5])));
        let t3 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5])));
        b.add_edge(t0, t1).unwrap();
        b.add_edge(t0, t2).unwrap();
        b.add_edge(t1, t3).unwrap();
        b.add_edge(t2, t3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond() {
        let d = diamond();
        assert_eq!(d.len(), 4);
        assert_eq!(d.sources(), vec![TaskId::new(0)]);
        assert_eq!(d.sinks(), vec![TaskId::new(3)]);
        assert_eq!(d.children(TaskId::new(0)).len(), 2);
        assert_eq!(d.parents(TaskId::new(3)).len(), 2);
    }

    #[test]
    fn topological_order_respects_edges() {
        let d = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; d.len()];
            for (i, &t) in d.topological_order().iter().enumerate() {
                pos[t.index()] = i;
            }
            pos
        };
        for e in d.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn detects_cycle() {
        let mut b = DagBuilder::new(1);
        let t0 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        let t1 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        b.add_edge(t0, t1).unwrap();
        b.add_edge(t1, t0).unwrap();
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(DagBuilder::new(1).build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn rejects_zero_runtime() {
        let mut b = DagBuilder::new(1);
        let t = b.add_task(Task::new(0, ResourceVec::from_slice(&[0.1])));
        assert_eq!(b.build().unwrap_err(), DagError::ZeroRuntime(t));
    }

    #[test]
    fn rejects_bad_demand() {
        let mut b = DagBuilder::new(1);
        let t = b.add_task(Task::new(1, ResourceVec::from_slice(&[-1.0])));
        assert_eq!(b.build().unwrap_err(), DagError::InvalidDemand(t));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut b = DagBuilder::new(2);
        let t = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        assert_eq!(
            b.build().unwrap_err(),
            DagError::DimensionMismatch {
                task: t,
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = DagBuilder::new(1);
        let t0 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        let t1 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        assert_eq!(
            b.add_edge(t0, TaskId::new(9)).unwrap_err(),
            DagError::UnknownTask(TaskId::new(9))
        );
        assert_eq!(
            b.add_edge(TaskId::new(9), t0).unwrap_err(),
            DagError::UnknownTask(TaskId::new(9))
        );
        assert_eq!(b.add_edge(t0, t0).unwrap_err(), DagError::SelfLoop(t0));
        b.add_edge(t0, t1).unwrap();
        assert_eq!(
            b.add_edge(t0, t1).unwrap_err(),
            DagError::DuplicateEdge(t0, t1)
        );
    }

    #[test]
    fn critical_path_of_diamond() {
        // 1 + 3 + 1 through the longer branch.
        assert_eq!(diamond().critical_path_length(), 5);
    }

    #[test]
    fn total_work_and_max_helpers() {
        let d = diamond();
        assert_eq!(d.total_work(), 7);
        assert_eq!(d.max_runtime(), 3);
        assert_eq!(d.max_demand().as_slice(), &[0.5]);
    }

    #[test]
    fn makespan_lower_bound_combines_load_and_cp() {
        let d = diamond();
        // load = 7 * 0.5 = 3.5 / cap 1.0 => 4; cp = 5 => bound 5.
        assert_eq!(d.makespan_lower_bound(&ResourceVec::from_slice(&[1.0])), 5);
        // Tight capacity: load bound dominates. 3.5 / 0.5 = 7.
        assert_eq!(d.makespan_lower_bound(&ResourceVec::from_slice(&[0.5])), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let d = diamond();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
