//! Random workload generators matching the paper's evaluation section.
//!
//! Two families:
//!
//! * [`LayeredDagSpec`] — the synthetic simulation workload of §V-B: DAGs
//!   with a fixed task count, per-level width drawn from a small range
//!   (2–5 in the paper), and task runtimes/demands drawn from clipped
//!   normal distributions.
//! * [`MapReduceSpec`] — two-stage map→reduce jobs used to build the
//!   trace-driven workload of §V-C (all reduce tasks depend on all map
//!   tasks, as in a shuffle boundary).
//!
//! All generation is deterministic given the caller-provided RNG.

use rand::Rng;

use crate::{Dag, DagBuilder, ResourceVec, Task, TaskId};

/// Draws one sample from a normal distribution via the Box–Muller
/// transform, then clips it to `[min, max]`.
///
/// Implemented locally so the crate's only stochastic dependency is
/// `rand`'s uniform source.
pub fn clipped_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
) -> f64 {
    debug_assert!(min <= max);
    // Box–Muller: u1 in (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + std_dev * z).clamp(min, max)
}

/// Specification of a random layered DAG, mirroring the paper's simulation
/// workload ("the number of tasks in each DAG is 100, the width of the DAG
/// is between 2 and 5, runtimes and resource demands follow normal
/// distributions").
///
/// Demands are expressed as absolute quantities against a cluster capacity
/// of `1.0` per dimension by convention; scale them if your cluster differs.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use spear_dag::generator::LayeredDagSpec;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let dag = LayeredDagSpec::paper_simulation().generate(&mut rng);
/// assert_eq!(dag.len(), 100);
/// let w = spear_dag::topo::width(&dag);
/// assert!((2..=5).contains(&w));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredDagSpec {
    /// Total number of tasks.
    pub num_tasks: usize,
    /// Minimum tasks per level (inclusive).
    pub min_width: usize,
    /// Maximum tasks per level (inclusive).
    pub max_width: usize,
    /// Resource dimensions per task.
    pub dims: usize,
    /// Mean of the runtime distribution (time slots).
    pub runtime_mean: f64,
    /// Standard deviation of the runtime distribution.
    pub runtime_std: f64,
    /// Runtimes are clipped to `[1, max_runtime]`.
    pub max_runtime: u64,
    /// Mean demand per dimension (fraction of unit capacity).
    pub demand_mean: f64,
    /// Standard deviation of the demand distribution.
    pub demand_std: f64,
    /// Demands are clipped to `[min_demand, max_demand]`.
    pub min_demand: f64,
    /// Upper demand clip; must not exceed cluster capacity or the task can
    /// never run.
    pub max_demand: f64,
    /// Probability of adding one extra (skip-level) parent to each task, on
    /// top of the mandatory previous-level parent.
    pub extra_edge_prob: f64,
}

impl LayeredDagSpec {
    /// The configuration used for the paper's simulations: 100 tasks,
    /// width 2–5, two resources (CPU + memory), normal runtimes clipped to
    /// a max of 20 slots and normal demands clipped to the unit capacity.
    pub fn paper_simulation() -> Self {
        LayeredDagSpec {
            num_tasks: 100,
            min_width: 2,
            max_width: 5,
            dims: 2,
            runtime_mean: 10.0,
            runtime_std: 4.0,
            max_runtime: 20,
            demand_mean: 0.45,
            demand_std: 0.2,
            min_demand: 0.05,
            max_demand: 1.0,
            extra_edge_prob: 0.25,
        }
    }

    /// The smaller configuration used to train the DRL agent (§V-B.3):
    /// 25 tasks per example.
    pub fn paper_training() -> Self {
        LayeredDagSpec {
            num_tasks: 25,
            ..Self::paper_simulation()
        }
    }

    /// Generates one DAG.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (zero tasks, `min_width` of zero
    /// or exceeding `max_width`).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dag {
        assert!(self.num_tasks > 0, "num_tasks must be positive");
        assert!(
            (1..=self.max_width).contains(&self.min_width),
            "requires 1 <= min_width <= max_width"
        );

        // Partition tasks into levels with widths drawn uniformly from
        // [min_width, max_width]; the final level takes the remainder.
        let mut level_sizes = Vec::new();
        let mut remaining = self.num_tasks;
        while remaining > 0 {
            let w = rng
                .gen_range(self.min_width..=self.max_width)
                .min(remaining);
            level_sizes.push(w);
            remaining -= w;
        }

        let mut builder = DagBuilder::new(self.dims);
        let mut levels: Vec<Vec<TaskId>> = Vec::with_capacity(level_sizes.len());
        for &size in &level_sizes {
            let mut level = Vec::with_capacity(size);
            for _ in 0..size {
                let runtime = clipped_normal(
                    rng,
                    self.runtime_mean,
                    self.runtime_std,
                    1.0,
                    self.max_runtime as f64,
                )
                .round() as u64;
                let demand: ResourceVec = (0..self.dims)
                    .map(|_| {
                        clipped_normal(
                            rng,
                            self.demand_mean,
                            self.demand_std,
                            self.min_demand,
                            self.max_demand,
                        )
                    })
                    .collect();
                level.push(builder.add_task(Task::new(runtime.max(1), demand)));
            }
            levels.push(level);
        }

        // Every non-source task gets one mandatory parent from the previous
        // level (keeps the level structure = the paper's width bound), plus
        // an optional extra parent from any earlier level.
        for li in 1..levels.len() {
            for &t in &levels[li] {
                let prev = &levels[li - 1];
                let parent = prev[rng.gen_range(0..prev.len())];
                builder
                    .add_edge(parent, t)
                    .expect("mandatory edge endpoints exist and cannot duplicate");
                if rng.gen::<f64>() < self.extra_edge_prob {
                    let pl = rng.gen_range(0..li);
                    let cand = levels[pl][rng.gen_range(0..levels[pl].len())];
                    // Ignore duplicates of the mandatory edge.
                    let _ = builder.add_edge(cand, t);
                }
            }
        }

        builder
            .build()
            .expect("layered construction is acyclic by design")
    }
}

/// Specification of a two-stage MapReduce job: `num_map` map tasks feeding
/// `num_reduce` reduce tasks through a full shuffle (every reduce depends
/// on every map, which is how the paper's Hive trace jobs are shaped).
#[derive(Debug, Clone, PartialEq)]
pub struct MapReduceSpec {
    /// Number of map tasks.
    pub num_map: usize,
    /// Number of reduce tasks.
    pub num_reduce: usize,
    /// Runtime of each map task (time slots), one entry per task.
    pub map_runtimes: Vec<u64>,
    /// Runtime of each reduce task (time slots), one entry per task.
    pub reduce_runtimes: Vec<u64>,
    /// Demand of every map task.
    pub map_demand: ResourceVec,
    /// Demand of every reduce task (typically larger, per the paper: reduce
    /// demands are normally higher than map demands).
    pub reduce_demand: ResourceVec,
}

impl MapReduceSpec {
    /// Builds the job DAG: map tasks first (ids `0..num_map`), then reduce
    /// tasks, with a full bipartite shuffle edge set.
    ///
    /// # Panics
    ///
    /// Panics if the runtime vectors do not match the declared task counts
    /// or if either stage is empty.
    pub fn build(&self) -> Dag {
        assert_eq!(self.map_runtimes.len(), self.num_map);
        assert_eq!(self.reduce_runtimes.len(), self.num_reduce);
        assert!(self.num_map > 0 && self.num_reduce > 0);
        let dims = self.map_demand.dims();
        let mut b = DagBuilder::new(dims);
        let maps: Vec<TaskId> = self
            .map_runtimes
            .iter()
            .enumerate()
            .map(|(i, &rt)| {
                b.add_task(
                    Task::new(rt.max(1), self.map_demand.clone()).with_name(format!("map-{i}")),
                )
            })
            .collect();
        let reduces: Vec<TaskId> = self
            .reduce_runtimes
            .iter()
            .enumerate()
            .map(|(i, &rt)| {
                b.add_task(
                    Task::new(rt.max(1), self.reduce_demand.clone())
                        .with_name(format!("reduce-{i}")),
                )
            })
            .collect();
        for &m in &maps {
            for &r in &reduces {
                b.add_edge(m, r).expect("bipartite edges are unique");
            }
        }
        b.build().expect("two-stage graph is acyclic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clipped_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = clipped_normal(&mut rng, 0.5, 10.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn clipped_normal_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| clipped_normal(&mut rng, 10.0, 2.0, 0.0, 20.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn paper_simulation_spec_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let dag = LayeredDagSpec::paper_simulation().generate(&mut rng);
        assert_eq!(dag.len(), 100);
        assert_eq!(dag.dims(), 2);
        let w = topo::width(&dag);
        assert!((2..=5).contains(&w), "width {w} out of range");
        for t in dag.tasks() {
            assert!((1..=20).contains(&t.runtime()));
            for r in 0..2 {
                assert!((0.05..=1.0).contains(&t.demand()[r]));
            }
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let spec = LayeredDagSpec::paper_training();
        let a = spec.generate(&mut StdRng::seed_from_u64(42));
        let b = spec.generate(&mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = spec.generate(&mut StdRng::seed_from_u64(43));
        assert_ne!(a, c);
    }

    #[test]
    fn every_non_source_task_has_a_parent() {
        let mut rng = StdRng::seed_from_u64(4);
        let dag = LayeredDagSpec::paper_simulation().generate(&mut rng);
        let levels = topo::levels(&dag);
        for t in dag.task_ids() {
            if levels[t.index()] > 0 {
                assert!(!dag.parents(t).is_empty());
            }
        }
    }

    #[test]
    fn single_wide_level_has_no_edges() {
        let spec = LayeredDagSpec {
            num_tasks: 4,
            min_width: 4,
            max_width: 4,
            ..LayeredDagSpec::paper_simulation()
        };
        let dag = spec.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(dag.edges().len(), 0);
        assert_eq!(topo::width(&dag), 4);
    }

    #[test]
    fn mapreduce_builds_full_shuffle() {
        let spec = MapReduceSpec {
            num_map: 3,
            num_reduce: 2,
            map_runtimes: vec![5, 6, 7],
            reduce_runtimes: vec![9, 10],
            map_demand: ResourceVec::from_slice(&[0.1, 0.1]),
            reduce_demand: ResourceVec::from_slice(&[0.3, 0.4]),
        };
        let dag = spec.build();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.edges().len(), 6);
        assert_eq!(dag.sources().len(), 3);
        assert_eq!(dag.sinks().len(), 2);
        assert_eq!(dag.task(TaskId::new(0)).name(), Some("map-0"));
        assert_eq!(dag.task(TaskId::new(3)).name(), Some("reduce-0"));
        // Critical path = longest map + longest reduce.
        assert_eq!(dag.critical_path_length(), 7 + 10);
    }

    #[test]
    #[should_panic]
    fn mapreduce_rejects_mismatched_runtimes() {
        let spec = MapReduceSpec {
            num_map: 2,
            num_reduce: 1,
            map_runtimes: vec![5],
            reduce_runtimes: vec![9],
            map_demand: ResourceVec::from_slice(&[0.1]),
            reduce_demand: ResourceVec::from_slice(&[0.3]),
        };
        let _ = spec.build();
    }
}
