//! Error type for DAG construction.

use std::error::Error;
use std::fmt;

use crate::TaskId;

/// Errors produced while building or validating a [`Dag`](crate::Dag).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// An edge endpoint refers to a task that was never added.
    UnknownTask(TaskId),
    /// A self-loop `v -> v` was added.
    SelfLoop(TaskId),
    /// The same edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The graph contains a directed cycle (detected at build time).
    Cycle,
    /// A task has a non-finite or negative resource demand.
    InvalidDemand(TaskId),
    /// A task has zero runtime; the simulator requires runtimes ≥ 1 slot.
    ZeroRuntime(TaskId),
    /// Tasks disagree on the number of resource dimensions.
    DimensionMismatch {
        /// Offending task.
        task: TaskId,
        /// Dimensions declared when the builder was created.
        expected: usize,
        /// Dimensions of the offending task's demand vector.
        actual: usize,
    },
    /// The graph has no tasks.
    Empty,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownTask(t) => write!(f, "edge endpoint {t} does not exist"),
            DagError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge {u} -> {v}"),
            DagError::Cycle => write!(f, "graph contains a directed cycle"),
            DagError::InvalidDemand(t) => {
                write!(f, "task {t} has a negative or non-finite resource demand")
            }
            DagError::ZeroRuntime(t) => write!(f, "task {t} has zero runtime"),
            DagError::DimensionMismatch {
                task,
                expected,
                actual,
            } => write!(
                f,
                "task {task} has {actual} resource dimensions, expected {expected}"
            ),
            DagError::Empty => write!(f, "graph has no tasks"),
        }
    }
}

impl Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            DagError::UnknownTask(TaskId::new(0)),
            DagError::SelfLoop(TaskId::new(1)),
            DagError::DuplicateEdge(TaskId::new(0), TaskId::new(1)),
            DagError::Cycle,
            DagError::InvalidDemand(TaskId::new(2)),
            DagError::ZeroRuntime(TaskId::new(3)),
            DagError::DimensionMismatch {
                task: TaskId::new(4),
                expected: 2,
                actual: 3,
            },
            DagError::Empty,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("edge"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DagError>();
    }
}
