//! Graph analyses used by the scheduling policies.
//!
//! The Spear paper's DRL state (§III-D) combines four graph-derived task
//! features: the **b-level** (longest runtime path from the task to an exit,
//! inclusive), the **number of children**, and the per-resource **b-load**
//! (the task load — `runtime × demand` — accumulated along the b-level
//! path). This module computes all of them plus the t-level and the critical
//! path used by the CP baseline and the supervised pre-training expert.

use serde::{Deserialize, Serialize};

use crate::{Dag, TaskId};

/// b-level of every task: length of the longest path (sum of runtimes) from
/// the task to any exit node, *including* the task's own runtime.
///
/// The maximum b-level over all tasks equals the critical-path length of
/// the DAG.
pub fn b_levels(dag: &Dag) -> Vec<u64> {
    let mut bl = vec![0u64; dag.len()];
    for &v in dag.topological_order().iter().rev() {
        let best_child = dag
            .children(v)
            .iter()
            .map(|c| bl[c.index()])
            .max()
            .unwrap_or(0);
        bl[v.index()] = dag.task(v).runtime() + best_child;
    }
    bl
}

/// t-level of every task: length of the longest path from any entry node to
/// the task, *excluding* the task's own runtime (i.e. its earliest possible
/// start time on an infinitely wide cluster).
pub fn t_levels(dag: &Dag) -> Vec<u64> {
    let mut tl = vec![0u64; dag.len()];
    for &v in dag.topological_order() {
        let rt = dag.task(v).runtime();
        for &c in dag.children(v) {
            tl[c.index()] = tl[c.index()].max(tl[v.index()] + rt);
        }
    }
    tl
}

/// Per-resource b-load of every task: the task load (`runtime × demand[r]`)
/// accumulated along the *maximum-load* path from the task to an exit node,
/// including the task itself.
///
/// Returns one vector per resource dimension: `b_loads(dag)[r][task]`.
pub fn b_loads(dag: &Dag) -> Vec<Vec<f64>> {
    let dims = dag.dims();
    let mut loads = vec![vec![0.0f64; dag.len()]; dims];
    for &v in dag.topological_order().iter().rev() {
        for (r, load_r) in loads.iter_mut().enumerate() {
            let best_child = dag
                .children(v)
                .iter()
                .map(|c| load_r[c.index()])
                .fold(0.0_f64, f64::max);
            load_r[v.index()] = dag.task(v).load(r) + best_child;
        }
    }
    loads
}

/// Number of direct children of every task — the tiebreaker feature of the
/// classic b-level list schedulers the paper cites.
pub fn child_counts(dag: &Dag) -> Vec<usize> {
    dag.task_ids().map(|t| dag.children(t).len()).collect()
}

/// Number of (transitive) descendants of every task.
pub fn descendant_counts(dag: &Dag) -> Vec<usize> {
    let n = dag.len();
    // Bitset per task; fine for the paper's graph sizes (≤ a few hundred).
    let words = n.div_ceil(64);
    let mut sets = vec![vec![0u64; words]; n];
    for &v in dag.topological_order().iter().rev() {
        let mut acc = vec![0u64; words];
        for &c in dag.children(v) {
            acc[c.index() / 64] |= 1u64 << (c.index() % 64);
            for (a, s) in acc.iter_mut().zip(&sets[c.index()]) {
                *a |= s;
            }
        }
        sets[v.index()] = acc;
    }
    sets.iter()
        .map(|s| s.iter().map(|w| w.count_ones() as usize).sum())
        .collect()
}

/// One task's worth of static (schedule-independent) features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskFeatures {
    /// b-level (see [`b_levels`]).
    pub b_level: u64,
    /// t-level (see [`t_levels`]).
    pub t_level: u64,
    /// Direct child count.
    pub children: usize,
    /// Per-resource b-load (see [`b_loads`]).
    pub b_load: Vec<f64>,
}

/// All static graph features of a DAG, precomputed once and shared by the
/// DRL featurizer, the CP scheduler and Graphene.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphFeatures {
    per_task: Vec<TaskFeatures>,
    critical_path: u64,
    max_children: usize,
    max_b_load: Vec<f64>,
}

impl GraphFeatures {
    /// Computes every static feature of `dag` in three topological sweeps.
    pub fn compute(dag: &Dag) -> Self {
        let bl = b_levels(dag);
        let tl = t_levels(dag);
        let loads = b_loads(dag);
        let kids = child_counts(dag);
        let critical_path = bl.iter().copied().max().unwrap_or(0);
        let max_children = kids.iter().copied().max().unwrap_or(0);
        let max_b_load: Vec<f64> = loads
            .iter()
            .map(|l| l.iter().copied().fold(0.0_f64, f64::max))
            .collect();
        let per_task = (0..dag.len())
            .map(|i| TaskFeatures {
                b_level: bl[i],
                t_level: tl[i],
                children: kids[i],
                b_load: loads.iter().map(|l| l[i]).collect(),
            })
            .collect();
        GraphFeatures {
            per_task,
            critical_path,
            max_children,
            max_b_load,
        }
    }

    /// Features of one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &TaskFeatures {
        &self.per_task[id.index()]
    }

    /// Critical-path length of the DAG (max b-level).
    pub fn critical_path(&self) -> u64 {
        self.critical_path
    }

    /// Largest direct-child count of any task.
    pub fn max_children(&self) -> usize {
        self.max_children
    }

    /// Per-resource maximum b-load — used to normalize b-load features.
    pub fn max_b_load(&self) -> &[f64] {
        &self.max_b_load
    }
}

/// Extracts one critical path (task ids from an entry to an exit) by
/// greedily following maximal b-levels.
pub fn critical_path_tasks(dag: &Dag) -> Vec<TaskId> {
    let bl = b_levels(dag);
    let mut current = dag
        .sources()
        .into_iter()
        .max_by_key(|t| bl[t.index()])
        .expect("built DAGs are non-empty");
    let mut path = vec![current];
    loop {
        let next = dag
            .children(current)
            .iter()
            .copied()
            .max_by_key(|c| bl[c.index()]);
        match next {
            Some(c) => {
                path.push(c);
                current = c;
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DagBuilder, ResourceVec, Task};

    /// 0 -> 1 -> 3, 0 -> 2 -> 3 with runtimes 1, 2, 3, 1 and demands chosen
    /// so b-loads differ per dimension.
    fn diamond() -> Dag {
        let mut b = DagBuilder::new(2);
        let t0 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.5, 0.1])));
        let t1 = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.2, 0.8])));
        let t2 = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.4, 0.1])));
        let t3 = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.3, 0.3])));
        b.add_edge(t0, t1).unwrap();
        b.add_edge(t0, t2).unwrap();
        b.add_edge(t1, t3).unwrap();
        b.add_edge(t2, t3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn b_levels_of_diamond() {
        // t3: 1; t1: 2+1=3; t2: 3+1=4; t0: 1+4=5.
        assert_eq!(b_levels(&diamond()), vec![5, 3, 4, 1]);
    }

    #[test]
    fn t_levels_of_diamond() {
        // t0: 0; t1: 1; t2: 1; t3: max(1+2, 1+3)=4.
        assert_eq!(t_levels(&diamond()), vec![0, 1, 1, 4]);
    }

    #[test]
    fn b_level_plus_t_level_bounded_by_cp() {
        let d = diamond();
        let bl = b_levels(&d);
        let tl = t_levels(&d);
        let cp = d.critical_path_length();
        for i in 0..d.len() {
            assert!(tl[i] + bl[i] <= cp, "task {i} violates tl+bl <= cp");
        }
        // Tasks on the critical path achieve equality.
        let on_cp = (0..d.len()).filter(|&i| tl[i] + bl[i] == cp).count();
        assert!(on_cp >= 2);
    }

    #[test]
    fn b_loads_of_diamond() {
        let loads = b_loads(&diamond());
        // Dimension 0: loads are 0.5, 0.4, 1.2, 0.3.
        // t3: 0.3; t1: 0.4+0.3=0.7; t2: 1.2+0.3=1.5; t0: 0.5+1.5=2.0.
        let d0 = &loads[0];
        assert!((d0[3] - 0.3).abs() < 1e-9);
        assert!((d0[1] - 0.7).abs() < 1e-9);
        assert!((d0[2] - 1.5).abs() < 1e-9);
        assert!((d0[0] - 2.0).abs() < 1e-9);
        // Dimension 1: loads are 0.1, 1.6, 0.3, 0.3.
        // t3: 0.3; t1: 1.9; t2: 0.6; t0: 0.1+1.9=2.0.
        let d1 = &loads[1];
        assert!((d1[1] - 1.9).abs() < 1e-9);
        assert!((d1[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn b_load_path_can_differ_from_b_level_path() {
        let d = diamond();
        // b-level path goes through t2, but dimension-1 b-load path goes
        // through t1 (1.6 > 0.3): the two analyses are genuinely distinct.
        let loads = b_loads(&d);
        assert!(loads[1][1] > loads[1][2]);
        let bl = b_levels(&d);
        assert!(bl[2] > bl[1]);
    }

    #[test]
    fn child_and_descendant_counts() {
        let d = diamond();
        assert_eq!(child_counts(&d), vec![2, 1, 1, 0]);
        assert_eq!(descendant_counts(&d), vec![3, 1, 1, 0]);
    }

    #[test]
    fn descendant_counts_on_wide_graph() {
        // 70 sources all feeding one sink: exercises multi-word bitsets.
        let mut b = DagBuilder::new(1);
        let sources: Vec<TaskId> = (0..70)
            .map(|_| b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1]))))
            .collect();
        let sink = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.1])));
        for &s in &sources {
            b.add_edge(s, sink).unwrap();
        }
        let d = b.build().unwrap();
        let desc = descendant_counts(&d);
        assert!(desc[..70].iter().all(|&c| c == 1));
        assert_eq!(desc[70], 0);
    }

    #[test]
    fn graph_features_aggregates() {
        let d = diamond();
        let f = GraphFeatures::compute(&d);
        assert_eq!(f.critical_path(), 5);
        assert_eq!(f.max_children(), 2);
        assert_eq!(f.task(TaskId::new(0)).b_level, 5);
        assert_eq!(f.task(TaskId::new(0)).children, 2);
        assert!((f.max_b_load()[0] - 2.0).abs() < 1e-9);
        assert!((f.max_b_load()[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_tasks_follow_longest_branch() {
        let d = diamond();
        let path = critical_path_tasks(&d);
        let ids: Vec<usize> = path.iter().map(|t| t.index()).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        let total: u64 = path.iter().map(|&t| d.task(t).runtime()).sum();
        assert_eq!(total, d.critical_path_length());
    }

    #[test]
    fn single_task_features() {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(7, ResourceVec::from_slice(&[0.5])));
        let d = b.build().unwrap();
        assert_eq!(b_levels(&d), vec![7]);
        assert_eq!(t_levels(&d), vec![0]);
        assert_eq!(critical_path_tasks(&d).len(), 1);
    }
}
