//! Multi-dimensional resource vectors.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// A vector of non-negative resource quantities, one entry per resource
/// dimension (e.g. CPU and memory).
///
/// `ResourceVec` is used both for task *demands* and for cluster
/// *capacities*/*free space*; the arithmetic helpers below implement the
/// resource-time-space bookkeeping of the simulator.
///
/// # Example
///
/// ```
/// use spear_dag::ResourceVec;
///
/// let capacity = ResourceVec::from_slice(&[1.0, 1.0]);
/// let demand = ResourceVec::from_slice(&[0.4, 0.7]);
/// assert!(demand.fits_within(&capacity));
/// let free = capacity.saturating_sub(&demand);
/// assert!((free[0] - 0.6).abs() < 1e-12);
/// ```
#[derive(Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVec(Vec<f64>);

// Manual `Clone` so `clone_from` reuses the destination's allocation: the
// MCTS rollout scratch copies a `ResourceVec` per rollout and must not
// allocate in steady state (the derived impl falls back to a fresh `Vec`).
impl Clone for ResourceVec {
    fn clone(&self) -> Self {
        ResourceVec(self.0.clone())
    }

    fn clone_from(&mut self, source: &Self) {
        self.0.clone_from(&source.0);
    }
}

impl ResourceVec {
    /// Creates a zero vector with `dims` dimensions.
    ///
    /// ```
    /// use spear_dag::ResourceVec;
    /// let z = ResourceVec::zeros(3);
    /// assert_eq!(z.dims(), 3);
    /// assert!(z.is_zero());
    /// ```
    pub fn zeros(dims: usize) -> Self {
        ResourceVec(vec![0.0; dims])
    }

    /// Creates a vector with every dimension set to `value`.
    pub fn splat(dims: usize, value: f64) -> Self {
        ResourceVec(vec![value; dims])
    }

    /// Creates a vector from a slice of quantities.
    pub fn from_slice(values: &[f64]) -> Self {
        ResourceVec(values.to_vec())
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Returns the raw quantities.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Returns `true` if every component is (numerically) zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v.abs() < 1e-12)
    }

    /// Returns `true` if every component is finite and non-negative.
    pub fn is_valid_demand(&self) -> bool {
        self.0.iter().all(|&v| v.is_finite() && v >= 0.0)
    }

    /// Component-wise `self <= other` within a small tolerance; the "does
    /// this demand fit in this free space" test used by every scheduler.
    #[inline]
    pub fn fits_within(&self, other: &ResourceVec) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.0
            .iter()
            .zip(&other.0)
            .all(|(&a, &b)| a <= b + FIT_EPSILON)
    }

    /// Component-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add(&self, other: &ResourceVec) -> ResourceVec {
        assert_eq!(self.dims(), other.dims(), "resource dimension mismatch");
        ResourceVec(self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect())
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn add_assign(&mut self, other: &ResourceVec) {
        assert_eq!(self.dims(), other.dims(), "resource dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Component-wise subtraction clamped at zero (guards against the tiny
    /// negative values floating-point bookkeeping would otherwise
    /// accumulate).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        assert_eq!(self.dims(), other.dims(), "resource dimension mismatch");
        ResourceVec(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| (a - b).max(0.0))
                .collect(),
        )
    }

    /// Clamps every component of `self` to at most the matching component
    /// of `upper`, in place — e.g. to keep a derived free-capacity view
    /// from exceeding the cluster capacity it was derived from.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn clamp_assign(&mut self, upper: &ResourceVec) {
        assert_eq!(self.dims(), upper.dims(), "resource dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&upper.0) {
            *a = a.min(*b);
        }
    }

    /// Subtracts `other` from `self` in place, clamping at zero.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn saturating_sub_assign(&mut self, other: &ResourceVec) {
        assert_eq!(self.dims(), other.dims(), "resource dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a - b).max(0.0);
        }
    }

    /// Dot product — the Tetris *alignment score* between a task demand and
    /// the free space of the cluster.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot(&self, other: &ResourceVec) -> f64 {
        assert_eq!(self.dims(), other.dims(), "resource dimension mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Multiplies every component by `factor`.
    pub fn scale(&self, factor: f64) -> ResourceVec {
        ResourceVec(self.0.iter().map(|v| v * factor).collect())
    }

    /// Component-wise maximum.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn component_max(&self, other: &ResourceVec) -> ResourceVec {
        assert_eq!(self.dims(), other.dims(), "resource dimension mismatch");
        ResourceVec(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.max(*b))
                .collect(),
        )
    }

    /// Largest single component.
    pub fn max_component(&self) -> f64 {
        self.0.iter().cloned().fold(0.0_f64, f64::max)
    }

    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Fraction of `capacity` used, averaged over dimensions. Returns 0 for
    /// zero capacity dimensions.
    pub fn utilization_of(&self, capacity: &ResourceVec) -> f64 {
        debug_assert_eq!(self.dims(), capacity.dims());
        if self.dims() == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .0
            .iter()
            .zip(&capacity.0)
            .map(|(&u, &c)| if c > 0.0 { u / c } else { 0.0 })
            .sum();
        sum / self.dims() as f64
    }
}

/// The single feasibility tolerance of the workspace: every demand-vs-
/// capacity comparison — [`ResourceVec::fits_within`], schedule validation,
/// the resource timeline and the invariant auditor — uses this constant, so
/// the simulator, the validators and the auditors can never disagree about
/// what "fits" means. It absorbs the floating-point drift of repeated
/// add/sub bookkeeping; do not hand-roll other `1e-9`-style literals for
/// feasibility checks.
pub const FIT_EPSILON: f64 = 1e-9;

impl Index<usize> for ResourceVec {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.0[index]
    }
}

impl IndexMut<usize> for ResourceVec {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.0[index]
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.3}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<f64>> for ResourceVec {
    fn from(values: Vec<f64>) -> Self {
        ResourceVec(values)
    }
}

impl FromIterator<f64> for ResourceVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        ResourceVec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        assert!(ResourceVec::zeros(2).is_zero());
        assert!(!ResourceVec::from_slice(&[0.0, 0.1]).is_zero());
    }

    #[test]
    fn fits_within_exact_boundary() {
        let cap = ResourceVec::from_slice(&[1.0, 1.0]);
        assert!(ResourceVec::from_slice(&[1.0, 1.0]).fits_within(&cap));
        assert!(!ResourceVec::from_slice(&[1.0 + 1e-6, 0.5]).fits_within(&cap));
    }

    #[test]
    fn fits_within_tolerates_float_drift() {
        let cap = ResourceVec::from_slice(&[0.1 + 0.2]); // 0.30000000000000004
        assert!(ResourceVec::from_slice(&[0.3]).fits_within(&cap));
        let cap2 = ResourceVec::from_slice(&[0.3]);
        assert!(ResourceVec::from_slice(&[0.1 + 0.2]).fits_within(&cap2));
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = ResourceVec::from_slice(&[0.5, 0.25]);
        let b = ResourceVec::from_slice(&[0.25, 0.5]);
        let sum = a.add(&b);
        let back = sum.saturating_sub(&b);
        assert!((back[0] - 0.5).abs() < 1e-12);
        assert!((back[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = ResourceVec::from_slice(&[0.1]);
        let b = ResourceVec::from_slice(&[0.5]);
        assert_eq!(a.saturating_sub(&b)[0], 0.0);
    }

    #[test]
    fn clamp_assign_caps_components() {
        let mut a = ResourceVec::from_slice(&[1.5, 0.2]);
        a.clamp_assign(&ResourceVec::from_slice(&[1.0, 1.0]));
        assert_eq!(a.as_slice(), &[1.0, 0.2]);
    }

    #[test]
    fn dot_product() {
        let a = ResourceVec::from_slice(&[2.0, 3.0]);
        let b = ResourceVec::from_slice(&[4.0, 5.0]);
        assert_eq!(a.dot(&b), 23.0);
    }

    #[test]
    fn utilization_is_mean_fraction() {
        let used = ResourceVec::from_slice(&[0.5, 1.0]);
        let cap = ResourceVec::from_slice(&[1.0, 2.0]);
        assert!((used.utilization_of(&cap) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_ignores_zero_capacity_dims() {
        let used = ResourceVec::from_slice(&[0.5, 0.7]);
        let cap = ResourceVec::from_slice(&[1.0, 0.0]);
        assert!((used.utilization_of(&cap) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn valid_demand_rejects_nan_and_negative() {
        assert!(!ResourceVec::from_slice(&[f64::NAN]).is_valid_demand());
        assert!(!ResourceVec::from_slice(&[-0.1]).is_valid_demand());
        assert!(ResourceVec::from_slice(&[0.0, 0.3]).is_valid_demand());
    }

    #[test]
    #[should_panic(expected = "resource dimension mismatch")]
    fn add_panics_on_dim_mismatch() {
        let _ = ResourceVec::zeros(1).add(&ResourceVec::zeros(2));
    }

    #[test]
    fn display_formats_components() {
        let v = ResourceVec::from_slice(&[0.5, 1.0]);
        assert_eq!(format!("{v}"), "[0.500, 1.000]");
    }

    #[test]
    fn component_and_max_helpers() {
        let a = ResourceVec::from_slice(&[1.0, 5.0]);
        let b = ResourceVec::from_slice(&[2.0, 3.0]);
        let m = a.component_max(&b);
        assert_eq!(m.as_slice(), &[2.0, 5.0]);
        assert_eq!(m.max_component(), 5.0);
        assert_eq!(m.total(), 7.0);
    }

    #[test]
    fn from_iterator_collects() {
        let v: ResourceVec = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }
}
