//! Import of Standard Task Graph (STG) files.
//!
//! STG is the benchmark format of the classic DAG-scheduling literature
//! (Tobita & Kasahara's STG suite), which the paper's related work
//! (references \[8\]\[9\]\[10\] of the paper) evaluates on. The format is
//! line-oriented:
//!
//! ```text
//! 5            # number of tasks (excluding the dummy entry/exit)
//! 0 0 0        # id, processing time, #predecessors
//! 1 3 1 0      # id, time, 1 predecessor: task 0
//! 2 4 1 0
//! 3 2 2 1 2
//! 4 0 1 3      # dummy exit
//! ```
//!
//! Comments start with `#`; blank lines are ignored. Tasks with zero
//! processing time (STG's dummy entry/exit nodes) are kept but clamped to
//! runtime 1, since the simulator requires positive runtimes; pass
//! `drop_dummies = true` to [`parse_stg`] to remove zero-time sources and
//! sinks instead (edges through them are transitively reconnected — the
//! usual treatment in the literature).
//!
//! STG carries no resource demands, so the caller supplies a
//! [`DemandModel`] that assigns each task its demand vector.

use rand::Rng;

use crate::{Dag, DagBuilder, DagError, ResourceVec, Task, TaskId};

/// How to assign resource demands to STG tasks (the format has none).
#[derive(Debug, Clone)]
pub enum DemandModel {
    /// Every task gets the same demand vector.
    Uniform(ResourceVec),
    /// Demands drawn from clipped normals per dimension:
    /// `(dims, mean, std_dev, min, max)` — the simulation workload's
    /// distribution applied to an external topology.
    Normal {
        /// Resource dimensions.
        dims: usize,
        /// Mean demand per dimension.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
        /// Lower clip.
        min: f64,
        /// Upper clip.
        max: f64,
    },
}

impl DemandModel {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ResourceVec {
        match self {
            DemandModel::Uniform(d) => d.clone(),
            DemandModel::Normal {
                dims,
                mean,
                std_dev,
                min,
                max,
            } => (0..*dims)
                .map(|_| crate::generator::clipped_normal(rng, *mean, *std_dev, *min, *max))
                .collect(),
        }
    }

    fn dims(&self) -> usize {
        match self {
            DemandModel::Uniform(d) => d.dims(),
            DemandModel::Normal { dims, .. } => *dims,
        }
    }
}

/// Errors from STG parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StgError {
    /// The file is empty or the task-count header is missing/invalid.
    MissingHeader,
    /// A task line is malformed (wrong field count or non-numeric).
    BadTaskLine {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A task line's id is out of order or out of range.
    BadTaskId {
        /// 1-based line number in the input.
        line: usize,
    },
    /// Fewer task lines than the header announced.
    TruncatedFile,
    /// The resulting graph failed validation.
    Graph(DagError),
}

impl std::fmt::Display for StgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StgError::MissingHeader => write!(f, "missing or invalid task-count header"),
            StgError::BadTaskLine { line } => write!(f, "malformed task line {line}"),
            StgError::BadTaskId { line } => write!(f, "unexpected task id on line {line}"),
            StgError::TruncatedFile => write!(f, "fewer task lines than the header announced"),
            StgError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for StgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StgError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for StgError {
    fn from(e: DagError) -> Self {
        StgError::Graph(e)
    }
}

/// One parsed STG task record.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StgTask {
    time: u64,
    preds: Vec<usize>,
}

/// Parses STG text into a [`Dag`], assigning demands via `demands` (driven
/// by `rng` for the stochastic models).
///
/// With `drop_dummies`, zero-time tasks that are pure sources or sinks
/// (STG's dummy entry/exit) are removed and their edges reconnected.
///
/// # Errors
///
/// Returns [`StgError`] for malformed input or an invalid resulting graph.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use spear_dag::stg::{parse_stg, DemandModel};
/// use spear_dag::ResourceVec;
///
/// let text = "3\n0 2 0\n1 4 1 0\n2 3 1 0\n";
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let dag = parse_stg(
///     text,
///     &DemandModel::Uniform(ResourceVec::from_slice(&[0.5, 0.5])),
///     false,
///     &mut rng,
/// ).unwrap();
/// assert_eq!(dag.len(), 3);
/// assert_eq!(dag.critical_path_length(), 6);
/// ```
pub fn parse_stg<R: Rng + ?Sized>(
    text: &str,
    demands: &DemandModel,
    drop_dummies: bool,
    rng: &mut R,
) -> Result<Dag, StgError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (_, header) = lines.next().ok_or(StgError::MissingHeader)?;
    let count: usize = header
        .split_whitespace()
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or(StgError::MissingHeader)?;

    let mut tasks: Vec<StgTask> = Vec::with_capacity(count);
    for _ in 0..count {
        let (line_no, line) = lines.next().ok_or(StgError::TruncatedFile)?;
        let fields: Vec<u64> = line
            .split_whitespace()
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| StgError::BadTaskLine { line: line_no })?;
        if fields.len() < 3 {
            return Err(StgError::BadTaskLine { line: line_no });
        }
        let (id, time, npred) = (fields[0] as usize, fields[1], fields[2] as usize);
        if id != tasks.len() {
            return Err(StgError::BadTaskId { line: line_no });
        }
        if fields.len() != 3 + npred {
            return Err(StgError::BadTaskLine { line: line_no });
        }
        let preds: Vec<usize> = fields[3..].iter().map(|&p| p as usize).collect();
        if preds.iter().any(|&p| p >= count) {
            return Err(StgError::BadTaskLine { line: line_no });
        }
        tasks.push(StgTask { time, preds });
    }

    // Successor lists for dummy reconnection.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    for (i, t) in tasks.iter().enumerate() {
        for &p in &t.preds {
            succs[p].push(i);
        }
    }

    let is_dummy = |i: usize| {
        drop_dummies && tasks[i].time == 0 && (tasks[i].preds.is_empty() || succs[i].is_empty())
    };

    // Map retained STG ids to dense new ids.
    let mut new_id = vec![usize::MAX; tasks.len()];
    let mut kept = 0usize;
    for (i, id) in new_id.iter_mut().enumerate() {
        if !is_dummy(i) {
            *id = kept;
            kept += 1;
        }
    }
    if kept == 0 {
        return Err(StgError::Graph(DagError::Empty));
    }

    let mut builder = DagBuilder::new(demands.dims());
    for (i, t) in tasks.iter().enumerate() {
        if new_id[i] == usize::MAX {
            continue;
        }
        builder
            .add_task(Task::new(t.time.max(1), demands.sample(rng)).with_name(format!("stg-{i}")));
    }
    // Edges: skip through dropped dummies (entry dummies have no preds to
    // forward; exit dummies have no succs — so only direct edges between
    // retained tasks remain, plus edges *through* a dropped middle node
    // cannot exist because dummies are sources/sinks by definition).
    let mut add_edge = |from: usize, to: usize| -> Result<(), StgError> {
        match builder.add_edge(TaskId::new(new_id[from]), TaskId::new(new_id[to])) {
            Ok(()) | Err(DagError::DuplicateEdge(_, _)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    };
    for (i, t) in tasks.iter().enumerate() {
        if new_id[i] == usize::MAX {
            continue;
        }
        for &p in &t.preds {
            if new_id[p] != usize::MAX {
                add_edge(p, i)?;
            }
        }
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform() -> DemandModel {
        DemandModel::Uniform(ResourceVec::from_slice(&[0.4, 0.3]))
    }

    const DIAMOND: &str = "\
# a diamond with dummy entry/exit
6
0 0 0        # dummy entry
1 3 1 0
2 5 1 0
3 2 2 1 2
4 4 1 3
5 0 1 4      # dummy exit
";

    #[test]
    fn parses_diamond_keeping_dummies() {
        let mut rng = StdRng::seed_from_u64(0);
        let dag = parse_stg(DIAMOND, &uniform(), false, &mut rng).unwrap();
        assert_eq!(dag.len(), 6);
        // Zero-time dummies clamp to runtime 1.
        assert_eq!(dag.task(TaskId::new(0)).runtime(), 1);
        assert_eq!(dag.task(TaskId::new(5)).runtime(), 1);
        // CP: 1 + 5 + 2 + 4 + 1 = 13.
        assert_eq!(dag.critical_path_length(), 13);
    }

    #[test]
    fn drops_dummy_entry_and_exit() {
        let mut rng = StdRng::seed_from_u64(0);
        let dag = parse_stg(DIAMOND, &uniform(), true, &mut rng).unwrap();
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.sources().len(), 2); // tasks 1 and 2
        assert_eq!(dag.sinks().len(), 1); // task 4
        assert_eq!(dag.critical_path_length(), 11);
        assert_eq!(dag.task(TaskId::new(0)).name(), Some("stg-1"));
    }

    #[test]
    fn normal_demand_model_respects_bounds() {
        let model = DemandModel::Normal {
            dims: 2,
            mean: 0.4,
            std_dev: 0.3,
            min: 0.1,
            max: 0.9,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let dag = parse_stg(DIAMOND, &model, false, &mut rng).unwrap();
        for t in dag.tasks() {
            for r in 0..2 {
                assert!((0.1..=0.9).contains(&t.demand()[r]));
            }
        }
    }

    #[test]
    fn rejects_malformed_input() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            parse_stg("", &uniform(), false, &mut rng).unwrap_err(),
            StgError::MissingHeader
        );
        assert_eq!(
            parse_stg("two\n", &uniform(), false, &mut rng).unwrap_err(),
            StgError::MissingHeader
        );
        assert_eq!(
            parse_stg("2\n0 1 0\n", &uniform(), false, &mut rng).unwrap_err(),
            StgError::TruncatedFile
        );
        assert_eq!(
            parse_stg("1\n0 1\n", &uniform(), false, &mut rng).unwrap_err(),
            StgError::BadTaskLine { line: 2 }
        );
        assert_eq!(
            parse_stg("1\n5 1 0\n", &uniform(), false, &mut rng).unwrap_err(),
            StgError::BadTaskId { line: 2 }
        );
        // Predecessor count disagrees with the listed ids.
        assert_eq!(
            parse_stg("2\n0 1 0\n1 1 2 0\n", &uniform(), false, &mut rng).unwrap_err(),
            StgError::BadTaskLine { line: 3 }
        );
        // Predecessor id out of range.
        assert_eq!(
            parse_stg("2\n0 1 0\n1 1 1 7\n", &uniform(), false, &mut rng).unwrap_err(),
            StgError::BadTaskLine { line: 3 }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# header comment\n2\n\n0 2 0  # entry\n1 3 1 0\n";
        let mut rng = StdRng::seed_from_u64(0);
        let dag = parse_stg(text, &uniform(), false, &mut rng).unwrap();
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.edges().len(), 1);
    }

    #[test]
    fn parsed_graph_is_schedulable() {
        use crate::analysis::GraphFeatures;
        let mut rng = StdRng::seed_from_u64(3);
        let dag = parse_stg(DIAMOND, &uniform(), true, &mut rng).unwrap();
        let f = GraphFeatures::compute(&dag);
        assert!(f.critical_path() > 0);
        // Every retained task got a demand of the model's dimensionality.
        assert_eq!(dag.dims(), 2);
    }
}
