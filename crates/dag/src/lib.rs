//! Task-DAG model, graph analyses and workload generators for the Spear
//! scheduler.
//!
//! This crate is the foundation of the Spear reproduction: it defines the
//! *job* abstraction used everywhere else — a directed acyclic graph of
//! [`Task`]s, each with an integer runtime and a multi-dimensional
//! [`ResourceVec`] demand — together with the graph analyses the paper's
//! scheduling policies rely on ([`analysis::GraphFeatures`]: b-level,
//! t-level, b-load, critical path, child/descendant counts) and the random
//! workload generators used in the evaluation section
//! ([`generator::LayeredDagSpec`], [`generator::MapReduceSpec`]).
//!
//! # Example
//!
//! ```
//! use spear_dag::{DagBuilder, ResourceVec, Task};
//!
//! # fn main() -> Result<(), spear_dag::DagError> {
//! let mut b = DagBuilder::new(2); // two resource dimensions: CPU, memory
//! let a = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5, 0.2])));
//! let c = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.4, 0.4])));
//! b.add_edge(a, c)?;
//! let dag = b.build()?;
//! assert_eq!(dag.len(), 2);
//! assert_eq!(dag.critical_path_length(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
mod error;
pub mod generator;
mod graph;
mod resources;
pub mod stg;
mod task;
pub mod topo;

pub use error::DagError;
pub use graph::{Dag, DagBuilder, Edge};
pub use resources::{ResourceVec, FIT_EPSILON};
pub use task::{Task, TaskId};
