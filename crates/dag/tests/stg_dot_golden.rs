//! Golden tests for the STG importer and the DOT exporter, over the
//! committed fixture in `tests/fixtures/`.
//!
//! The DOT golden is byte-exact: if the exporter's format changes
//! deliberately, regenerate the golden with
//! `UPDATE_GOLDEN=1 cargo test -p spear-dag --test stg_dot_golden`.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear_cluster::SpearError;
use spear_dag::stg::{parse_stg, DemandModel, StgError};
use spear_dag::{dot, Dag, ResourceVec, TaskId};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).expect("fixture readable")
}

/// Uniform demands keep the parse deterministic without consuming RNG, so
/// the DOT golden is stable byte-for-byte.
fn uniform() -> DemandModel {
    DemandModel::Uniform(ResourceVec::from_slice(&[0.5, 0.25]))
}

fn parse_fixture(drop_dummies: bool) -> Dag {
    let mut rng = StdRng::seed_from_u64(0);
    parse_stg(
        &fixture("fork_join.stg"),
        &uniform(),
        drop_dummies,
        &mut rng,
    )
    .expect("fixture parses")
}

#[test]
fn fixture_parses_with_expected_structure() {
    let dag = parse_fixture(false);
    assert_eq!(dag.len(), 9);
    assert_eq!(dag.dims(), 2);
    // Dummies clamp to runtime 1; the longest chain is entry 1 + map C 5 +
    // shuffle BC 6 + reduce 8 + commit 2 + exit 1 = 23.
    assert_eq!(dag.critical_path_length(), 23);
    assert_eq!(dag.sources().len(), 1);
    assert_eq!(dag.sinks().len(), 1);
    assert_eq!(dag.task(TaskId::new(1)).name(), Some("stg-1"));

    let dropped = parse_fixture(true);
    assert_eq!(dropped.len(), 7);
    assert_eq!(dropped.sources().len(), 3); // the three maps
    assert_eq!(dropped.sinks().len(), 1); // commit
    assert_eq!(dropped.critical_path_length(), 21);
}

#[test]
fn dot_export_matches_committed_golden() {
    let rendered = dot::to_dot(&parse_fixture(true));
    let golden_path = fixture_path("fork_join.dot");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("golden writable");
    }
    let golden = fixture("fork_join.dot");
    assert_eq!(
        rendered, golden,
        "DOT output drifted from tests/fixtures/fork_join.dot; \
         regenerate with UPDATE_GOLDEN=1 if the change is deliberate"
    );
}

#[test]
fn parsed_fixture_round_trips_through_serde() {
    let dag = parse_fixture(false);
    let json = serde_json::to_string(&dag).expect("serializes");
    let back: Dag = serde_json::from_str(&json).expect("round-trips");
    assert_eq!(dag, back);
    // And the round-tripped DAG renders identical DOT.
    assert_eq!(dot::to_dot(&dag), dot::to_dot(&back));
}

/// The importer reports malformed input as typed errors that convert into
/// the workspace [`SpearError`] — callers using `?` get no panics.
#[test]
fn malformed_inputs_surface_as_spear_errors() {
    fn parse_as_spear(text: &str) -> Result<Dag, SpearError> {
        let mut rng = StdRng::seed_from_u64(0);
        Ok(parse_stg(text, &uniform(), false, &mut rng)?)
    }

    let cases: &[(&str, StgError)] = &[
        ("", StgError::MissingHeader),
        ("not-a-number\n", StgError::MissingHeader),
        ("3\n0 1 0\n", StgError::TruncatedFile),
        ("1\n0 1\n", StgError::BadTaskLine { line: 2 }),
        ("1\n0 1 0 9\n", StgError::BadTaskLine { line: 2 }),
        ("1\n3 1 0\n", StgError::BadTaskId { line: 2 }),
        ("2\n0 1 0\n0 1 0\n", StgError::BadTaskId { line: 3 }),
        ("2\n0 1 0\n1 1 1 9\n", StgError::BadTaskLine { line: 3 }),
    ];
    for (text, want) in cases {
        match parse_as_spear(text) {
            Err(SpearError::Stg(got)) => assert_eq!(&got, want, "input {text:?}"),
            other => panic!("input {text:?}: expected Stg error, got {other:?}"),
        }
    }

    // A cyclic graph (task depending on itself) is a graph-level error.
    let mut rng = StdRng::seed_from_u64(0);
    let err = parse_stg("1\n0 1 1 0\n", &uniform(), false, &mut rng).unwrap_err();
    assert!(matches!(err, StgError::Graph(_)), "got {err:?}");
    // Display chains are human-readable (used verbatim by the CLI).
    assert!(err.to_string().contains("invalid graph"));
}

#[test]
fn dropping_dummies_from_an_all_dummy_graph_errors_cleanly() {
    let mut rng = StdRng::seed_from_u64(0);
    let err = parse_stg("1\n0 0 0\n", &uniform(), true, &mut rng).unwrap_err();
    assert!(matches!(err, StgError::Graph(_)), "got {err:?}");
}
