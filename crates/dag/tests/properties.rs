//! Property-based tests for the DAG crate: generator invariants and graph
//! analysis identities that must hold on *every* random graph.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use spear_dag::analysis::{self, GraphFeatures};
use spear_dag::generator::LayeredDagSpec;
use spear_dag::{topo, Dag, ResourceVec};

fn arb_spec() -> impl Strategy<Value = LayeredDagSpec> {
    (2usize..60, 1usize..4, 0usize..4, 1u64..25, 0.0f64..0.6).prop_map(
        |(num_tasks, min_width, extra_width, max_runtime, extra_edge_prob)| LayeredDagSpec {
            num_tasks,
            min_width,
            max_width: min_width + extra_width,
            dims: 2,
            runtime_mean: max_runtime as f64 / 2.0,
            runtime_std: max_runtime as f64 / 4.0,
            max_runtime,
            demand_mean: 0.4,
            demand_std: 0.25,
            min_demand: 0.01,
            max_demand: 1.0,
            extra_edge_prob,
        },
    )
}

fn generate(spec: &LayeredDagSpec, seed: u64) -> Dag {
    spec.generate(&mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator must honour its task count, runtime clip and demand
    /// clip on every sample.
    #[test]
    fn generator_honours_spec(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        prop_assert_eq!(dag.len(), spec.num_tasks);
        for t in dag.tasks() {
            prop_assert!(t.runtime() >= 1);
            prop_assert!(t.runtime() <= spec.max_runtime.max(1));
            for r in 0..dag.dims() {
                prop_assert!(t.demand()[r] >= spec.min_demand - 1e-12);
                prop_assert!(t.demand()[r] <= spec.max_demand + 1e-12);
            }
        }
    }

    /// Width bound: every level holds at most `max_width` tasks.
    #[test]
    fn generator_respects_width(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        prop_assert!(topo::width(&dag) <= spec.max_width);
    }

    /// A generated graph is acyclic by construction: the topological order
    /// covers all tasks and respects every edge.
    #[test]
    fn topological_order_is_consistent(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let order = dag.topological_order();
        prop_assert_eq!(order.len(), dag.len());
        let mut pos = vec![usize::MAX; dag.len()];
        for (i, &t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for e in dag.edges() {
            prop_assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    /// b-level decreases along edges by at least the successor contribution:
    /// bl(u) >= runtime(u) + bl(v) for every edge u->v, with equality for
    /// the maximal child.
    #[test]
    fn b_level_edge_monotonicity(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let bl = analysis::b_levels(&dag);
        for e in dag.edges() {
            prop_assert!(
                bl[e.from.index()] >= dag.task(e.from).runtime() + bl[e.to.index()]
            );
        }
        for v in dag.task_ids() {
            let best = dag.children(v).iter().map(|c| bl[c.index()]).max().unwrap_or(0);
            prop_assert_eq!(bl[v.index()], dag.task(v).runtime() + best);
        }
    }

    /// t-level + b-level never exceeds the critical path, and the maximum
    /// over tasks reaches it exactly.
    #[test]
    fn t_plus_b_level_bounded_by_critical_path(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let bl = analysis::b_levels(&dag);
        let tl = analysis::t_levels(&dag);
        let cp = dag.critical_path_length();
        let mut max_sum = 0;
        for i in 0..dag.len() {
            prop_assert!(tl[i] + bl[i] <= cp);
            max_sum = max_sum.max(tl[i] + bl[i]);
        }
        prop_assert_eq!(max_sum, cp);
    }

    /// b-load is monotone along edges and bounded below by the task's own
    /// load in every dimension.
    #[test]
    fn b_load_monotonicity(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let loads = analysis::b_loads(&dag);
        for (r, load_r) in loads.iter().enumerate() {
            for v in dag.task_ids() {
                prop_assert!(load_r[v.index()] >= dag.task(v).load(r) - 1e-9);
            }
            for e in dag.edges() {
                prop_assert!(
                    load_r[e.from.index()]
                        >= dag.task(e.from).load(r) + load_r[e.to.index()] - 1e-9
                );
            }
        }
    }

    /// The extracted critical path is a real path whose total runtime equals
    /// the critical-path length.
    #[test]
    fn critical_path_is_a_real_path(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let path = analysis::critical_path_tasks(&dag);
        prop_assert!(!path.is_empty());
        for w in path.windows(2) {
            prop_assert!(dag.children(w[0]).contains(&w[1]));
        }
        let total: u64 = path.iter().map(|&t| dag.task(t).runtime()).sum();
        prop_assert_eq!(total, dag.critical_path_length());
    }

    /// The makespan lower bound is at least as large as both the
    /// critical-path bound and the per-dimension load bound.
    #[test]
    fn lower_bound_dominates_components(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let cap = ResourceVec::from_slice(&[1.0, 1.0]);
        let lb = dag.makespan_lower_bound(&cap);
        prop_assert!(lb >= dag.critical_path_length());
        for r in 0..2 {
            let load: f64 = dag.tasks().iter().map(|t| t.runtime() as f64 * t.demand()[r]).sum();
            prop_assert!(lb as f64 >= load.floor());
        }
    }

    /// ReadyTracker processes every task exactly once when driven in
    /// topological order.
    #[test]
    fn ready_tracker_full_walk(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let mut tracker = topo::ReadyTracker::new(&dag);
        let mut done = 0;
        for &t in dag.topological_order() {
            prop_assert!(tracker.ready().contains(&t));
            tracker.take(t);
            tracker.complete(&dag, t);
            done += 1;
        }
        prop_assert_eq!(done, dag.len());
        prop_assert!(tracker.all_done(&dag));
        prop_assert!(tracker.ready().is_empty());
    }

    /// GraphFeatures aggregates are consistent with the raw analyses.
    #[test]
    fn graph_features_consistency(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let f = GraphFeatures::compute(&dag);
        let bl = analysis::b_levels(&dag);
        prop_assert_eq!(f.critical_path(), bl.iter().copied().max().unwrap());
        for t in dag.task_ids() {
            prop_assert_eq!(f.task(t).b_level, bl[t.index()]);
            prop_assert_eq!(f.task(t).children, dag.children(t).len());
        }
    }

    /// Serde round-trip preserves the structure exactly and demands up to
    /// one JSON float ulp.
    #[test]
    fn serde_roundtrip(spec in arb_spec(), seed in any::<u64>()) {
        let dag = generate(&spec, seed);
        let json = serde_json::to_string(&dag).unwrap();
        let back: Dag = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(dag.len(), back.len());
        prop_assert_eq!(dag.edges(), back.edges());
        prop_assert_eq!(dag.topological_order(), back.topological_order());
        for (a, b) in dag.tasks().iter().zip(back.tasks()) {
            prop_assert_eq!(a.runtime(), b.runtime());
            for r in 0..dag.dims() {
                prop_assert!((a.demand()[r] - b.demand()[r]).abs() < 1e-12);
            }
        }
    }
}
