//! Property tests for the neural-network crate: softmax invariants,
//! gradient-check on random architectures, and optimizer sanity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use spear_nn::{loss, softmax, softmax_masked, Matrix, Mlp, MlpConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax always returns a probability distribution.
    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f64..50.0, 1..20)) {
        let p = softmax(&logits);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Softmax is shift-invariant.
    #[test]
    fn softmax_shift_invariance(
        logits in prop::collection::vec(-10.0f64..10.0, 1..10),
        shift in -100.0f64..100.0,
    ) {
        let a = softmax(&logits);
        let shifted: Vec<f64> = logits.iter().map(|l| l + shift).collect();
        let b = softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Masked softmax puts zero mass on illegal entries and renormalizes.
    #[test]
    fn masked_softmax_distribution(
        pairs in prop::collection::vec((-20.0f64..20.0, any::<bool>()), 1..15),
    ) {
        let logits: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        let mut mask: Vec<bool> = pairs.iter().map(|(_, m)| *m).collect();
        if !mask.iter().any(|&m| m) {
            mask[0] = true;
        }
        let p = softmax_masked(&logits, &mask);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (prob, &legal) in p.iter().zip(&mask) {
            if !legal {
                prop_assert_eq!(*prob, 0.0);
            }
        }
    }

    /// Cross-entropy gradients match finite differences on random small
    /// networks and inputs.
    #[test]
    fn network_gradient_check(
        seed in any::<u64>(),
        input_dim in 2usize..6,
        hidden in 2usize..8,
        classes in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(MlpConfig::new(input_dim, &[hidden], classes), &mut rng);
        let x = Matrix::from_fn(2, input_dim, |r, c| ((r * 7 + c * 3 + seed as usize) % 10) as f64 / 10.0 - 0.4);
        let targets = [0usize, classes - 1];

        let logits = net.forward(&x);
        let (_, d) = loss::softmax_cross_entropy(&logits, &targets, None);
        net.zero_grad();
        net.backward(&d);

        let eval = |net: &mut Mlp| {
            let logits = net.forward(&x);
            loss::softmax_cross_entropy(&logits, &targets, None).0
        };
        let eps = 1e-6;
        // Check a sample of weight entries in each layer.
        for li in 0..net.layers().len() {
            let n = net.layers()[li].weights().as_slice().len();
            for idx in (0..n).step_by(n.div_ceil(4)) {
                let mut plus = net.clone();
                plus.layers_mut()[li].weights_mut().as_mut_slice()[idx] += eps;
                let mut minus = net.clone();
                minus.layers_mut()[li].weights_mut().as_mut_slice()[idx] -= eps;
                let numeric = (eval(&mut plus) - eval(&mut minus)) / (2.0 * eps);
                let analytic = net.layers()[li].grad_weights().as_slice()[idx];
                prop_assert!(
                    (numeric - analytic).abs() < 1e-4 * (1.0 + analytic.abs()),
                    "layer {} dW[{}]: numeric {} vs analytic {}", li, idx, numeric, analytic
                );
            }
        }
    }

    /// Save/load round-trips preserve network outputs bit-for-bit (weights
    /// survive JSON because serde_json serializes f64 with enough digits
    /// to reproduce the value to within an ulp).
    #[test]
    fn save_load_outputs_match(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Mlp::new(MlpConfig::new(4, &[6, 5], 3), &mut rng);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let mut loaded = Mlp::load(buf.as_slice()).unwrap();
        let x = [0.25, -0.5, 0.75, -1.0];
        let a = net.forward_one(&x);
        let b = loaded.forward_one(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9);
        }
    }

    /// The policy gradient is zero exactly when all advantages are zero.
    #[test]
    fn policy_gradient_zero_iff_zero_advantage(
        logits in prop::collection::vec(-5.0f64..5.0, 4),
        advantage in -3.0f64..3.0,
    ) {
        let m = Matrix::from_vec(1, 4, logits);
        let masks = vec![vec![true; 4]];
        let d = loss::policy_gradient(&m, &[1], &[advantage], &masks, 1.0);
        let all_zero = d.as_slice().iter().all(|&v| v.abs() < 1e-15);
        prop_assert_eq!(all_zero, advantage == 0.0);
    }
}

/// A Tanh-activation network also trains (the activation enum is not
/// ReLU-only).
#[test]
fn tanh_network_learns() {
    use rand::SeedableRng;
    use spear_nn::{loss, Activation, Matrix, Mlp, MlpConfig, Optimizer, RmsProp};
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut config = MlpConfig::new(2, &[12], 2);
    config.activation = Activation::Tanh;
    let mut net = Mlp::new(config, &mut rng);
    let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
    let y = [1usize, 0];
    let mut opt = RmsProp::new(1e-2, 0.9, 1e-9);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..200 {
        let logits = net.forward(&x);
        let (l, d) = loss::softmax_cross_entropy(&logits, &y, None);
        net.zero_grad();
        net.backward(&d);
        opt.step(&mut net);
        net.zero_grad();
        first.get_or_insert(l);
        last = l;
    }
    assert!(last < first.unwrap() / 2.0, "{first:?} -> {last}");
}
