//! Dense (fully connected) layers with manual backprop.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Activation, Matrix};

/// A dense layer `a = act(x · W + b)` with gradient accumulators.
///
/// `W` has shape `in × out`; inputs are batches of shape `batch × in`.
/// The layer caches its last input and post-activation output during
/// [`Dense::forward`] so [`Dense::backward`] can compute exact gradients.
/// Gradients *accumulate* across backward calls until [`Dense::zero_grad`],
/// which is what mini-batch REINFORCE needs (many trajectories contribute
/// to one update).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
    #[serde(skip)]
    cache_input: Option<Matrix>,
    #[serde(skip)]
    cache_output: Option<Matrix>,
}

impl Dense {
    /// Creates a layer with He-style initialization (`N(0, 2/fan_in)`),
    /// appropriate for the ReLU networks the paper uses. Biases start at
    /// zero.
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        output: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let std = (2.0 / input as f64).sqrt();
        let weights = Matrix::from_fn(input, output, |_, _| {
            // Box–Muller normal sample.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        });
        Dense {
            grad_weights: Matrix::zeros(input, output),
            grad_bias: vec![0.0; output],
            weights,
            bias: vec![0.0; output],
            activation,
            cache_input: None,
            cache_output: None,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weights.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable view of the weights (used by the optimizer and tests).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Immutable view of the bias.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable view of the bias.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }

    /// Accumulated weight gradient.
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_weights
    }

    /// Accumulated bias gradient.
    pub fn grad_bias(&self) -> &[f64] {
        &self.grad_bias
    }

    /// Fused bias+activation epilogue: one pass over the matmul output
    /// computing `act(z + b)` per element, instead of a bias walk followed
    /// by an activation walk. Per element this performs the same `f64`
    /// add then the same activation op in the same order, so it is
    /// bit-identical to `add_row_broadcast` + `forward_inplace`.
    fn bias_activate(&self, z: &mut Matrix) {
        let n = self.weights.cols();
        for row in z.as_mut_slice().chunks_exact_mut(n) {
            for (v, &b) in row.iter_mut().zip(&self.bias) {
                *v = self.activation.apply(*v + b);
            }
        }
    }

    /// Forward pass for a batch; caches activations for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim()`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.weights);
        self.bias_activate(&mut z);
        self.cache_input = Some(x.clone());
        self.cache_output = Some(z.clone());
        z
    }

    /// Inference-only forward pass: no activation caching (so no `backward`
    /// afterwards), no clones. Same floating-point operations as
    /// [`Dense::forward`], hence bit-identical outputs.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim()`.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.weights);
        self.bias_activate(&mut z);
        z
    }

    /// [`Dense::infer`] into a caller-owned matrix: reuses `out`'s
    /// allocation via [`Matrix::matmul_into`], then applies the fused
    /// bias+activation epilogue in place. Bit-identical to [`Dense::infer`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim()`.
    pub fn infer_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weights, out);
        self.bias_activate(out);
    }

    /// Single-example inference into a caller-owned buffer: computes
    /// `act(x · W + b)` without touching the heap. The accumulation order
    /// (k ascending per output, zero inputs skipped, bias added after the
    /// products) matches [`Matrix::matmul`] + bias broadcast exactly, so
    /// the result is bit-identical to [`Dense::forward`] on a 1-row batch.
    ///
    /// Two kernels, selected by output width (both memory-bound on the
    /// weight stream, so the goal is to touch as few weight rows as
    /// possible and keep each touched row a single contiguous sweep):
    ///
    /// * **Wide outputs** (`n > 16`, the hidden layers): the *nonzero*
    ///   inputs select which weight rows are touched, and the touched
    ///   rows are folded four per pass over the accumulator row (adds
    ///   k-ascending, so identical to one pass per row). The featurized
    ///   input is sparse (empty slots,
    ///   unoccupied image pixels) and so are ReLU hidden activations, so
    ///   most weight rows are never loaded at all. The nonzeros are first
    ///   compacted **branchlessly** into a stack block (unconditional
    ///   write, conditional increment): a per-input `if a == 0.0` branch
    ///   would be near-random on real activations and every mispredict
    ///   costs more than a compaction step — a tax invisible in
    ///   microbenchmarks that replay one input (the predictor memorizes
    ///   the pattern) but dominant in situ where each call sees a fresh
    ///   pattern. Skipping a zero input is bit-identical to folding it
    ///   in: with finite weights, `0.0 * w` is `±0.0`, and adding `±0.0`
    ///   to an accumulator that is never `-0.0` (an ascending chain
    ///   seeded with `+0.0` cannot produce `-0.0`) returns the
    ///   accumulator unchanged.
    /// * **Narrow outputs** (`n <= 16`, the logit layer): per-row loop
    ///   overhead would dominate a 2-vector-wide sweep, so the input is
    ///   consumed in unconditional quads — one pass over the output row
    ///   folds in four weight rows, with the adds still in k-ascending
    ///   order, bit-identical to four separate passes.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != input_dim()`.
    pub fn forward_one_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.input_dim(), "input width mismatch");
        let n = self.output_dim();
        out.clear();
        out.resize(n, 0.0);
        let w = self.weights.as_slice();
        if n > 16 {
            // Blocked so the compaction buffers stay small and on the
            // stack regardless of input width; processing blocks in
            // order keeps the accumulation k-ascending.
            const BLOCK: usize = 512;
            let mut idx = [0u32; BLOCK];
            let mut val = [0.0f64; BLOCK];
            for (block, chunk) in x.chunks(BLOCK).enumerate() {
                let base = block * BLOCK;
                let mut nnz = 0usize;
                for (k, &a) in chunk.iter().enumerate() {
                    idx[nnz] = (base + k) as u32;
                    val[nnz] = a;
                    nnz += usize::from(a != 0.0);
                }
                // Fold four compacted rows per pass over `out`: the
                // read-modify-write traffic on the accumulator row drops
                // 4x, and the per-output add chain stays k-ascending —
                // bit-identical to four separate single-row passes.
                let mut i = 0usize;
                while i + 4 <= nnz {
                    let (k0, k1, k2, k3) = (
                        idx[i] as usize,
                        idx[i + 1] as usize,
                        idx[i + 2] as usize,
                        idx[i + 3] as usize,
                    );
                    let (a0, a1, a2, a3) = (val[i], val[i + 1], val[i + 2], val[i + 3]);
                    let r0 = &w[k0 * n..k0 * n + n];
                    let r1 = &w[k1 * n..k1 * n + n];
                    let r2 = &w[k2 * n..k2 * n + n];
                    let r3 = &w[k3 * n..k3 * n + n];
                    for (j, cv) in out.iter_mut().enumerate() {
                        let mut acc = *cv;
                        acc += a0 * r0[j];
                        acc += a1 * r1[j];
                        acc += a2 * r2[j];
                        acc += a3 * r3[j];
                        *cv = acc;
                    }
                    i += 4;
                }
                for (&k, &a) in idx[i..nnz].iter().zip(&val[i..nnz]) {
                    let k = k as usize;
                    for (cv, &wv) in out.iter_mut().zip(&w[k * n..(k + 1) * n]) {
                        *cv += a * wv;
                    }
                }
            }
        } else {
            let mut k = 0;
            while k + 4 <= x.len() {
                let (a0, a1, a2, a3) = (x[k], x[k + 1], x[k + 2], x[k + 3]);
                let (r0, rest) = w[k * n..(k + 4) * n].split_at(n);
                let (r1, rest) = rest.split_at(n);
                let (r2, r3) = rest.split_at(n);
                for (j, cv) in out.iter_mut().enumerate() {
                    let mut acc = *cv;
                    acc += a0 * r0[j];
                    acc += a1 * r1[j];
                    acc += a2 * r2[j];
                    acc += a3 * r3[j];
                    *cv = acc;
                }
                k += 4;
            }
            for (kk, &a) in x.iter().enumerate().skip(k) {
                if a == 0.0 {
                    continue;
                }
                for (cv, &wv) in out.iter_mut().zip(&w[kk * n..(kk + 1) * n]) {
                    *cv += a * wv;
                }
            }
        }
        // Fused epilogue: act(z + b) in one walk, same per-element ops as
        // the separate bias and activation passes.
        for (cv, &b) in out.iter_mut().zip(&self.bias) {
            *cv = self.activation.apply(*cv + b);
        }
    }

    /// Backward pass: given `d_out = ∂L/∂a`, accumulates `∂L/∂W`, `∂L/∂b`
    /// and returns `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::forward`].
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let x = self
            .cache_input
            .as_ref()
            .expect("backward requires a prior forward pass");
        let a = self
            .cache_output
            .as_ref()
            .expect("backward requires a prior forward pass");
        let mut dz = d_out.clone();
        self.activation.backward_inplace(a, &mut dz);
        // dW = x^T · dz ; db = column sums of dz ; dx = dz · W^T.
        self.grad_weights.add_scaled(&x.transpose_matmul(&dz), 1.0);
        for (g, s) in self.grad_bias.iter_mut().zip(dz.column_sums()) {
            *g += s;
        }
        dz.matmul_transpose(&self.weights)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weights.fill_zero();
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Scales accumulated gradients (e.g. dividing by batch size).
    pub fn scale_grad(&mut self, factor: f64) {
        self.grad_weights.map_inplace(|v| v * factor);
        self.grad_bias.iter_mut().for_each(|g| *g *= factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, Activation::Identity, &mut rng);
        layer.bias_mut().copy_from_slice(&[1.0, -1.0]);
        let x = Matrix::zeros(4, 3);
        let out = layer.forward(&x);
        assert_eq!(out.rows(), 4);
        assert_eq!(out.cols(), 2);
        // Zero input ⇒ output equals bias.
        for r in 0..4 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let d = Matrix::from_rows(&[&[1.0, 1.0]]);
        layer.forward(&x);
        layer.backward(&d);
        let g1 = layer.grad_weights().clone();
        layer.forward(&x);
        layer.backward(&d);
        let g2 = layer.grad_weights().clone();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
        layer.zero_grad();
        assert!(layer.grad_weights().as_slice().iter().all(|&v| v == 0.0));
        assert!(layer.grad_bias().iter().all(|&v| v == 0.0));
    }

    /// Finite-difference check of dW, db, dx for a single dense layer with
    /// ReLU, using loss L = sum(a).
    #[test]
    fn finite_difference_gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(3, 2, Activation::Relu, &mut rng);
        let x = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[1.0, 0.2, -0.7]]);
        let eps = 1e-6;

        let loss =
            |layer: &mut Dense, x: &Matrix| -> f64 { layer.forward(x).as_slice().iter().sum() };

        let base = loss(&mut layer, &x);
        let _ = base;
        // Analytic gradients with dL/da = 1 everywhere.
        layer.forward(&x);
        let ones = Matrix::from_fn(2, 2, |_, _| 1.0);
        let dx = layer.backward(&ones);

        // dW check.
        for idx in 0..6 {
            let mut plus = layer.clone();
            plus.weights_mut().as_mut_slice()[idx] += eps;
            let mut minus = layer.clone();
            minus.weights_mut().as_mut_slice()[idx] -= eps;
            let numeric = (loss(&mut plus, &x) - loss(&mut minus, &x)) / (2.0 * eps);
            let analytic = layer.grad_weights().as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "dW[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // db check.
        for idx in 0..2 {
            let mut plus = layer.clone();
            plus.bias_mut()[idx] += eps;
            let mut minus = layer.clone();
            minus.bias_mut()[idx] -= eps;
            let numeric = (loss(&mut plus, &x) - loss(&mut minus, &x)) / (2.0 * eps);
            let analytic = layer.grad_bias()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "db[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // dx check.
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let mut l = layer.clone();
            let numeric = (loss(&mut l, &xp) - loss(&mut l, &xm)) / (2.0 * eps);
            let analytic = dx.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "dx[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// The single-example kernels must stay bit-identical to the batch
    /// path across unroll boundaries (lengths not divisible by 4), sparse
    /// inputs (zeros inside and outside full quads — exercising both the
    /// zero-skip and the fold-the-zero-through paths), and both output
    /// widths (narrow quad kernel and wide row-pass kernel).
    #[test]
    fn forward_one_into_unroll_matches_batch_path_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for input in [1usize, 3, 4, 5, 7, 8, 11, 16] {
            for output in [3usize, 16, 17, 33] {
                for act in [Activation::Relu, Activation::Identity, Activation::Tanh] {
                    let layer = Dense::new(input, output, act, &mut rng);
                    let x: Vec<f64> = (0..input)
                        .map(|i| {
                            // Scatter exact zeros through the input so the
                            // sparse handling of both kernels runs.
                            if i % 3 == 0 {
                                0.0
                            } else {
                                (i as f64) * 0.37 - 1.0
                            }
                        })
                        .collect();
                    let batch = layer.infer(&Matrix::from_rows(&[&x]));
                    let mut one = Vec::new();
                    layer.forward_one_into(&x, &mut one);
                    for (a, b) in one.iter().zip(batch.row(0)) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "input={input} output={output} act={act:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "backward requires a prior forward pass")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn scale_grad_divides_batch() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        layer.forward(&x);
        layer.backward(&Matrix::from_rows(&[&[2.0]]));
        let before = layer.grad_bias()[0];
        layer.scale_grad(0.5);
        assert!((layer.grad_bias()[0] - before / 2.0).abs() < 1e-12);
    }
}
