//! The multi-layer perceptron.

use std::io::{Read, Write};
use std::path::Path;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Activation, Dense, Matrix};

/// Architecture of an [`Mlp`]: input width, hidden widths and output width.
///
/// The paper's policy network is `MlpConfig::new(input, &[256, 32, 32],
/// actions)` with ReLU hidden activations and raw logits out (softmax is
/// applied by the loss / the policy sampler, which keeps masking exact).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature count.
    pub input: usize,
    /// Hidden layer widths, in order.
    pub hidden: Vec<usize>,
    /// Output (logit) count.
    pub output: usize,
    /// Hidden activation (ReLU by default).
    pub activation: Activation,
}

impl MlpConfig {
    /// Creates a config with ReLU hidden layers.
    pub fn new(input: usize, hidden: &[usize], output: usize) -> Self {
        MlpConfig {
            input,
            hidden: hidden.to_vec(),
            output,
            activation: Activation::Relu,
        }
    }

    /// The paper's 3-hidden-layer architecture (256/32/32).
    pub fn paper(input: usize, output: usize) -> Self {
        Self::new(input, &[256, 32, 32], output)
    }
}

/// Reusable buffers for [`Mlp::forward_one_into`]: two layer-activation
/// vectors swapped between layers. One scratch per inference site keeps the
/// hot path allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    front: Vec<f64>,
    back: Vec<f64>,
}

/// Reusable buffers for [`Mlp::forward_batch_into`]: two ping-pong
/// activation matrices that grow to `batch × widest layer` once and are
/// reused across flushes. The batched analogue of [`ForwardScratch`].
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    front: Matrix,
    back: Matrix,
}

/// A fully connected network: hidden layers with a shared activation and a
/// linear logits layer. See the [crate docs](crate) for a training example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds a randomly initialized network.
    ///
    /// # Panics
    ///
    /// Panics if any width in the config is zero.
    pub fn new<R: Rng + ?Sized>(config: MlpConfig, rng: &mut R) -> Self {
        assert!(config.input > 0 && config.output > 0, "zero-width layer");
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "zero-width hidden layer"
        );
        let mut layers = Vec::with_capacity(config.hidden.len() + 1);
        let mut prev = config.input;
        for &h in &config.hidden {
            layers.push(Dense::new(prev, h, config.activation, rng));
            prev = h;
        }
        layers.push(Dense::new(prev, config.output, Activation::Identity, rng));
        Mlp { config, layers }
    }

    /// The architecture.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// The layers, input-first.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.input_dim() * l.output_dim() + l.output_dim())
            .sum()
    }

    /// Forward pass for a batch (`batch × input`), returning logits
    /// (`batch × output`). Caches activations for [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the input width disagrees with the config.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.config.input, "input width mismatch");
        let mut a = x.clone();
        for layer in &mut self.layers {
            a = layer.forward(&a);
        }
        a
    }

    /// Convenience forward for one example.
    pub fn forward_one(&mut self, features: &[f64]) -> Vec<f64> {
        let logits = self.forward(&Matrix::row_vector(features));
        logits.row(0).to_vec()
    }

    /// Inference-only batch forward: a single matrix-matrix pass per layer
    /// with no activation caching (and so no [`Mlp::backward`] afterwards)
    /// and no cache clones. Logits are bit-identical to [`Mlp::forward`].
    ///
    /// # Panics
    ///
    /// Panics if the input width disagrees with the config.
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.config.input, "input width mismatch");
        let mut a = self.layers[0].infer(x);
        for layer in &self.layers[1..] {
            a = layer.infer(&a);
        }
        a
    }

    /// Inference-only batch forward through reusable ping-pong matrices:
    /// one matrix-matrix pass per layer, zero heap allocations once the
    /// scratch reaches steady-state capacity. This is the entry the MCTS
    /// leaf batcher flushes through — one call per flush instead of one
    /// [`Mlp::forward_one_into`] per leaf. Each weight matrix is streamed
    /// from memory once per *flush* rather than once per *row*, which is
    /// where the batching win comes from on a memory-bound net.
    ///
    /// Per output element the accumulation order (k ascending, zero inputs
    /// skipped, bias added after the products) is exactly that of the
    /// single-row path, so row `i` of the result is bit-identical to
    /// `forward_one_into(x.row(i))` — caches can mix batch-produced and
    /// single-produced entries without divergence.
    ///
    /// Returns the `batch × output` logits matrix borrowed from the
    /// scratch.
    ///
    /// # Panics
    ///
    /// Panics if the input width disagrees with the config.
    pub fn forward_batch_into<'s>(&self, x: &Matrix, scratch: &'s mut BatchScratch) -> &'s Matrix {
        assert_eq!(x.cols(), self.config.input, "input width mismatch");
        let (first, rest) = self
            .layers
            .split_first()
            .expect("an MLP always has a logits layer");
        first.infer_into(x, &mut scratch.front);
        for layer in rest {
            layer.infer_into(&scratch.front, &mut scratch.back);
            std::mem::swap(&mut scratch.front, &mut scratch.back);
        }
        &scratch.front
    }

    /// Single-example inference through reusable ping-pong buffers: zero
    /// heap allocations in steady state (the scratch grows to the widest
    /// layer once and is reused). Returns the logits as a slice borrowed
    /// from the scratch. Bit-identical to [`Mlp::forward_one`].
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` disagrees with the config.
    pub fn forward_one_into<'s>(
        &self,
        features: &[f64],
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        assert_eq!(features.len(), self.config.input, "input width mismatch");
        let (first, rest) = self
            .layers
            .split_first()
            .expect("an MLP always has a logits layer");
        first.forward_one_into(features, &mut scratch.front);
        for layer in rest {
            layer.forward_one_into(&scratch.front, &mut scratch.back);
            std::mem::swap(&mut scratch.front, &mut scratch.back);
        }
        &scratch.front
    }

    /// Backward pass from `d_logits = ∂L/∂logits`, accumulating gradients
    /// in every layer. Returns `∂L/∂x` (rarely needed, but exposed for
    /// gradient checks).
    ///
    /// # Panics
    ///
    /// Panics if called before [`Mlp::forward`].
    pub fn backward(&mut self, d_logits: &Matrix) -> Matrix {
        let mut d = d_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }

    /// Clears every layer's gradient accumulator.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Scales every accumulated gradient (e.g. `1/batch`).
    pub fn scale_grad(&mut self, factor: f64) {
        for layer in &mut self.layers {
            layer.scale_grad(factor);
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| {
                l.grad_weights().frobenius_norm().powi(2)
                    + l.grad_bias().iter().map(|g| g * g).sum::<f64>()
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Clips gradients to a maximum global norm; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale_grad(max_norm / norm);
        }
        norm
    }

    /// Serializes the network (architecture + weights) as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), Box<dyn std::error::Error>> {
        serde_json::to_writer(writer, self)?;
        Ok(())
    }

    /// Deserializes a network saved with [`Mlp::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load<R: Read>(reader: R) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(serde_json::from_reader(reader)?)
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), Box<dyn std::error::Error>> {
        let file = std::fs::File::create(path)?;
        self.save(std::io::BufWriter::new(file))
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization errors.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, Box<dyn std::error::Error>> {
        let file = std::fs::File::open(path)?;
        Self::load(std::io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Mlp {
        Mlp::new(
            MlpConfig::new(3, &[5, 4], 2),
            &mut StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn forward_shapes() {
        let mut net = small_net(0);
        let x = Matrix::zeros(7, 3);
        let y = net.forward(&x);
        assert_eq!(y.rows(), 7);
        assert_eq!(y.cols(), 2);
        assert_eq!(net.forward_one(&[0.0, 0.0, 0.0]).len(), 2);
    }

    #[test]
    fn forward_batch_is_bit_identical_to_forward() {
        let mut net = small_net(4);
        let x = Matrix::from_rows(&[
            &[0.4, -0.2, 0.9],
            &[-0.5, 0.3, 0.1],
            &[0.0, 1.0, -1.0],
            &[2.0, -2.0, 0.5],
            &[0.7, 0.0, 0.0],
        ]);
        let cached = net.forward(&x);
        let uncached = net.forward_batch(&x);
        assert_eq!(cached, uncached);
    }

    #[test]
    fn forward_one_into_is_bit_identical_to_forward_one() {
        let mut net = small_net(5);
        let mut scratch = ForwardScratch::default();
        for features in [[0.4, -0.2, 0.9], [0.0, 0.0, 0.0], [-1.5, 2.5, 0.0]] {
            let boxed = net.forward_one(&features);
            let scratched = net.forward_one_into(&features, &mut scratch);
            assert_eq!(boxed.as_slice(), scratched);
        }
    }

    #[test]
    fn forward_batch_into_is_bit_identical_to_forward_batch() {
        let net = small_net(6);
        let x = Matrix::from_rows(&[
            &[0.4, -0.2, 0.9],
            &[-0.5, 0.3, 0.1],
            &[0.0, 0.0, 0.0],
            &[2.0, -2.0, 0.5],
            &[0.7, 0.0, -0.3],
        ]);
        let mut scratch = BatchScratch::default();
        assert_eq!(
            *net.forward_batch_into(&x, &mut scratch),
            net.forward_batch(&x)
        );
        // Reused scratch, different batch size: still bit-identical.
        let y = Matrix::from_rows(&[&[1.0, 0.5, -0.5], &[0.0, 1.0, 0.0]]);
        assert_eq!(
            *net.forward_batch_into(&y, &mut scratch),
            net.forward_batch(&y)
        );
    }

    /// The contract the MCTS leaf batcher relies on: row `i` of a batched
    /// flush is bit-identical to running that row alone through the
    /// single-example scratch path, so cache entries produced by either
    /// path never diverge.
    #[test]
    fn forward_batch_into_rows_match_forward_one_into_bitwise() {
        let net = small_net(7);
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                (0..3)
                    .map(|j| {
                        // Mix of zero and nonzero features to exercise the
                        // zero-skip branches of both kernels.
                        if (i + j) % 3 == 0 {
                            0.0
                        } else {
                            (i as f64) * 0.37 - (j as f64) * 1.21
                        }
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);
        let mut batch_scratch = BatchScratch::default();
        let logits = net.forward_batch_into(&x, &mut batch_scratch);
        let mut one_scratch = ForwardScratch::default();
        for (i, row) in rows.iter().enumerate() {
            let single = net.forward_one_into(row, &mut one_scratch);
            assert_eq!(logits.row(i), single, "row {i} diverged");
        }
    }

    /// Sizes the batching win on the paper-shaped policy net; run with
    /// `cargo test --release -p spear-nn -- --ignored --nocapture`.
    #[test]
    #[ignore = "timing probe, not a check"]
    fn forward_batch_amortization_probe() {
        let net = Mlp::new(MlpConfig::paper(163, 16), &mut StdRng::seed_from_u64(0));
        let batch = 8;
        let reps = 2000;
        let rows: Vec<Vec<f64>> = (0..batch)
            .map(|i| {
                (0..163)
                    .map(|j| {
                        if (i * 7 + j) % 4 == 0 {
                            0.0
                        } else {
                            0.01 * (j as f64)
                        }
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs);

        let mut one_scratch = ForwardScratch::default();
        let t0 = std::time::Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            for row in &rows {
                sink += net.forward_one_into(row, &mut one_scratch)[0];
            }
        }
        let one_at_a_time = t0.elapsed();

        let mut batch_scratch = BatchScratch::default();
        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            sink += net.forward_batch_into(&x, &mut batch_scratch).get(0, 0);
        }
        let batched = t1.elapsed();

        eprintln!(
            "paper net, batch {batch}: one-at-a-time {:.2?} ({:.2}us/row), batched {:.2?} \
             ({:.2}us/row), amortization {:.2}x (sink {sink})",
            one_at_a_time,
            one_at_a_time.as_secs_f64() * 1e6 / (reps * batch) as f64,
            batched,
            batched.as_secs_f64() * 1e6 / (reps * batch) as f64,
            one_at_a_time.as_secs_f64() / batched.as_secs_f64(),
        );
    }

    #[test]
    fn parameter_count() {
        let net = small_net(0);
        // 3*5+5 + 5*4+4 + 4*2+2 = 20 + 24 + 10 = 54.
        assert_eq!(net.parameter_count(), 54);
    }

    #[test]
    fn paper_architecture() {
        let cfg = MlpConfig::paper(162, 16);
        assert_eq!(cfg.hidden, vec![256, 32, 32]);
        assert_eq!(cfg.activation, Activation::Relu);
    }

    /// Full-network finite-difference check with loss L = Σ logits².
    #[test]
    fn finite_difference_check_whole_network() {
        let mut net = small_net(1);
        let x = Matrix::from_rows(&[&[0.4, -0.2, 0.9], &[-0.5, 0.3, 0.1]]);

        let loss =
            |net: &mut Mlp| -> f64 { net.forward(&x).as_slice().iter().map(|v| v * v).sum() };

        // Analytic: dL/dlogits = 2·logits.
        let logits = net.forward(&x);
        let mut d = logits.clone();
        d.map_inplace(|v| 2.0 * v);
        net.zero_grad();
        net.backward(&d);

        let eps = 1e-6;
        for li in 0..net.layers().len() {
            let n_w = net.layers()[li].weights().as_slice().len();
            for idx in (0..n_w).step_by(3) {
                let mut plus = net.clone();
                plus.layers_mut()[li].weights_mut().as_mut_slice()[idx] += eps;
                let mut minus = net.clone();
                minus.layers_mut()[li].weights_mut().as_mut_slice()[idx] -= eps;
                let numeric = (loss(&mut plus) - loss(&mut minus)) / (2.0 * eps);
                let analytic = net.layers()[li].grad_weights().as_slice()[idx];
                assert!(
                    (numeric - analytic).abs() < 1e-4 * (1.0 + analytic.abs()),
                    "layer {li} dW[{idx}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut net = small_net(2);
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        let logits = net.forward(&x);
        let mut d = logits;
        d.map_inplace(|_| 10.0);
        net.backward(&d);
        let norm = net.grad_norm();
        assert!(norm > 0.0);
        let pre = net.clip_grad_norm(norm / 2.0);
        assert!((pre - norm).abs() < 1e-9);
        assert!((net.grad_norm() - norm / 2.0).abs() < 1e-6);
    }

    #[test]
    fn save_load_roundtrip_preserves_outputs() {
        let mut net = small_net(3);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let mut loaded = Mlp::load(buf.as_slice()).unwrap();
        let x = [0.1, 0.2, 0.3];
        let a = net.forward_one(&x);
        let b = loaded.forward_one(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
        assert_eq!(net.config(), loaded.config());
    }

    #[test]
    fn deterministic_init_per_seed() {
        let a = small_net(9);
        let b = small_net(9);
        assert_eq!(a.layers()[0].weights(), b.layers()[0].weights());
        let c = small_net(10);
        assert_ne!(a.layers()[0].weights(), c.layers()[0].weights());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let mut net = small_net(0);
        let _ = net.forward(&Matrix::zeros(1, 4));
    }

    #[test]
    #[should_panic(expected = "zero-width hidden layer")]
    fn rejects_zero_width() {
        let _ = Mlp::new(MlpConfig::new(3, &[0], 2), &mut StdRng::seed_from_u64(0));
    }
}
