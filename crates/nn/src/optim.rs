//! Optimizers: RMSProp (the paper's choice) and plain SGD.

use serde::{Deserialize, Serialize};

use crate::{Matrix, Mlp};

/// Applies accumulated gradients to an [`Mlp`]'s parameters.
pub trait Optimizer {
    /// Performs one update step from the network's accumulated gradients
    /// (descending the loss; gradients are *not* cleared — call
    /// [`Mlp::zero_grad`] afterwards).
    fn step(&mut self, net: &mut Mlp);
}

/// RMSProp with the paper's hyper-parameters (§IV): learning rate
/// `α = 1e-4`, decay `ρ = 0.9`, `ε = 1e-9`.
///
/// Per-parameter cache: `c ← ρ·c + (1−ρ)·g²`, update
/// `w ← w − α·g / (√c + ε)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RmsProp {
    alpha: f64,
    rho: f64,
    epsilon: f64,
    cache_weights: Vec<Matrix>,
    cache_bias: Vec<Vec<f64>>,
}

impl RmsProp {
    /// Creates RMSProp with custom hyper-parameters.
    pub fn new(alpha: f64, rho: f64, epsilon: f64) -> Self {
        RmsProp {
            alpha,
            rho,
            epsilon,
            cache_weights: Vec::new(),
            cache_bias: Vec::new(),
        }
    }

    /// The paper's exact setting: `α=1e-4, ρ=0.9, ε=1e-9`.
    pub fn default_paper() -> Self {
        Self::new(1e-4, 0.9, 1e-9)
    }

    /// Learning rate.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Overrides the learning rate (e.g. a faster supervised phase).
    pub fn set_alpha(&mut self, alpha: f64) {
        self.alpha = alpha;
    }

    fn ensure_cache(&mut self, net: &Mlp) {
        if self.cache_weights.len() == net.layers().len() {
            return;
        }
        self.cache_weights = net
            .layers()
            .iter()
            .map(|l| Matrix::zeros(l.input_dim(), l.output_dim()))
            .collect();
        self.cache_bias = net
            .layers()
            .iter()
            .map(|l| vec![0.0; l.output_dim()])
            .collect();
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, net: &mut Mlp) {
        self.ensure_cache(net);
        for (li, layer) in net.layers_mut().iter_mut().enumerate() {
            let gw = layer.grad_weights().clone();
            let cache = &mut self.cache_weights[li];
            for (i, (&g, c)) in gw
                .as_slice()
                .iter()
                .zip(cache.as_mut_slice().iter_mut())
                .enumerate()
            {
                *c = self.rho * *c + (1.0 - self.rho) * g * g;
                let w = &mut layer.weights_mut().as_mut_slice()[i];
                *w -= self.alpha * g / (c.sqrt() + self.epsilon);
            }
            let gb: Vec<f64> = layer.grad_bias().to_vec();
            let cache_b = &mut self.cache_bias[li];
            for (i, (&g, c)) in gb.iter().zip(cache_b.iter_mut()).enumerate() {
                *c = self.rho * *c + (1.0 - self.rho) * g * g;
                layer.bias_mut()[i] -= self.alpha * g / (c.sqrt() + self.epsilon);
            }
        }
    }
}

/// Plain stochastic gradient descent, kept as an ablation reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp) {
        for layer in net.layers_mut() {
            let gw = layer.grad_weights().clone();
            layer.weights_mut().add_scaled(&gw, -self.learning_rate);
            let gb: Vec<f64> = layer.grad_bias().to_vec();
            for (b, g) in layer.bias_mut().iter_mut().zip(gb) {
                *b -= self.learning_rate * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loss, Matrix, MlpConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn train_xor<O: Optimizer>(opt: &mut O, steps: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Mlp::new(MlpConfig::new(2, &[16], 2), &mut rng);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = [0usize, 1, 1, 0];
        let mut last = f64::INFINITY;
        for _ in 0..steps {
            let logits = net.forward(&x);
            let (l, d) = loss::softmax_cross_entropy(&logits, &y, None);
            net.zero_grad();
            net.backward(&d);
            net.scale_grad(1.0 / 4.0);
            opt.step(&mut net);
            last = l;
        }
        last
    }

    #[test]
    fn rmsprop_learns_xor() {
        let mut opt = RmsProp::new(1e-2, 0.9, 1e-9);
        let final_loss = train_xor(&mut opt, 500);
        assert!(final_loss < 0.1, "final loss {final_loss}");
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::new(0.5);
        let final_loss = train_xor(&mut opt, 300);
        assert!(final_loss < 0.3, "final loss {final_loss}");
    }

    #[test]
    fn paper_hyperparameters() {
        let opt = RmsProp::default_paper();
        assert_eq!(opt.alpha(), 1e-4);
    }

    #[test]
    fn rmsprop_step_changes_weights_only_with_grad() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Mlp::new(MlpConfig::new(2, &[3], 2), &mut rng);
        let snapshot = net.layers()[0].weights().clone();
        let mut opt = RmsProp::default_paper();
        // No gradient: step is a no-op on weights (cache of zeros).
        opt.step(&mut net);
        assert_eq!(net.layers()[0].weights(), &snapshot);
        // With gradient: parameters move. The final layer's bias always
        // receives d_logits directly, so it must change when logits do.
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        let mut logits = net.forward(&x);
        logits.map_inplace(|_| 1.0); // force a non-zero gradient
        let bias_before = net.layers().last().unwrap().bias().to_vec();
        net.backward(&logits);
        opt.step(&mut net);
        assert_ne!(net.layers().last().unwrap().bias(), &bias_before[..]);
    }
}
