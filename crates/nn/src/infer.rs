//! Fast-precision (`f32`) inference engine.
//!
//! Training stays in `f64`: REINFORCE's advantage estimates are tiny
//! differences of large returns, RMSProp's second-moment accumulators
//! shrink quadratically, and the golden determinism tables pin the exact
//! `f64` forward pass bit-for-bit. Inference inside the search loop has
//! neither constraint — a policy *distribution* only needs enough
//! precision to preserve the action ranking — so the hot path can trade
//! half the weight-stream bandwidth for throughput.
//!
//! [`InferenceEngine`] snapshots an [`Mlp`] into an `f32` layout built
//! for the single-example case the search loop actually runs:
//!
//! * **Input-major, like training**: weights stay `in × out` so row `k`
//!   is "what input `k` contributes to every output". A zero feature —
//!   and the featurized states are mostly zeros (empty ready slots,
//!   sparse cluster image) — skips its whole row. This is the same
//!   sparsity-compaction structure as the tuned `f64` kernel in
//!   [`Dense::forward_one_into`](crate::Dense::forward_one_into), at
//!   half the weight-stream bandwidth.
//! * **Lane-padded outputs**: every weight row, the bias, and the
//!   activation scratch are padded with zeros to a multiple of
//!   [`LANES`], so the vectorized sweep over outputs has no scalar
//!   remainder. Padding lanes only ever hold exact `+0.0` terms and
//!   cannot change the logical outputs.
//! * **Safe Rust only**: compacted input rows fold four at a time into
//!   the output row — long independent accumulator chains across the
//!   output dimension that the autovectorizer maps onto SIMD lanes
//!   without any `unsafe` (`#![forbid(unsafe_code)]` stays). Layers
//!   whose padded output row fits in registers take a fixed-width
//!   kernel whose accumulators never round-trip through memory.
//!
//! The engine is a *snapshot*: it borrows nothing and does not track
//! later training updates. Snapshotting is deterministic — the same
//! `Mlp` always yields bit-identical tables — and `f64 → f32` rounding
//! is the only precision loss (validated by the tolerance proptests here
//! and the diffcheck judges downstream).

use serde::{Deserialize, Serialize};

use crate::{Activation, Mlp};

/// `f32` lanes per accumulator block: 8 × 4 bytes = one 256-bit vector.
pub const LANES: usize = 8;

/// Numeric mode of the policy/value forward passes.
///
/// `Exact` is the default and is golden-checked bit-for-bit; `Fast` runs
/// the `f32` [`InferenceEngine`] and is validated by tolerance bounds and
/// the differential judges instead of bit-identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum Precision {
    /// The exact `f64` path — bit-identical to training-time forward
    /// passes and to every pinned golden table.
    #[default]
    Exact,
    /// The `f32` [`InferenceEngine`] path — faster, validated by
    /// tolerance and differential checks rather than bit-identity.
    Fast,
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Precision::Exact),
            "fast" => Ok(Precision::Fast),
            other => Err(format!("unknown precision `{other}` (use exact|fast)")),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::Exact => "exact",
            Precision::Fast => "fast",
        })
    }
}

/// One snapshotted layer: input-major, lane-padded `f32` tables.
#[derive(Debug, Clone, PartialEq)]
struct InferLayer {
    /// `in_dim` rows of `padded_out` weights each (training layout with
    /// zero tail lanes): row `k` holds input `k`'s contribution to every
    /// output.
    weights: Vec<f32>,
    /// Bias per output, lane-padded with zeros, applied in the epilogue.
    bias: Vec<f32>,
    /// Logical (unpadded) input width.
    in_dim: usize,
    /// Logical (unpadded) output width.
    out_dim: usize,
    /// Row stride: `out_dim` rounded up to a multiple of [`LANES`].
    padded_out: usize,
    activation: Activation,
}

/// Reusable buffers for [`InferenceEngine`] forward passes.
///
/// Activations travel between layers as a *compacted* sparse list
/// (`idx`/`val` pairs holding only the nonzero entries) — produced for
/// free by the previous layer's activation epilogue — plus one dense
/// row buffer that holds the current layer's raw outputs (and, after
/// the last layer, the logits the caller reads).
#[derive(Debug, Default, Clone)]
pub struct InferScratch {
    front_idx: Vec<u32>,
    front_val: Vec<f32>,
    back_idx: Vec<u32>,
    back_val: Vec<f32>,
    row: Vec<f32>,
}

impl InferScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Round `n` up to a multiple of [`LANES`].
#[inline]
fn pad(n: usize) -> usize {
    n.div_ceil(LANES) * LANES
}

/// An `f32` snapshot of an [`Mlp`] in an input-major, lane-padded
/// layout, with sparsity-aware, autovectorization-friendly forward
/// kernels.
///
/// ```
/// use rand::SeedableRng;
/// use spear_nn::{InferScratch, InferenceEngine, Mlp, MlpConfig};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Mlp::new(MlpConfig::new(4, &[8], 3), &mut rng);
/// let engine = InferenceEngine::from_mlp(&net);
/// let mut scratch = InferScratch::new();
/// let out = engine.forward_one(&[0.1, -0.2, 0.3, 0.4], &mut scratch);
/// assert_eq!(out.len(), 3);
/// let exact = net.forward_one(&[0.1, -0.2, 0.3, 0.4]);
/// for (f, e) in out.iter().zip(&exact) {
///     assert!((f64::from(*f) - e).abs() < 1e-4);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceEngine {
    layers: Vec<InferLayer>,
    input_dim: usize,
    output_dim: usize,
}

impl InferenceEngine {
    /// Snapshots `net` into the `f32` inference layout. Deterministic:
    /// the same network always produces bit-identical tables.
    #[must_use]
    pub fn from_mlp(net: &Mlp) -> Self {
        let layers: Vec<InferLayer> = net
            .layers()
            .iter()
            .map(|layer| {
                let in_dim = layer.input_dim();
                let out_dim = layer.output_dim();
                let padded_out = pad(out_dim);
                let w = layer.weights().as_slice();
                // Keep the `in × out` training layout, widening each row
                // to `padded_out` with a zero tail.
                let mut weights = vec![0.0f32; in_dim * padded_out];
                for k in 0..in_dim {
                    for j in 0..out_dim {
                        weights[k * padded_out + j] = w[k * out_dim + j] as f32;
                    }
                }
                let mut bias = vec![0.0f32; padded_out];
                for (dst, &b) in bias.iter_mut().zip(layer.bias()) {
                    *dst = b as f32;
                }
                InferLayer {
                    weights,
                    bias,
                    in_dim,
                    out_dim,
                    padded_out,
                    activation: layer.activation(),
                }
            })
            .collect();
        let input_dim = net.config().input;
        let output_dim = net.config().output;
        InferenceEngine {
            layers,
            input_dim,
            output_dim,
        }
    }

    /// Input width the engine expects.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width the engine produces.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// One dense layer over a compacted single example: `idx`/`val`
    /// hold the nonzero inputs (zero features — the common case in the
    /// sparse featurization and after every ReLU — skip their entire
    /// weight row). Four compacted rows fold into the output row per
    /// pass: the sweep over `padded_out` outputs is the vector axis
    /// (every `out[j]` an independent accumulator chain, no cross-lane
    /// reduction), and the fold amortizes the read-modify-write traffic
    /// on the accumulator row 4x. The per-output add chain stays
    /// k-ascending, so the result is deterministic. `out` is resized to
    /// `padded_out` with an exact-zero tail.
    fn layer_forward(
        layer: &InferLayer,
        idx: &[u32],
        val: &[f32],
        out: &mut Vec<f32>,
        out_idx: &mut Vec<u32>,
        out_val: &mut Vec<f32>,
    ) {
        let n = layer.padded_out;
        out.clear();
        out.resize(n, 0.0);
        let w = &layer.weights[..];
        let nnz = idx.len();
        let mut i = 0usize;
        while i + 4 <= nnz {
            let (k0, k1, k2, k3) = (
                idx[i] as usize,
                idx[i + 1] as usize,
                idx[i + 2] as usize,
                idx[i + 3] as usize,
            );
            let (a0, a1, a2, a3) = (val[i], val[i + 1], val[i + 2], val[i + 3]);
            let r0 = &w[k0 * n..k0 * n + n];
            let r1 = &w[k1 * n..k1 * n + n];
            let r2 = &w[k2 * n..k2 * n + n];
            let r3 = &w[k3 * n..k3 * n + n];
            // Zip chains instead of `r[j]` indexing: every operand
            // iterator has length `n`, so no bounds checks survive to
            // perturb the vectorized loop body.
            for ((((cv, &w0), &w1), &w2), &w3) in out.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
                let mut acc = *cv;
                acc += a0 * w0;
                acc += a1 * w1;
                acc += a2 * w2;
                acc += a3 * w3;
                *cv = acc;
            }
            i += 4;
        }
        for (&k, &a) in idx[i..].iter().zip(&val[i..]) {
            let k = k as usize;
            for (cv, &wv) in out.iter_mut().zip(&w[k * n..(k + 1) * n]) {
                *cv += a * wv;
            }
        }
        Self::epilogue(layer, &mut out[..layer.out_dim], out_idx, out_val);
    }

    /// Fixed-width variant of [`InferenceEngine::layer_forward`] for
    /// layers whose padded output row fits in registers (`padded_out ==
    /// N`). Four independent `[f32; N]` accumulators stay live across
    /// *all* compacted input rows — the row is loaded and stored exactly
    /// once instead of once per fold group — and are combined in a fixed
    /// order at the end, so the result is still deterministic.
    fn layer_forward_fixed<const N: usize>(
        layer: &InferLayer,
        idx: &[u32],
        val: &[f32],
        out: &mut Vec<f32>,
        out_idx: &mut Vec<u32>,
        out_val: &mut Vec<f32>,
    ) {
        debug_assert_eq!(layer.padded_out, N);
        let w = &layer.weights[..];
        let mut acc0 = [0.0f32; N];
        let mut acc1 = [0.0f32; N];
        let mut acc2 = [0.0f32; N];
        let mut acc3 = [0.0f32; N];
        let nnz = idx.len();
        let mut i = 0usize;
        while i + 4 <= nnz {
            let (k0, k1, k2, k3) = (
                idx[i] as usize,
                idx[i + 1] as usize,
                idx[i + 2] as usize,
                idx[i + 3] as usize,
            );
            let (a0, a1, a2, a3) = (val[i], val[i + 1], val[i + 2], val[i + 3]);
            let r0: &[f32; N] = w[k0 * N..k0 * N + N].try_into().expect("row width");
            let r1: &[f32; N] = w[k1 * N..k1 * N + N].try_into().expect("row width");
            let r2: &[f32; N] = w[k2 * N..k2 * N + N].try_into().expect("row width");
            let r3: &[f32; N] = w[k3 * N..k3 * N + N].try_into().expect("row width");
            for j in 0..N {
                acc0[j] += a0 * r0[j];
                acc1[j] += a1 * r1[j];
                acc2[j] += a2 * r2[j];
                acc3[j] += a3 * r3[j];
            }
            i += 4;
        }
        for (&k, &a) in idx[i..].iter().zip(&val[i..]) {
            let k = k as usize;
            let r: &[f32; N] = w[k * N..k * N + N].try_into().expect("row width");
            for j in 0..N {
                acc0[j] += a * r[j];
            }
        }
        out.clear();
        out.resize(N, 0.0);
        for (j, cv) in out.iter_mut().enumerate() {
            *cv = (acc0[j] + acc1[j]) + (acc2[j] + acc3[j]);
        }
        Self::epilogue(layer, &mut out[..layer.out_dim], out_idx, out_val);
    }

    /// Fused layer epilogue: applies `act(z + b)` in place over the
    /// logical output row *and* emits the next layer's compacted
    /// `(idx, val)` input list in the same sweep (branchlessly, via a
    /// conditionally-bumped cursor), so no separate zero-scan pass
    /// exists anywhere on the inference path.
    #[inline]
    fn epilogue(
        layer: &InferLayer,
        row: &mut [f32],
        out_idx: &mut Vec<u32>,
        out_val: &mut Vec<f32>,
    ) {
        out_idx.clear();
        out_idx.resize(layer.out_dim, 0);
        out_val.clear();
        out_val.resize(layer.out_dim, 0.0);
        let mut m = 0usize;
        for (j, (cv, &b)) in row.iter_mut().zip(&layer.bias).enumerate() {
            let v = layer.activation.apply_f32(*cv + b);
            *cv = v;
            out_idx[m] = j as u32;
            out_val[m] = v;
            m += usize::from(v != 0.0);
        }
        out_idx.truncate(m);
        out_val.truncate(m);
    }

    /// Forward pass of one example. Converts the `f64` features to `f32`
    /// at the boundary, then runs every layer in `f32`. Returns the
    /// logical (unpadded) output row, valid until the next call on the
    /// same scratch.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != input_dim()`.
    pub fn forward_one<'s>(&self, features: &[f64], scratch: &'s mut InferScratch) -> &'s [f32] {
        assert_eq!(features.len(), self.input_dim, "input width mismatch");
        // Compact the f64 input straight into (idx, val) — the dense
        // f32 copy of the features is never materialized. A tiny f64
        // that rounds to 0.0f32 stays in the list; it only adds exact
        // zeros downstream.
        scratch.front_idx.clear();
        scratch.front_idx.resize(features.len(), 0);
        scratch.front_val.clear();
        scratch.front_val.resize(features.len(), 0.0);
        let mut m = 0usize;
        for (k, &x) in features.iter().enumerate() {
            scratch.front_idx[m] = k as u32;
            scratch.front_val[m] = x as f32;
            m += usize::from(x != 0.0);
        }
        scratch.front_idx.truncate(m);
        scratch.front_val.truncate(m);
        for layer in &self.layers {
            // Dispatch narrow layers to the register-resident kernel.
            // The choice depends only on the layer shape, so every call
            // takes the same path and stays deterministic.
            let kernel = match layer.padded_out {
                8 => Self::layer_forward_fixed::<8>,
                16 => Self::layer_forward_fixed::<16>,
                24 => Self::layer_forward_fixed::<24>,
                32 => Self::layer_forward_fixed::<32>,
                _ => Self::layer_forward,
            };
            kernel(
                layer,
                &scratch.front_idx,
                &scratch.front_val,
                &mut scratch.row,
                &mut scratch.back_idx,
                &mut scratch.back_val,
            );
            std::mem::swap(&mut scratch.front_idx, &mut scratch.back_idx);
            std::mem::swap(&mut scratch.front_val, &mut scratch.back_val);
        }
        &scratch.row[..self.output_dim]
    }

    /// Forward pass of `n` row-major examples (`rows.len() == n *
    /// input_dim()`), appending each logical output row to `out`
    /// (cleared first). Each row goes through the exact
    /// [`InferenceEngine::forward_one`] kernel, so batch rows are
    /// bit-identical to single-example calls — the same batch≡single
    /// contract the `f64` path pins, which lets cached and batched
    /// results mix freely.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() != n * input_dim()`.
    pub fn forward_batch(
        &self,
        rows: &[f64],
        n: usize,
        out: &mut Vec<f32>,
        scratch: &mut InferScratch,
    ) {
        assert_eq!(rows.len(), n * self.input_dim, "batch width mismatch");
        out.clear();
        out.reserve(n * self.output_dim);
        for row in rows.chunks_exact(self.input_dim.max(1)) {
            out.extend_from_slice(self.forward_one(row, scratch));
        }
    }
}

/// [`softmax_masked_into`](crate::softmax_masked_into) in `f32`: the
/// same stable algorithm (legal max, shifted exp, renormalize) over the
/// fast path's logits, kept entirely in `f32` so a cached probability
/// row replays bit-identically to the miss that produced it.
///
/// # Panics
///
/// Panics if `mask` has a different length than `logits` or no entry is
/// legal.
pub fn softmax_masked_f32_into(logits: &[f32], mask: &[bool], out: &mut Vec<f32>) {
    assert_eq!(logits.len(), mask.len(), "mask length mismatch");
    assert!(mask.iter().any(|&m| m), "at least one action must be legal");
    let max = logits
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(&l, _)| l)
        .fold(f32::NEG_INFINITY, f32::max);
    out.clear();
    out.extend(
        logits
            .iter()
            .zip(mask)
            .map(|(&l, &m)| if m { (l - max).exp() } else { 0.0 }),
    );
    let sum: f32 = out.iter().sum();
    for p in out.iter_mut() {
        *p /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{softmax_masked_into, MlpConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paperish(seed: u64, input: usize, hidden: &[usize], output: usize) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(MlpConfig::new(input, hidden, output), &mut rng)
    }

    /// Snapshotting the same network twice yields bit-identical tables —
    /// the exact≡exact regression for the snapshot/rebuild path.
    #[test]
    fn snapshot_is_deterministic() {
        let net = paperish(3, 19, &[33, 8], 5);
        let a = InferenceEngine::from_mlp(&net);
        let b = InferenceEngine::from_mlp(&net);
        assert_eq!(a.layers.len(), b.layers.len());
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            let wa: Vec<u32> = la.weights.iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u32> = lb.weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(wa, wb);
            let ba: Vec<u32> = la.bias.iter().map(|b| b.to_bits()).collect();
            let bb: Vec<u32> = lb.bias.iter().map(|b| b.to_bits()).collect();
            assert_eq!(ba, bb);
            assert_eq!(la.padded_out % LANES, 0);
        }
        assert_eq!(a, b);
    }

    /// Padding tail lanes hold exact zeros at every width.
    #[test]
    fn padding_lanes_are_zero() {
        for input in [1usize, 7, 8, 9, 16, 163] {
            let net = paperish(11, input, &[17], 3);
            let engine = InferenceEngine::from_mlp(&net);
            for layer in &engine.layers {
                assert_eq!(layer.weights.len(), layer.in_dim * layer.padded_out);
                for row in layer.weights.chunks_exact(layer.padded_out) {
                    for &w in &row[layer.out_dim..] {
                        assert_eq!(w.to_bits(), 0.0f32.to_bits());
                    }
                }
                for &b in &layer.bias[layer.out_dim..] {
                    assert_eq!(b.to_bits(), 0.0f32.to_bits());
                }
            }
        }
    }

    /// The `f32` forward pass tracks the exact `f64` one within a tight
    /// absolute tolerance across layer widths (including non-multiples
    /// of the lane count) and activations.
    #[test]
    fn forward_one_tracks_f64_within_tolerance() {
        for (seed, input, hidden, output) in [
            (0u64, 4usize, vec![8usize], 3usize),
            (1, 7, vec![9, 5], 4),
            (2, 163, vec![256, 32, 32], 16),
        ] {
            let mut net = paperish(seed, input, &hidden, output);
            let engine = InferenceEngine::from_mlp(&net);
            let mut scratch = InferScratch::new();
            let x: Vec<f64> = (0..input)
                .map(|i| {
                    if i % 3 == 0 {
                        0.0
                    } else {
                        (i as f64) * 0.29 - 1.3
                    }
                })
                .collect();
            let exact = net.forward_one(&x);
            let fast = engine.forward_one(&x, &mut scratch);
            assert_eq!(fast.len(), exact.len());
            for (f, e) in fast.iter().zip(&exact) {
                assert!((f64::from(*f) - e).abs() < 1e-3, "seed {seed}: {f} vs {e}");
            }
        }
    }

    /// Batch rows are bit-identical to single-example calls.
    #[test]
    fn forward_batch_rows_match_forward_one_bitwise() {
        let net = paperish(5, 13, &[21, 6], 4);
        let engine = InferenceEngine::from_mlp(&net);
        let mut scratch = InferScratch::new();
        let n = 5;
        let rows: Vec<f64> = (0..n * 13)
            .map(|i| ((i * 7) % 11) as f64 * 0.31 - 1.0)
            .collect();
        let mut batch = Vec::new();
        engine.forward_batch(&rows, n, &mut batch, &mut scratch);
        assert_eq!(batch.len(), n * 4);
        for (r, row) in rows.chunks_exact(13).enumerate() {
            let one = engine.forward_one(row, &mut scratch);
            for (a, b) in batch[r * 4..(r + 1) * 4].iter().zip(one) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
        }
    }

    /// The `f32` masked softmax mirrors the `f64` one: zero on illegal
    /// entries, sums to one, close probabilities.
    #[test]
    fn masked_softmax_f32_matches_f64() {
        let logits64 = [1.5f64, -0.25, 3.0, 0.0, -2.0];
        let logits32: Vec<f32> = logits64.iter().map(|&l| l as f32).collect();
        let mask = [true, false, true, true, false];
        let mut p64 = Vec::new();
        softmax_masked_into(&logits64, &mask, &mut p64);
        let mut p32 = Vec::new();
        softmax_masked_f32_into(&logits32, &mask, &mut p32);
        assert!((p32.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        for (a, b) in p32.iter().zip(&p64) {
            assert!((f64::from(*a) - b).abs() < 1e-5);
        }
        assert_eq!(p32[1], 0.0);
        assert_eq!(p32[4], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one action must be legal")]
    fn masked_softmax_f32_rejects_all_illegal() {
        let mut out = Vec::new();
        softmax_masked_f32_into(&[1.0, 2.0], &[false, false], &mut out);
    }

    proptest! {
        /// Logits-tolerance bound: over random paper-shaped networks and
        /// inputs, the fast logits stay within an absolute bound of the
        /// exact ones, and the argmax agrees unless the exact top two
        /// logits are closer than twice that bound (where either answer
        /// is within tolerance by construction).
        #[test]
        fn fast_logits_within_bound_and_argmax_agrees(
            seed in 0u64..500,
            xseed in 0u64..500,
        ) {
            const BOUND: f64 = 1e-3;
            let mut net = paperish(seed, 24, &[48, 16], 8);
            let engine = InferenceEngine::from_mlp(&net);
            let mut scratch = InferScratch::new();
            let mut xrng = StdRng::seed_from_u64(xseed);
            let x: Vec<f64> = (0..24)
                .map(|_| {
                    use rand::Rng;
                    if xrng.gen::<f64>() < 0.4 { 0.0 } else { xrng.gen::<f64>() * 2.0 - 1.0 }
                })
                .collect();
            let exact = net.forward_one(&x);
            let fast = engine.forward_one(&x, &mut scratch);
            let mut max_diff = 0.0f64;
            for (f, e) in fast.iter().zip(&exact) {
                max_diff = max_diff.max((f64::from(*f) - e).abs());
            }
            prop_assert!(max_diff < BOUND, "max |f64 - f32| = {max_diff}");

            let argmax = |v: &[f64]| {
                v.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            };
            let exact_top = argmax(&exact);
            let fast64: Vec<f64> = fast.iter().map(|&f| f64::from(f)).collect();
            let fast_top = argmax(&fast64);
            if fast_top != exact_top {
                // Disagreement is only acceptable inside the tolerance
                // band: the exact runner-up must be within 2·BOUND of
                // the exact winner.
                let mut sorted = exact.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
                prop_assert!(
                    sorted[0] - sorted[1] < 2.0 * BOUND,
                    "argmax flipped outside the tolerance band: {sorted:?}"
                );
            }
        }
    }
}
