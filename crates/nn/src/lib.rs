//! A minimal, dependency-free dense neural-network library.
//!
//! The Spear paper approximates its scheduling policy with a small MLP
//! (three hidden layers of 256/32/32 ReLU units and a softmax output)
//! trained with RMSProp (α=1e-4, ρ=0.9, ε=1e-9) in Theano. The Rust deep
//! learning ecosystem offers no equally self-contained substitute, so this
//! crate implements exactly what the paper needs from scratch:
//!
//! * [`Matrix`] — a row-major `f64` matrix with the required BLAS-like ops;
//! * [`Dense`] layers with manual, exact backpropagation;
//! * ReLU activation ([`Activation`]), stable [`softmax`]/[`log_softmax`]
//!   with optional action masking;
//! * [`Mlp`] — the full network with forward/backward passes, gradient
//!   accumulation and serde save/load;
//! * [`RmsProp`] and [`Sgd`] optimizers;
//! * cross-entropy and policy-gradient losses ([`loss`]).
//!
//! Gradients are verified against finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use spear_nn::{Mlp, MlpConfig, RmsProp, Optimizer, Matrix, loss};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Mlp::new(MlpConfig::new(4, &[8], 3), &mut rng);
//! let mut opt = RmsProp::new(1e-2, 0.9, 1e-9);
//!
//! // One supervised step toward class 2 for a single example.
//! let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.4]]);
//! let logits = net.forward(&x);
//! let (l0, dlogits) = loss::softmax_cross_entropy(&logits, &[2], None);
//! net.backward(&dlogits);
//! opt.step(&mut net);
//! net.zero_grad();
//!
//! let logits = net.forward(&x);
//! let (l1, _) = loss::softmax_cross_entropy(&logits, &[2], None);
//! assert!(l1 < l0, "loss must decrease after one step");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod infer;
mod layer;
pub mod loss;
mod matrix;
mod mlp;
mod optim;

pub use activation::{log_softmax, softmax, softmax_masked, softmax_masked_into, Activation};
pub use infer::{softmax_masked_f32_into, InferScratch, InferenceEngine, Precision, LANES};
pub use layer::Dense;
pub use matrix::Matrix;
pub use mlp::{BatchScratch, ForwardScratch, Mlp, MlpConfig};
pub use optim::{Optimizer, RmsProp, Sgd};
