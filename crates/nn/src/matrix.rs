//! A row-major `f64` matrix with the operations the MLP needs.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
///
/// Rows are the batch dimension throughout this crate: an input batch of
/// `n` examples with `d` features is an `n × d` matrix.
///
/// ```
/// use spear_nn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0], &[6.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c.as_slice(), &[17.0, 39.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Matrix {
    /// An empty 0×0 matrix — the natural start state for `*_into` scratch
    /// buffers, which are reshaped on first use.
    fn default() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape does not match data length");
        Matrix { rows, cols, data }
    }

    /// A 1×n matrix from a slice (one example).
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        };
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned matrix: `out` is reshaped to
    /// `self.rows × other.cols` (reusing its existing allocation once it
    /// has reached steady-state capacity) and overwritten with the product.
    /// Same loops, same accumulation order, bit-identical results — this is
    /// the allocation-free entry the batched inference path flushes through.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        out.rows = self.rows;
        out.cols = other.cols;
        out.data.clear();
        out.data.resize(self.rows * other.cols, 0.0);
        let n = other.cols;
        // Row-blocked i-k-j loop order: each `other` row pulled from memory
        // serves four output rows before being evicted, quartering the
        // dominant memory traffic of batched forward/backward passes. Per
        // output element the k index still ascends and zero entries of
        // `self` are still skipped, so the accumulation sequence — and
        // therefore every output bit — matches the plain i-k-j loop.
        let mut i = 0;
        while i + 4 <= self.rows {
            let (r0, rest) = out.data[i * n..(i + 4) * n].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3) = rest.split_at_mut(n);
            for k in 0..self.cols {
                let a0 = self.data[i * self.cols + k];
                let a1 = self.data[(i + 1) * self.cols + k];
                let a2 = self.data[(i + 2) * self.cols + k];
                let a3 = self.data[(i + 3) * self.cols + k];
                let orow = &other.data[k * n..(k + 1) * n];
                if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                    for (j, &ov) in orow.iter().enumerate() {
                        r0[j] += a0 * ov;
                        r1[j] += a1 * ov;
                        r2[j] += a2 * ov;
                        r3[j] += a3 * ov;
                    }
                } else {
                    for (row, a) in [
                        (&mut *r0, a0),
                        (&mut *r1, a1),
                        (&mut *r2, a2),
                        (&mut *r3, a3),
                    ] {
                        if a != 0.0 {
                            for (cv, &ov) in row.iter_mut().zip(orow) {
                                *cv += a * ov;
                            }
                        }
                    }
                }
            }
            i += 4;
        }
        for i in i..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * n..(k + 1) * n];
                let crow = &mut out.data[i * n..(i + 1) * n];
                for (cv, &ov) in crow.iter_mut().zip(orow) {
                    *cv += a * ov;
                }
            }
        }
    }

    /// `self^T · other` without materializing the transpose. Shapes:
    /// `(m×n)^T · (m×p) = n×p`. Used for weight gradients `x^T · dz`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[i * other.cols..(i + 1) * other.cols];
                let crow = &mut out.data[k * other.cols..(k + 1) * other.cols];
                for (cv, &ov) in crow.iter_mut().zip(orow) {
                    *cv += a * ov;
                }
            }
        }
        out
    }

    /// `self · other^T`. Shapes: `(m×n) · (p×n)^T = m×p`. Used for input
    /// gradients `dz · W^T`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Adds `row` to every row of `self` in place (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Element-wise `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Fills the matrix with zeros.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm (for gradient clipping / diagnostics).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Reuse the same buffer for a differently shaped product: the
        // stale 2×2 contents must be fully overwritten, not accumulated.
        b.matmul_into(&a, &mut out); // 3×2 · 2×3 = 3×3
        assert_eq!(out, b.matmul(&a));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, 3.0], &[1.0, 1.0, 4.0]]);
        // a^T (2x3) · b (3x3) = 2x3
        let c = a.transpose_matmul(&b);
        let at = Matrix::from_rows(&[&[1.0, 3.0, 5.0], &[2.0, 4.0, 6.0]]);
        assert_eq!(c, at.matmul(&b));
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        // a (2x3) · b^T (3x2) = 2x2
        let c = a.matmul_transpose(&b);
        let bt = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0]]);
        assert_eq!(c, a.matmul(&bt));
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.column_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_scaled_and_map() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        a.map_inplace(|v| v * 2.0);
        assert_eq!(a.as_slice(), &[12.0, 24.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }
}
