//! Activations and the (masked) softmax.

use serde::{Deserialize, Serialize};

use crate::Matrix;

/// Element-wise activation function of a hidden layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)` — the paper's hidden activation.
    Relu,
    /// Pass-through (used for the logits layer).
    Identity,
    /// Hyperbolic tangent, kept for ablations.
    Tanh,
}

impl Activation {
    /// Applies the activation to a single value.
    ///
    /// This is the scalar kernel behind the fused bias+activation passes
    /// in `Dense` — it must perform exactly the same floating-point
    /// operation per element as [`Activation::forward_slice_inplace`] so
    /// fused and unfused paths stay bit-identical.
    #[inline]
    pub fn apply(self, v: f64) -> f64 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Identity => v,
            Activation::Tanh => v.tanh(),
        }
    }

    /// [`Activation::apply`] in `f32` — the scalar kernel of the
    /// fast-precision inference engine's fused epilogue.
    #[inline]
    pub fn apply_f32(self, v: f32) -> f32 {
        match self {
            Activation::Relu => v.max(0.0),
            Activation::Identity => v,
            Activation::Tanh => v.tanh(),
        }
    }

    /// Applies the activation to every element of `z` in place.
    pub fn forward_inplace(self, z: &mut Matrix) {
        self.forward_slice_inplace(z.as_mut_slice());
    }

    /// Applies the activation to a raw slice in place — the allocation-free
    /// inference path works on borrowed buffers instead of matrices.
    #[inline]
    pub fn forward_slice_inplace(self, z: &mut [f64]) {
        match self {
            Activation::Relu => {
                for v in z.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Activation::Identity => {}
            Activation::Tanh => {
                for v in z.iter_mut() {
                    *v = v.tanh();
                }
            }
        }
    }

    /// Multiplies `dz` by the activation derivative evaluated at the
    /// *post-activation* values `a` (valid for ReLU/tanh/identity, which
    /// are all recoverable from their outputs).
    pub fn backward_inplace(self, a: &Matrix, dz: &mut Matrix) {
        match self {
            Activation::Relu => {
                for (d, &out) in dz.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    if out <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            Activation::Identity => {}
            Activation::Tanh => {
                for (d, &out) in dz.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *d *= 1.0 - out * out;
                }
            }
        }
    }
}

/// Numerically stable softmax of one logit row.
///
/// ```
/// use spear_nn::softmax;
/// let p = softmax(&[1.0, 2.0, 3.0]);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// ```
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically stable log-softmax of one logit row.
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits.iter().map(|&l| (l - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&l| l - log_sum).collect()
}

/// Softmax restricted to the legal actions: illegal entries get probability
/// zero and the rest renormalize. This is how the policy network respects
/// the simulator's legality filter.
///
/// # Panics
///
/// Panics if `mask` has a different length than `logits` or no entry is
/// legal.
///
/// ```
/// use spear_nn::softmax_masked;
/// let p = softmax_masked(&[5.0, 1.0, 1.0], &[false, true, true]);
/// assert_eq!(p[0], 0.0);
/// assert!((p[1] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax_masked(logits: &[f64], mask: &[bool]) -> Vec<f64> {
    let mut out = Vec::new();
    softmax_masked_into(logits, mask, &mut out);
    out
}

/// [`softmax_masked`] into a caller-owned buffer (cleared first), for hot
/// loops that must not allocate per call. Performs the exact same
/// floating-point operations in the same order as [`softmax_masked`].
///
/// # Panics
///
/// Panics if `mask` has a different length than `logits` or no entry is
/// legal.
pub fn softmax_masked_into(logits: &[f64], mask: &[bool], out: &mut Vec<f64>) {
    assert_eq!(logits.len(), mask.len(), "mask length mismatch");
    assert!(mask.iter().any(|&m| m), "at least one action must be legal");
    let max = logits
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(&l, _)| l)
        .fold(f64::NEG_INFINITY, f64::max);
    out.clear();
    out.extend(
        logits
            .iter()
            .zip(mask)
            .map(|(&l, &m)| if m { (l - max).exp() } else { 0.0 }),
    );
    let sum: f64 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut z = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        Activation::Relu.forward_inplace(&mut z);
        assert_eq!(z.as_slice(), &[0.0, 0.0, 2.0]);
        let mut dz = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        Activation::Relu.backward_inplace(&z, &mut dz);
        assert_eq!(dz.as_slice(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_forward_backward() {
        let mut z = Matrix::from_rows(&[&[0.0]]);
        Activation::Tanh.forward_inplace(&mut z);
        assert_eq!(z.as_slice(), &[0.0]);
        let mut dz = Matrix::from_rows(&[&[1.0]]);
        Activation::Tanh.backward_inplace(&z, &mut dz);
        assert_eq!(dz.as_slice(), &[1.0]); // derivative at 0 is 1
    }

    #[test]
    fn identity_is_noop() {
        let mut z = Matrix::from_rows(&[&[-3.0, 5.0]]);
        Activation::Identity.forward_inplace(&mut z);
        assert_eq!(z.as_slice(), &[-3.0, 5.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[-100.0, 0.0, 100.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > 0.999);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1e308f64.ln(), 0.0]);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let logits = [0.3, -1.2, 2.0, 0.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-12);
        }
    }

    #[test]
    fn masked_softmax_zeroes_illegal() {
        let p = softmax_masked(&[10.0, 0.0, 0.0, 0.0], &[false, true, true, false]);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[3], 0.0);
        assert!((p[1] + p[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one action must be legal")]
    fn masked_softmax_rejects_empty_mask() {
        let _ = softmax_masked(&[1.0], &[false]);
    }

    #[test]
    fn masked_softmax_into_matches_allocating_version() {
        let logits = [0.3, -1.2, 2.0, 0.7];
        let mask = [true, false, true, true];
        let mut out = vec![99.0; 2]; // stale contents must be discarded
        softmax_masked_into(&logits, &mask, &mut out);
        assert_eq!(out, softmax_masked(&logits, &mask));
    }

    #[test]
    fn masked_softmax_single_legal_action() {
        let p = softmax_masked(&[-50.0, 3.0], &[true, false]);
        assert_eq!(p, vec![1.0, 0.0]);
    }
}
