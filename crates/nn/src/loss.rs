//! Losses: softmax cross-entropy (supervised pre-training) and the
//! REINFORCE policy-gradient pseudo-loss.

use crate::{softmax, softmax_masked, Matrix};

/// Mean softmax cross-entropy over a batch, with optional per-row legality
/// masks. Returns `(loss, d_logits)` where `d_logits` is the gradient of
/// the *mean* loss w.r.t. the logits (already divided by the batch size).
///
/// `targets[i]` is the class index of row `i`; when `masks` is provided,
/// illegal classes get zero probability and zero gradient (targets must be
/// legal).
///
/// # Panics
///
/// Panics if lengths disagree or a target is out of range / masked out.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    targets: &[usize],
    masks: Option<&[Vec<bool>]>,
) -> (f64, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "one target per row");
    if let Some(m) = masks {
        assert_eq!(m.len(), targets.len(), "one mask per row");
    }
    let n = logits.rows() as f64;
    let mut d = Matrix::zeros(logits.rows(), logits.cols());
    let mut total = 0.0;
    for r in 0..logits.rows() {
        let target = targets[r];
        assert!(target < logits.cols(), "target out of range");
        let probs = match masks {
            Some(m) => {
                assert!(m[r][target], "target class is masked out");
                softmax_masked(logits.row(r), &m[r])
            }
            None => softmax(logits.row(r)),
        };
        total += -(probs[target].max(1e-300)).ln();
        for (c, &p) in probs.iter().enumerate() {
            let indicator = if c == target { 1.0 } else { 0.0 };
            d.set(r, c, (p - indicator) / n);
        }
    }
    (total / n, d)
}

/// Gradient of the REINFORCE objective for a batch of (state, action,
/// advantage) steps: `d_logits[r] = scale · advantage[r] · (probs − onehot)`.
///
/// With `advantage = G_t − baseline` this is the gradient of
/// `−Σ advantage · log π(a|s)` — descending it *increases* the log
/// probability of actions with positive advantage, exactly Eq. (3) of the
/// paper. Rows are masked by the legal-action sets recorded during the
/// episode so that illegal logits receive no gradient.
///
/// # Panics
///
/// Panics if lengths disagree or an action is out of range / masked out.
pub fn policy_gradient(
    logits: &Matrix,
    actions: &[usize],
    advantages: &[f64],
    masks: &[Vec<bool>],
    scale: f64,
) -> Matrix {
    assert_eq!(logits.rows(), actions.len(), "one action per row");
    assert_eq!(logits.rows(), advantages.len(), "one advantage per row");
    assert_eq!(logits.rows(), masks.len(), "one mask per row");
    let mut d = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let action = actions[r];
        assert!(action < logits.cols(), "action out of range");
        assert!(masks[r][action], "sampled action is masked out");
        let probs = softmax_masked(logits.row(r), &masks[r]);
        for c in 0..logits.cols() {
            if !masks[r][c] {
                continue;
            }
            let indicator = if c == action { 1.0 } else { 0.0 };
            d.set(r, c, scale * advantages[r] * (probs[c] - indicator));
        }
    }
    d
}

/// Mean entropy of the (masked) policy over a batch of logit rows — used as
/// a diagnostic during training (a collapsing entropy signals premature
/// determinism).
pub fn mean_entropy(logits: &Matrix, masks: &[Vec<bool>]) -> f64 {
    assert_eq!(logits.rows(), masks.len(), "one mask per row");
    if logits.rows() == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (r, mask) in masks.iter().enumerate() {
        let probs = softmax_masked(logits.row(r), mask);
        total += -probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>();
    }
    total / logits.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0], None);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_log_k() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 0.0, 0.0]]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1], None);
        assert!((loss - 4.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_per_row() {
        let logits = Matrix::from_rows(&[&[0.3, -0.2, 1.0], &[2.0, 0.0, -1.0]]);
        let (_, d) = softmax_cross_entropy(&logits, &[2, 0], None);
        for r in 0..2 {
            let s: f64 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    /// Finite-difference check of the cross-entropy gradient.
    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let logits = Matrix::from_rows(&[&[0.5, -1.0, 0.3]]);
        let (_, d) = softmax_cross_entropy(&logits, &[1], None);
        let eps = 1e-6;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, c, lp.get(0, c) + eps);
            let mut lm = logits.clone();
            lm.set(0, c, lm.get(0, c) - eps);
            let (fp, _) = softmax_cross_entropy(&lp, &[1], None);
            let (fm, _) = softmax_cross_entropy(&lm, &[1], None);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - d.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn masked_cross_entropy_ignores_illegal_classes() {
        // Class 0 has a huge logit but is illegal; loss only sees 1 and 2.
        let logits = Matrix::from_rows(&[&[100.0, 1.0, 1.0]]);
        let masks = vec![vec![false, true, true]];
        let (loss, d) = softmax_cross_entropy(&logits, &[1], Some(&masks));
        assert!((loss - 2.0f64.ln()).abs() < 1e-9);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn policy_gradient_pushes_toward_positive_advantage() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let masks = vec![vec![true, true]];
        // Positive advantage on action 0: its gradient entry must be
        // negative (descending increases the logit).
        let d = policy_gradient(&logits, &[0], &[1.0], &masks, 1.0);
        assert!(d.get(0, 0) < 0.0);
        assert!(d.get(0, 1) > 0.0);
        // Negative advantage flips the direction.
        let d = policy_gradient(&logits, &[0], &[-1.0], &masks, 1.0);
        assert!(d.get(0, 0) > 0.0);
    }

    #[test]
    fn policy_gradient_respects_mask() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0, 9.0]]);
        let masks = vec![vec![true, true, false]];
        let d = policy_gradient(&logits, &[1], &[2.0], &masks, 1.0);
        assert_eq!(d.get(0, 2), 0.0);
    }

    #[test]
    fn zero_advantage_gives_zero_gradient() {
        let logits = Matrix::from_rows(&[&[0.4, -0.4]]);
        let masks = vec![vec![true, true]];
        let d = policy_gradient(&logits, &[0], &[0.0], &masks, 1.0);
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn entropy_of_uniform_and_deterministic() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let masks = vec![vec![true, true]];
        assert!((mean_entropy(&logits, &masks) - 2.0f64.ln()).abs() < 1e-9);
        let peaked = Matrix::from_rows(&[&[100.0, 0.0]]);
        assert!(mean_entropy(&peaked, &masks) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "target class is masked out")]
    fn masked_target_panics() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let masks = vec![vec![true, false]];
        let _ = softmax_cross_entropy(&logits, &[1], Some(&masks));
    }
}
