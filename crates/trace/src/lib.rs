//! Production-trace substrate for the Spear experiments (§V-C).
//!
//! The paper evaluates on a proprietary trace of 99 Hive/MapReduce jobs.
//! That trace is not public, so this crate provides:
//!
//! * a [`TraceJob`]/[`Trace`] data model with JSON I/O ([`Trace::save`],
//!   [`Trace::load`]) so real traces can be plugged in when available,
//! * a **calibrated synthetic generator** ([`SyntheticTraceSpec`]) that
//!   reproduces every statistic the paper publishes about its trace:
//!   99 jobs; jobs with ≤5 map or ≤5 reduce tasks filtered out; at most
//!   29 map / 38 reduce tasks; median 14 map / 17 reduce tasks; median
//!   per-job mean task runtimes of ≈73 s (map) and ≈32 s (reduce),
//! * summary statistics and CDFs ([`TraceStats`]) regenerating
//!   Fig. 9(a)/(b),
//! * a seeded **arrival-stream generator** ([`ArrivalStreamSpec`]) that
//!   turns either generator into a reproducible `(arrival, DAG)` stream
//!   for the online multi-job scheduling experiments,
//! * a seeded **fault-environment recipe** ([`FaultProfile`]) freezing
//!   failure/straggler rates and a retry budget into the deterministic
//!   fault plans the simulator replays during the unreliable-cluster
//!   sweeps,
//! * a seeded **machine-set generator** ([`MachineProfile`]) for the
//!   heterogeneous-cluster sweeps: machine count, capacity spread and
//!   interconnect bandwidth knobs frozen into a reproducible
//!   `spear_cluster::MachineSet`.
//!
//! Note: the paper's prose ("mean map runtime varies from 2 to 17 s") and
//! its Fig. 9(b) medians (map 73 s, reduce 32 s) are mutually
//! inconsistent; we calibrate to the figure, which is what the experiment
//! reproduces.
//!
//! # Example
//!
//! ```
//! use spear_trace::SyntheticTraceSpec;
//!
//! let trace = SyntheticTraceSpec::paper().generate(7);
//! assert_eq!(trace.jobs.len(), 99);
//! let dag = trace.jobs[0].to_dag().unwrap();
//! assert!(dag.len() > 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod error;
mod faults;
mod machines;
mod model;
mod stats;
mod synth;

pub use arrivals::{ArrivalProcess, ArrivalStreamSpec, JobSource};
pub use error::TraceError;
pub use faults::FaultProfile;
pub use machines::MachineProfile;
pub use model::{Trace, TraceJob};
pub use stats::{cdf_points, median_u64, TraceStats};
pub use synth::SyntheticTraceSpec;
