//! Typed errors for trace validation and DAG conversion.

use spear_dag::DagError;

/// Errors raised while turning trace jobs into schedulable DAGs.
///
/// `spear-trace` sits below the cluster layer, so this is its own error
/// type rather than a [`spear_cluster::SpearError`] variant; callers that
/// mix the two go through `Box<dyn Error>` or wrap at the call site.
///
/// [`spear_cluster::SpearError`]: https://docs.rs/spear-cluster
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A job has no map tasks or no reduce tasks; the two-stage shuffle
    /// DAG needs at least one of each.
    EmptyStage {
        /// The offending job id.
        job: String,
    },
    /// A stage's demand vector count does not match its runtime count.
    MisalignedDemands {
        /// The offending job id.
        job: String,
        /// `"map"` or `"reduce"`.
        stage: &'static str,
        /// Number of runtimes in the stage.
        runtimes: usize,
        /// Number of demand vectors in the stage.
        demands: usize,
    },
    /// Building the DAG failed (e.g. mismatched resource dimensions
    /// between map and reduce demands).
    Dag(DagError),
    /// A machine-set profile described an invalid cluster (zero
    /// machines, dimensions, bandwidth or payload bound).
    Cluster(spear_cluster::ClusterError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::EmptyStage { job } => {
                write!(f, "job {job}: a two-stage job needs map and reduce tasks")
            }
            TraceError::MisalignedDemands {
                job,
                stage,
                runtimes,
                demands,
            } => write!(
                f,
                "job {job}: {stage} stage has {runtimes} runtimes but {demands} demand vectors"
            ),
            TraceError::Dag(e) => write!(f, "building the two-stage DAG: {e}"),
            TraceError::Cluster(e) => write!(f, "building the machine set: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Dag(e) => Some(e),
            TraceError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for TraceError {
    fn from(e: DagError) -> Self {
        TraceError::Dag(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_job() {
        let e = TraceError::EmptyStage { job: "q1".into() };
        assert!(e.to_string().contains("q1"));
        let e = TraceError::MisalignedDemands {
            job: "q2".into(),
            stage: "map",
            runtimes: 3,
            demands: 2,
        };
        let s = e.to_string();
        assert!(s.contains("q2") && s.contains("map") && s.contains('3') && s.contains('2'));
    }

    #[test]
    fn dag_errors_are_chained() {
        use std::error::Error;
        let e = TraceError::from(DagError::Cycle);
        assert!(e.source().is_some());
    }
}
