//! Summary statistics and CDFs over traces (Fig. 9(a)/(b)).

use serde::{Deserialize, Serialize};

use crate::Trace;

/// Median of a `u64` sample (mean of the middle pair for even sizes).
/// Returns 0 for an empty sample.
pub fn median_u64(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) as f64 / 2.0
    }
}

/// The empirical CDF of a sample: sorted `(value, fraction ≤ value)`
/// points, one per observation.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// The summary statistics of a trace that the paper reports (§V-A, §V-C,
/// Fig. 9(a)/(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Median number of map tasks (paper: 14).
    pub median_map_tasks: f64,
    /// Median number of reduce tasks (paper: 17).
    pub median_reduce_tasks: f64,
    /// Maximum number of map tasks (paper: 29).
    pub max_map_tasks: usize,
    /// Maximum number of reduce tasks (paper: 38).
    pub max_reduce_tasks: usize,
    /// Median of per-job mean map runtime (paper Fig. 9(b): 73).
    pub median_map_runtime: f64,
    /// Median of per-job mean reduce runtime (paper Fig. 9(b): 32).
    pub median_reduce_runtime: f64,
}

impl TraceStats {
    /// Computes the statistics of `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let map_counts: Vec<u64> = trace.jobs.iter().map(|j| j.num_map() as u64).collect();
        let reduce_counts: Vec<u64> = trace.jobs.iter().map(|j| j.num_reduce() as u64).collect();
        let map_means: Vec<u64> = trace
            .jobs
            .iter()
            .map(|j| j.mean_map_runtime().round() as u64)
            .collect();
        let reduce_means: Vec<u64> = trace
            .jobs
            .iter()
            .map(|j| j.mean_reduce_runtime().round() as u64)
            .collect();
        TraceStats {
            jobs: trace.jobs.len(),
            median_map_tasks: median_u64(&map_counts),
            median_reduce_tasks: median_u64(&reduce_counts),
            max_map_tasks: map_counts.iter().max().copied().unwrap_or(0) as usize,
            max_reduce_tasks: reduce_counts.iter().max().copied().unwrap_or(0) as usize,
            median_map_runtime: median_u64(&map_means),
            median_reduce_runtime: median_u64(&reduce_means),
        }
    }

    /// CDF of map-task counts (Fig. 9(a), map series).
    pub fn map_count_cdf(trace: &Trace) -> Vec<(f64, f64)> {
        cdf_points(
            &trace
                .jobs
                .iter()
                .map(|j| j.num_map() as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// CDF of reduce-task counts (Fig. 9(a), reduce series).
    pub fn reduce_count_cdf(trace: &Trace) -> Vec<(f64, f64)> {
        cdf_points(
            &trace
                .jobs
                .iter()
                .map(|j| j.num_reduce() as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// CDF of per-job mean map runtimes (Fig. 9(b), map series).
    pub fn map_runtime_cdf(trace: &Trace) -> Vec<(f64, f64)> {
        cdf_points(
            &trace
                .jobs
                .iter()
                .map(|j| j.mean_map_runtime())
                .collect::<Vec<_>>(),
        )
    }

    /// CDF of per-job mean reduce runtimes (Fig. 9(b), reduce series).
    pub fn reduce_runtime_cdf(trace: &Trace) -> Vec<(f64, f64)> {
        cdf_points(
            &trace
                .jobs
                .iter()
                .map(|j| j.mean_reduce_runtime())
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceJob;
    use spear_dag::ResourceVec;

    fn job(maps: usize, reduces: usize, map_rt: u64, reduce_rt: u64) -> TraceJob {
        TraceJob {
            id: "j".into(),
            map_runtimes: vec![map_rt; maps],
            reduce_runtimes: vec![reduce_rt; reduces],
            map_demands: vec![ResourceVec::from_slice(&[0.1]); maps],
            reduce_demands: vec![ResourceVec::from_slice(&[0.2]); reduces],
        }
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median_u64(&[3, 1, 2]), 2.0);
        assert_eq!(median_u64(&[4, 1, 2, 3]), 2.5);
        assert_eq!(median_u64(&[]), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let pts = cdf_points(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn stats_of_known_trace() {
        let trace = Trace {
            jobs: vec![
                job(10, 20, 50, 30),
                job(14, 16, 73, 32),
                job(20, 18, 90, 40),
            ],
        };
        let s = TraceStats::compute(&trace);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.median_map_tasks, 14.0);
        assert_eq!(s.median_reduce_tasks, 18.0);
        assert_eq!(s.max_map_tasks, 20);
        assert_eq!(s.max_reduce_tasks, 20);
        assert_eq!(s.median_map_runtime, 73.0);
        assert_eq!(s.median_reduce_runtime, 32.0);
    }

    #[test]
    fn cdf_accessors_cover_all_jobs() {
        let trace = Trace {
            jobs: vec![job(6, 7, 10, 10), job(8, 9, 20, 20)],
        };
        assert_eq!(TraceStats::map_count_cdf(&trace).len(), 2);
        assert_eq!(TraceStats::reduce_count_cdf(&trace).len(), 2);
        assert_eq!(TraceStats::map_runtime_cdf(&trace).len(), 2);
        assert_eq!(TraceStats::reduce_runtime_cdf(&trace).len(), 2);
    }
}
