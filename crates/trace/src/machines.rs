//! Seeded generator of heterogeneous machine sets for cluster sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spear_cluster::{MachineSet, TransferMode};
use spear_dag::ResourceVec;

use crate::TraceError;

/// Knobs for generating a reproducible heterogeneous [`MachineSet`].
///
/// The experiment sweeps vary machine count and interconnect bandwidth
/// while keeping everything else pinned; this profile freezes those
/// knobs plus the heterogeneity spread, and [`generate`] turns a seed
/// into a concrete machine set deterministically.
///
/// Machine 0 always receives the full `base_capacity`, so any task that
/// is admissible on a unit cluster stays admissible on every generated
/// set; later machines shrink by a seeded factor in
/// `[1 − capacity_spread, 1]`. Off-diagonal links jitter around
/// `base_bandwidth` by up to `bandwidth_jitter` multiplicative steps.
///
/// [`generate`]: MachineProfile::generate
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Number of machines in the set.
    pub machines: usize,
    /// Resource dimensions per machine (CPU/memory = 2).
    pub dims: usize,
    /// Per-dimension capacity of the largest machine.
    pub base_capacity: f64,
    /// Heterogeneity: later machines keep a seeded fraction in
    /// `[1 − spread, 1]` of the base capacity. Zero makes the set
    /// homogeneous.
    pub capacity_spread: f64,
    /// Baseline link bandwidth in bytes per simulated time unit.
    pub base_bandwidth: u64,
    /// Each off-diagonal link is `base_bandwidth × k` for a seeded
    /// `k ∈ {1, …, 1 + jitter}`; zero pins every link to the baseline.
    pub bandwidth_jitter: u64,
    /// How cross-machine transfers route ([`TransferMode`]).
    pub mode: TransferMode,
    /// Upper bound on the seeded per-edge payload (see
    /// [`MachineSet::edge_bytes`]).
    pub max_edge_bytes: u64,
}

impl MachineProfile {
    /// The default sweep profile: `machines` CPU/memory boxes, the
    /// largest of unit capacity, moderate heterogeneity and direct
    /// links.
    pub fn sweep(machines: usize) -> Self {
        MachineProfile {
            machines,
            dims: 2,
            base_capacity: 1.0,
            capacity_spread: 0.5,
            base_bandwidth: 4,
            bandwidth_jitter: 1,
            mode: TransferMode::Direct,
            max_edge_bytes: 8,
        }
    }

    /// Generates the machine set deterministically from `seed`.
    ///
    /// The same seed also drives the set's per-edge payload sampling,
    /// so a `(profile, seed)` pair pins the whole network model.
    ///
    /// # Errors
    ///
    /// [`TraceError::Cluster`] if the knobs describe an invalid set
    /// (zero machines, dimensions, bandwidth or payload bound).
    pub fn generate(&self, seed: u64) -> Result<MachineSet, TraceError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.machines;
        let mut capacities = Vec::with_capacity(n);
        for m in 0..n {
            let keep = if m == 0 {
                1.0
            } else {
                1.0 - rng.gen::<f64>() * self.capacity_spread
            };
            capacities.push(ResourceVec::from_slice(&vec![
                self.base_capacity * keep;
                self.dims.max(1)
            ]));
        }
        let mut bandwidth = Vec::with_capacity(n * n);
        for src in 0..n {
            for dst in 0..n {
                let k = if src == dst || self.bandwidth_jitter == 0 {
                    1
                } else {
                    1 + rng.gen_range(0..=self.bandwidth_jitter)
                };
                bandwidth.push(self.base_bandwidth.saturating_mul(k));
            }
        }
        MachineSet::new(capacities, bandwidth, self.mode, seed, self.max_edge_bytes)
            .map_err(TraceError::Cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = MachineProfile::sweep(4);
        assert_eq!(p.generate(7).unwrap(), p.generate(7).unwrap());
        assert_ne!(p.generate(7).unwrap(), p.generate(8).unwrap());
    }

    #[test]
    fn machine_zero_keeps_the_full_capacity() {
        let ms = MachineProfile::sweep(3).generate(11).unwrap();
        assert_eq!(ms.len(), 3);
        assert_eq!(ms.capacity(0).as_slice(), &[1.0, 1.0]);
        for m in 1..3 {
            for &v in ms.capacity(m as u32).as_slice() {
                assert!((0.5..=1.0).contains(&v), "machine {m} capacity {v}");
            }
        }
    }

    #[test]
    fn bandwidth_stays_within_the_jitter_band() {
        let p = MachineProfile::sweep(3);
        let ms = p.generate(5).unwrap();
        for src in 0..3 {
            for dst in 0..3 {
                let bw = ms.bandwidth(src, dst);
                assert!(
                    bw == p.base_bandwidth || bw == p.base_bandwidth * 2,
                    "link {src}->{dst} bandwidth {bw}"
                );
            }
        }
    }

    #[test]
    fn degenerate_profiles_are_rejected() {
        let mut p = MachineProfile::sweep(0);
        assert!(p.generate(1).is_err());
        p.machines = 2;
        p.base_bandwidth = 0;
        assert!(p.generate(1).is_err());
    }
}
