//! The trace data model and JSON I/O.

use std::io::{Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};
use spear_dag::{Dag, DagBuilder, ResourceVec, Task};

use crate::TraceError;

/// One MapReduce job from a (real or synthetic) production trace:
/// per-task runtimes *and* per-task multi-resource demands for both
/// stages. Real production tasks differ in both (§II-C), and that
/// heterogeneity is exactly what multi-resource packing exploits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Job identifier (e.g. the Hive query id).
    pub id: String,
    /// Runtime of every map task, in time slots (seconds in the paper).
    pub map_runtimes: Vec<u64>,
    /// Runtime of every reduce task.
    pub reduce_runtimes: Vec<u64>,
    /// Resource demand of each map task (aligned with `map_runtimes`).
    pub map_demands: Vec<ResourceVec>,
    /// Resource demand of each reduce task (typically higher — §II-C).
    pub reduce_demands: Vec<ResourceVec>,
}

impl TraceJob {
    /// Number of map tasks.
    pub fn num_map(&self) -> usize {
        self.map_runtimes.len()
    }

    /// Number of reduce tasks.
    pub fn num_reduce(&self) -> usize {
        self.reduce_runtimes.len()
    }

    /// Mean map-task runtime.
    pub fn mean_map_runtime(&self) -> f64 {
        mean(&self.map_runtimes)
    }

    /// Mean reduce-task runtime.
    pub fn mean_reduce_runtime(&self) -> f64 {
        mean(&self.reduce_runtimes)
    }

    /// Builds the two-stage DAG: map tasks first (ids `0..num_map`), then
    /// reduce tasks, with a full map→reduce shuffle edge set.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if either stage is empty, the demand vectors
    /// are not aligned with the runtimes, or the demands disagree on
    /// resource dimensions.
    pub fn to_dag(&self) -> Result<Dag, TraceError> {
        if self.num_map() == 0 || self.num_reduce() == 0 {
            return Err(TraceError::EmptyStage {
                job: self.id.clone(),
            });
        }
        if self.map_demands.len() != self.num_map() {
            return Err(TraceError::MisalignedDemands {
                job: self.id.clone(),
                stage: "map",
                runtimes: self.num_map(),
                demands: self.map_demands.len(),
            });
        }
        if self.reduce_demands.len() != self.num_reduce() {
            return Err(TraceError::MisalignedDemands {
                job: self.id.clone(),
                stage: "reduce",
                runtimes: self.num_reduce(),
                demands: self.reduce_demands.len(),
            });
        }
        let dims = self.map_demands[0].dims();
        let mut b = DagBuilder::new(dims);
        let maps: Vec<_> = self
            .map_runtimes
            .iter()
            .zip(&self.map_demands)
            .enumerate()
            .map(|(i, (&rt, demand))| {
                b.add_task(Task::new(rt.max(1), demand.clone()).with_name(format!("map-{i}")))
            })
            .collect();
        let reduces: Vec<_> = self
            .reduce_runtimes
            .iter()
            .zip(&self.reduce_demands)
            .enumerate()
            .map(|(i, (&rt, demand))| {
                b.add_task(Task::new(rt.max(1), demand.clone()).with_name(format!("reduce-{i}")))
            })
            .collect();
        for &m in &maps {
            for &r in &reduces {
                b.add_edge(m, r)?;
            }
        }
        Ok(b.build()?)
    }
}

fn mean(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<u64>() as f64 / values.len() as f64
}

/// A collection of trace jobs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The jobs, in trace order.
    pub jobs: Vec<TraceJob>,
}

impl Trace {
    /// Applies the paper's filter: keeps only jobs with *more than*
    /// `min_tasks` map tasks and more than `min_tasks` reduce tasks
    /// (the paper uses 5).
    pub fn filtered(self, min_tasks: usize) -> Trace {
        Trace {
            jobs: self
                .jobs
                .into_iter()
                .filter(|j| j.num_map() > min_tasks && j.num_reduce() > min_tasks)
                .collect(),
        }
    }

    /// Serializes the trace as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), Box<dyn std::error::Error>> {
        serde_json::to_writer_pretty(writer, self)?;
        Ok(())
    }

    /// Deserializes a trace saved with [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Propagates deserialization and I/O errors.
    pub fn load<R: Read>(reader: R) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(serde_json::from_reader(reader)?)
    }

    /// Saves to a file path.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), Box<dyn std::error::Error>> {
        self.save(std::io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// Loads from a file path.
    ///
    /// # Errors
    ///
    /// Propagates deserialization and I/O errors.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, Box<dyn std::error::Error>> {
        Self::load(std::io::BufReader::new(std::fs::File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(maps: usize, reduces: usize) -> TraceJob {
        TraceJob {
            id: format!("job-{maps}-{reduces}"),
            map_runtimes: vec![10; maps],
            reduce_runtimes: vec![20; reduces],
            map_demands: vec![ResourceVec::from_slice(&[0.1, 0.1]); maps],
            reduce_demands: vec![ResourceVec::from_slice(&[0.2, 0.2]); reduces],
        }
    }

    #[test]
    fn job_accessors() {
        let j = job(3, 2);
        assert_eq!(j.num_map(), 3);
        assert_eq!(j.num_reduce(), 2);
        assert_eq!(j.mean_map_runtime(), 10.0);
        assert_eq!(j.mean_reduce_runtime(), 20.0);
    }

    #[test]
    fn to_dag_builds_shuffle() {
        let dag = job(4, 3).to_dag().unwrap();
        assert_eq!(dag.len(), 7);
        assert_eq!(dag.edges().len(), 12);
        assert_eq!(dag.critical_path_length(), 30);
    }

    #[test]
    fn to_dag_rejects_empty_and_misaligned_stages() {
        let mut empty = job(3, 2);
        empty.reduce_runtimes.clear();
        empty.reduce_demands.clear();
        assert!(matches!(empty.to_dag(), Err(TraceError::EmptyStage { .. })));

        let mut skewed = job(3, 2);
        skewed.map_demands.pop();
        assert!(matches!(
            skewed.to_dag(),
            Err(TraceError::MisalignedDemands { stage: "map", .. })
        ));
    }

    #[test]
    fn filter_drops_small_jobs() {
        let trace = Trace {
            jobs: vec![job(6, 6), job(5, 10), job(10, 5), job(7, 9)],
        };
        let kept = trace.filtered(5);
        assert_eq!(kept.jobs.len(), 2);
        assert!(kept
            .jobs
            .iter()
            .all(|j| j.num_map() > 5 && j.num_reduce() > 5));
    }

    #[test]
    fn json_roundtrip() {
        let trace = Trace {
            jobs: vec![job(6, 7), job(8, 9)],
        };
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let back = Trace::load(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }
}
