//! Seeded fault-environment recipes for the experiment harness.
//!
//! A [`FaultProfile`] is the *workload-level* description of an unreliable
//! cluster — failure and straggler rates, the straggler slowdown, the
//! retry budget — kept separate from any particular episode seed. The
//! experiment matrix (see EXPERIMENTS.md) sweeps profiles across the
//! scheduler roster; [`FaultProfile::plan`] freezes a profile into the
//! [`FaultPlan`] the simulator consumes, decorrelating the fault draws
//! from the arrival/DAG stream of the same experiment seed so changing
//! the fault rate never reshuffles which jobs arrive when.
//!
//! ```
//! use spear_trace::FaultProfile;
//!
//! let profile = FaultProfile::with_rate(0.10);
//! let plan = profile.plan(42);
//! assert_eq!(plan.fail_rate, 0.10);
//! // Same experiment seed, decorrelated fault stream:
//! assert_ne!(plan.seed, 42);
//! ```

use serde::{Deserialize, Serialize};
use spear_cluster::FaultPlan;

/// Salt separating the fault-plan seed domain from the arrival/DAG seed
/// domain (an experiment reuses one `u64` seed for both).
const FAULT_SEED_SALT: u64 = 0xfa17_0d0c_5eed_b00b;

/// A seed-free description of an unreliable execution environment.
///
/// The profile carries the paper-style fault knobs; combining it with an
/// experiment seed via [`FaultProfile::plan`] yields the deterministic
/// per-(task, attempt) [`FaultPlan`] the simulator replays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability that an execution attempt fails mid-run, in `[0, 1]`.
    pub fail_rate: f64,
    /// Probability that a non-failing attempt straggles, in `[0, 1]`.
    pub straggler_rate: f64,
    /// Occupancy multiplier of a straggling attempt (`> 1` to matter).
    pub straggler_factor: f64,
    /// Failed attempts a task may accumulate beyond its first before the
    /// episode fails fast.
    pub max_retries: u32,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// The reliable-cluster profile: no failures, no stragglers. Its plans
    /// are [`FaultPlan::none`] for every seed, leaving episodes
    /// bit-identical to the fault-free simulator.
    #[must_use]
    pub fn none() -> Self {
        FaultProfile {
            fail_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 1.0,
            max_retries: 0,
        }
    }

    /// The standard sweep point used by the experiment matrix: failure
    /// *and* straggler probability `rate`, 1.5× straggler slowdown, and a
    /// 3-retry budget (the defaults of `spear schedule --faults`).
    #[must_use]
    pub fn with_rate(rate: f64) -> Self {
        FaultProfile {
            fail_rate: rate,
            straggler_rate: rate,
            straggler_factor: 1.5,
            max_retries: 3,
        }
    }

    /// Whether plans from this profile can never perturb an episode.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.fail_rate <= 0.0 && (self.straggler_rate <= 0.0 || self.straggler_factor <= 1.0)
    }

    /// Freezes the profile into the deterministic [`FaultPlan`] of
    /// experiment seed `seed`. The plan seed is salted so fault draws stay
    /// decorrelated from the arrival/DAG stream generated from the same
    /// experiment seed — sweeping the fault rate never changes which jobs
    /// arrive when. The null profile maps to [`FaultPlan::none`] exactly
    /// (same seed included), preserving the fault-free bit-identity
    /// contract end to end.
    #[must_use]
    pub fn plan(&self, seed: u64) -> FaultPlan {
        if self.is_none() {
            return FaultPlan::none();
        }
        FaultPlan {
            seed: (seed ^ FAULT_SEED_SALT).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            fail_rate: self.fail_rate,
            straggler_rate: self.straggler_rate,
            straggler_factor: self.straggler_factor,
            max_retries: self.max_retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_profile_freezes_to_the_identity_plan() {
        for seed in [0, 7, 42, u64::MAX] {
            assert_eq!(FaultProfile::none().plan(seed), FaultPlan::none());
            assert!(FaultProfile::none().plan(seed).is_none());
        }
        // A straggler factor of 1.0 cannot perturb anything either.
        let harmless = FaultProfile {
            straggler_rate: 0.8,
            ..FaultProfile::none()
        };
        assert_eq!(harmless.plan(3), FaultPlan::none());
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let profile = FaultProfile::with_rate(0.1);
        assert_eq!(profile.plan(9), profile.plan(9));
        assert_ne!(profile.plan(9).seed, profile.plan(10).seed);
        // The plan seed is decorrelated from the experiment seed itself.
        assert_ne!(profile.plan(9).seed, 9);
    }

    #[test]
    fn rate_preset_matches_the_cli_defaults() {
        let p = FaultProfile::with_rate(0.2);
        assert_eq!(p.fail_rate, 0.2);
        assert_eq!(p.straggler_rate, 0.2);
        assert_eq!(p.straggler_factor, 1.5);
        assert_eq!(p.max_retries, 3);
        assert!(!p.is_none());
    }

    #[test]
    fn profile_round_trips_through_json() {
        let p = FaultProfile::with_rate(0.05);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
