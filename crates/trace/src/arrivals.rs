//! Seeded arrival-stream generation for the online multi-job experiments.
//!
//! The multi-job simulator ([`spear_cluster::JobQueue`]-based; see the
//! cluster crate) consumes a list of `(arrival, DAG)` pairs. This module
//! generates those streams reproducibly: a single `u64` seed fully
//! determines both the arrival clock ticks and every job's structure, so
//! two schedulers handed the same spec and seed compete on bit-identical
//! inputs.
//!
//! Two arrival processes are provided:
//!
//! * [`ArrivalProcess::Poisson`] — i.i.d. exponential inter-arrival gaps
//!   (the standard open-arrival cluster model), sampled by inverse CDF;
//!   gaps accumulate on an exact real-valued clock and each arrival is the
//!   floor of that clock, so discretization cannot bias the realized mean
//!   gap (per-gap rounding used to inflate it);
//! * [`ArrivalProcess::Periodic`] — a fixed gap, for load sweeps where
//!   only the job mix should vary.
//!
//! Jobs come from either generator the repo already has:
//! [`JobSource::Layered`] draws fresh random DAGs from a
//! [`LayeredDagSpec`], and [`JobSource::Trace`] replays the jobs of a
//! (real or synthetic) Hive [`Trace`] in order, cycling if the stream is
//! longer than the trace.
//!
//! ```
//! use spear_trace::{ArrivalProcess, ArrivalStreamSpec, JobSource};
//! use spear_dag::generator::LayeredDagSpec;
//!
//! let spec = ArrivalStreamSpec {
//!     jobs: 5,
//!     process: ArrivalProcess::Poisson { mean_gap: 10.0 },
//!     source: JobSource::Layered(LayeredDagSpec {
//!         num_tasks: 8,
//!         ..LayeredDagSpec::paper_training()
//!     }),
//! };
//! let stream = spec.generate(42).unwrap();
//! assert_eq!(stream.len(), 5);
//! assert_eq!(stream[0].0, 0); // the first job arrives at t=0
//! assert_eq!(stream, spec.generate(42).unwrap()); // seed-deterministic
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spear_dag::generator::LayeredDagSpec;
use spear_dag::Dag;

use crate::{Trace, TraceError};

/// The stochastic process generating inter-arrival gaps.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential i.i.d. gaps with the given mean (time slots) — a
    /// Poisson arrival process. Gaps accumulate on an exact real-valued
    /// clock; each arrival slot is the floor of that clock, so the
    /// realized mean gap tracks `mean_gap` without discretization bias.
    /// A mean of `0.0` makes every job arrive at `t = 0` (the degenerate
    /// batch case).
    Poisson {
        /// Mean inter-arrival gap in time slots.
        mean_gap: f64,
    },
    /// A fixed gap between consecutive arrivals.
    Periodic {
        /// Gap between consecutive arrivals in time slots.
        gap: u64,
    },
}

impl ArrivalProcess {
    /// Samples the real-valued gap between two consecutive arrivals —
    /// exactly one RNG draw for `Poisson` (keeping downstream DAG
    /// generation on a stable stream), none for `Periodic`.
    fn sample_gap(&self, rng: &mut StdRng) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => {
                // Inverse-CDF exponential sampling; `1 - u` keeps the
                // argument of `ln` strictly positive.
                let u: f64 = rng.gen();
                (-mean_gap * (1.0 - u).ln()).max(0.0)
            }
            ArrivalProcess::Periodic { gap } => gap as f64,
        }
    }
}

/// Where the stream's job DAGs come from.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// Fresh random layered DAGs, one per job, drawn from the stream RNG.
    Layered(LayeredDagSpec),
    /// Replay of a Hive trace's jobs in order, cycling when the stream is
    /// longer than the trace.
    Trace(Trace),
}

/// A reproducible recipe for a multi-job arrival stream.
#[derive(Debug, Clone)]
pub struct ArrivalStreamSpec {
    /// Number of jobs in the stream.
    pub jobs: usize,
    /// Arrival process generating the inter-arrival gaps.
    pub process: ArrivalProcess,
    /// Generator of the job DAGs.
    pub source: JobSource,
}

impl ArrivalStreamSpec {
    /// Generates the stream: `jobs` pairs of `(arrival, DAG)` in
    /// non-decreasing arrival order, the first at `t = 0`. The same
    /// `seed` always yields the same stream (arrivals *and* DAGs).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if a replayed trace job cannot be converted
    /// to a DAG (empty stage or misaligned demands), or if the spec asks
    /// for trace replay over an empty trace.
    pub fn generate(&self, seed: u64) -> Result<Vec<(u64, Dag)>, TraceError> {
        if let JobSource::Trace(trace) = &self.source {
            if trace.jobs.is_empty() && self.jobs > 0 {
                return Err(TraceError::EmptyStage {
                    job: "<empty trace>".to_owned(),
                });
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream = Vec::with_capacity(self.jobs);
        // Exact real-valued arrival clock; every emitted slot is its
        // floor. Flooring the *cumulative* clock (instead of rounding each
        // gap) keeps the realized mean gap unbiased: the total drift over
        // the whole stream is under one slot. Exactly representable below
        // 2^53, far beyond any stream length in use.
        let mut clock = 0.0f64;
        for i in 0..self.jobs {
            if i > 0 {
                clock += self.process.sample_gap(&mut rng);
            }
            let dag = match &self.source {
                JobSource::Layered(spec) => spec.generate(&mut rng),
                JobSource::Trace(trace) => trace.jobs[i % trace.jobs.len()].to_dag()?,
            };
            stream.push((clock.floor() as u64, dag));
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticTraceSpec;

    fn layered_spec(mean_gap: f64) -> ArrivalStreamSpec {
        ArrivalStreamSpec {
            jobs: 6,
            process: ArrivalProcess::Poisson { mean_gap },
            source: JobSource::Layered(LayeredDagSpec {
                num_tasks: 8,
                ..LayeredDagSpec::paper_training()
            }),
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let spec = layered_spec(12.0);
        let a = spec.generate(7).unwrap();
        let b = spec.generate(7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = layered_spec(12.0);
        let a = spec.generate(1).unwrap();
        let b = spec.generate(2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_start_at_zero() {
        for seed in 0..5 {
            let stream = layered_spec(9.0).generate(seed).unwrap();
            assert_eq!(stream[0].0, 0);
            for w in stream.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }

    /// Golden fixture: the exact arrival ticks of seed 42 are pinned so an
    /// accidental change to the sampling path (RNG stream order, rounding,
    /// gap formula) cannot slip through as a silent re-randomization of
    /// every experiment. These ticks survived the round→floor fix — at a
    /// mean gap of 10 the cumulative floor and the per-gap rounding agree
    /// on this seed — which also pins that the fix kept one RNG draw per
    /// gap (the DAG stream would shift otherwise).
    #[test]
    fn golden_arrival_stream_seed_42() {
        let stream = layered_spec(10.0).generate(42).unwrap();
        let arrivals: Vec<u64> = stream.iter().map(|(a, _)| *a).collect();
        assert_eq!(arrivals, vec![0, 7, 8, 8, 19, 48]);
        // The jobs themselves are pinned structurally: sizes are part of
        // the fixture so DAG generation stays on the same RNG stream.
        let sizes: Vec<usize> = stream.iter().map(|(_, d)| d.len()).collect();
        assert_eq!(sizes, vec![8; 6]);
    }

    /// Regression for the `.round()` bias: rounding each gap to the
    /// nearest slot systematically deflated sub-slot gaps (an exponential
    /// with mean 0.5 rounds to a realized mean of ~0.425, 15% low), which
    /// silently lightened the load of every high-rate arrival sweep.
    /// Flooring the cumulative clock keeps the whole stream's drift under
    /// one slot, so the realized mean gap stays within sampling noise.
    #[test]
    fn realized_mean_gap_is_unbiased() {
        let spec = ArrivalStreamSpec {
            jobs: 2000,
            process: ArrivalProcess::Poisson { mean_gap: 0.5 },
            source: JobSource::Layered(LayeredDagSpec {
                num_tasks: 4,
                ..LayeredDagSpec::paper_training()
            }),
        };
        let stream = spec.generate(1234).unwrap();
        let gaps = (stream.len() - 1) as f64;
        let realized = stream.last().unwrap().0 as f64 / gaps;
        // Sampling std of the mean is 0.5/sqrt(1999) ≈ 0.011; the old
        // rounding bias (≈ 0.075) sat far outside this tolerance.
        assert!(
            (realized - 0.5).abs() < 0.04,
            "realized mean gap {realized} drifted from 0.5"
        );
    }

    #[test]
    fn zero_mean_gap_degenerates_to_batch_arrivals() {
        let stream = layered_spec(0.0).generate(3).unwrap();
        assert!(stream.iter().all(|(a, _)| *a == 0));
    }

    #[test]
    fn periodic_arrivals_are_exact() {
        let spec = ArrivalStreamSpec {
            process: ArrivalProcess::Periodic { gap: 5 },
            ..layered_spec(0.0)
        };
        let arrivals: Vec<u64> = spec.generate(0).unwrap().iter().map(|(a, _)| *a).collect();
        assert_eq!(arrivals, vec![0, 5, 10, 15, 20, 25]);
    }

    #[test]
    fn trace_replay_cycles_in_order() {
        let trace = SyntheticTraceSpec {
            num_jobs: 3,
            ..SyntheticTraceSpec::paper()
        }
        .generate(5);
        let expected: Vec<Dag> = trace.jobs.iter().map(|j| j.to_dag().unwrap()).collect();
        let spec = ArrivalStreamSpec {
            jobs: 5,
            process: ArrivalProcess::Periodic { gap: 3 },
            source: JobSource::Trace(trace),
        };
        let stream = spec.generate(0).unwrap();
        assert_eq!(stream.len(), 5);
        for (i, (_, dag)) in stream.iter().enumerate() {
            assert_eq!(dag, &expected[i % 3], "job {i} out of replay order");
        }
    }

    #[test]
    fn empty_trace_is_an_error() {
        let spec = ArrivalStreamSpec {
            jobs: 2,
            process: ArrivalProcess::Periodic { gap: 1 },
            source: JobSource::Trace(Trace { jobs: Vec::new() }),
        };
        assert!(spec.generate(0).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Seed determinism over the whole parameter box: arrivals and
            /// job structure replay exactly.
            #[test]
            fn stream_is_a_pure_function_of_the_seed(
                seed in 0u64..1000,
                jobs in 1usize..8,
                mean_gap in 0.0f64..50.0,
            ) {
                let spec = ArrivalStreamSpec {
                    jobs,
                    process: ArrivalProcess::Poisson { mean_gap },
                    source: JobSource::Layered(LayeredDagSpec {
                        num_tasks: 6,
                        ..LayeredDagSpec::paper_training()
                    }),
                };
                let a = spec.generate(seed).unwrap();
                let b = spec.generate(seed).unwrap();
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(a.len(), jobs);
                prop_assert_eq!(a[0].0, 0);
                for w in a.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0);
                }
            }
        }
    }
}
