//! Golden tests for [`TraceJob::to_dag`] over a committed trace fixture,
//! plus statistical sanity checks on the synthetic trace generator.
//!
//! The DAG golden is byte-exact serialized JSON: if the DAG model changes
//! deliberately, regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p spear-trace --test trace_model`.

use std::path::{Path, PathBuf};

use spear_dag::{Dag, TaskId};
use spear_trace::{SyntheticTraceSpec, Trace, TraceJob};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn sample() -> Trace {
    Trace::load_from_path(fixture_path("hive_sample.json")).expect("fixture parses")
}

#[test]
fn fixture_jobs_build_hand_computed_dags() {
    let trace = sample();
    assert_eq!(trace.jobs.len(), 2);

    // Job A: 3 maps {4, 6, 5} × 2 reduces {7, 3}, full shuffle.
    let a: Dag = trace.jobs[0].to_dag().unwrap();
    assert_eq!(a.len(), 5);
    assert_eq!(a.edges().len(), 3 * 2);
    assert_eq!(
        a.sources(),
        vec![TaskId::new(0), TaskId::new(1), TaskId::new(2)]
    );
    assert_eq!(a.sinks(), vec![TaskId::new(3), TaskId::new(4)]);
    // Critical path: slowest map (6) + slowest reduce (7).
    assert_eq!(a.critical_path_length(), 13);
    assert_eq!(a.task(TaskId::new(0)).name(), Some("map-0"));
    assert_eq!(a.task(TaskId::new(4)).name(), Some("reduce-1"));

    // Job B: 2 maps {2, 2} × 3 reduces {1, 9, 4}.
    let b = trace.jobs[1].to_dag().unwrap();
    assert_eq!(b.len(), 5);
    assert_eq!(b.edges().len(), 2 * 3);
    assert_eq!(b.critical_path_length(), 2 + 9);
}

#[test]
fn to_dag_matches_committed_golden() {
    let dag = sample().jobs[0].to_dag().unwrap();
    let rendered = serde_json::to_string_pretty(&dag).expect("dag serializes");
    let golden_path = fixture_path("hive_sample_a.dag.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("golden writable");
    }
    let golden = std::fs::read_to_string(&golden_path).expect("golden readable");
    assert_eq!(
        rendered, golden,
        "to_dag output drifted from tests/fixtures/hive_sample_a.dag.json; \
         regenerate with UPDATE_GOLDEN=1 if the change is deliberate"
    );
    // And the golden deserializes back to the same DAG.
    let back: Dag = serde_json::from_str(&golden).expect("golden parses");
    assert_eq!(dag, back);
}

#[test]
fn trace_round_trips_through_save_and_load() {
    let trace = sample();
    let mut buf = Vec::new();
    trace.save(&mut buf).unwrap();
    let back = Trace::load(buf.as_slice()).unwrap();
    assert_eq!(trace, back);
}

/// Every synthetic job's DAG is an exact two-stage shuffle: map fan-out
/// equals the reduce count, reduce fan-in equals the map count, and the
/// stage counts respect the filter and the paper maxima.
#[test]
fn synthetic_jobs_have_bounded_stages_and_exact_shuffle_fanout() {
    let spec = SyntheticTraceSpec::paper();
    let trace = spec.generate(11);
    assert_eq!(trace.jobs.len(), spec.num_jobs);
    for job in &trace.jobs {
        let (m, r) = (job.num_map(), job.num_reduce());
        assert!(
            m > spec.filter_min_tasks && m <= spec.map_count_max,
            "{}: {m} map tasks",
            job.id
        );
        assert!(
            r > spec.filter_min_tasks && r <= spec.reduce_count_max,
            "{}: {r} reduce tasks",
            job.id
        );

        let dag = job.to_dag().unwrap();
        assert_eq!(dag.len(), m + r);
        assert_eq!(dag.edges().len(), m * r, "{}: not a full shuffle", job.id);
        for i in 0..m {
            let id = TaskId::new(i);
            assert_eq!(dag.children(id).len(), r, "{}: map fan-out", job.id);
            assert!(dag.parents(id).is_empty(), "{}: map has parents", job.id);
        }
        for i in m..m + r {
            let id = TaskId::new(i);
            assert_eq!(dag.parents(id).len(), m, "{}: reduce fan-in", job.id);
            assert!(
                dag.children(id).is_empty(),
                "{}: reduce has children",
                job.id
            );
        }
    }
}

/// Synthetic runtimes and demands stay in their calibrated envelopes.
#[test]
fn synthetic_marginals_stay_in_their_envelopes() {
    let trace = SyntheticTraceSpec::paper().generate(12);
    for job in &trace.jobs {
        for &rt in job.map_runtimes.iter().chain(&job.reduce_runtimes) {
            assert!(rt >= 1, "{}: zero runtime", job.id);
        }
        for d in job.map_demands.iter().chain(&job.reduce_demands) {
            assert_eq!(d.dims(), 2);
            for r in 0..d.dims() {
                assert!(
                    (0.02..=0.9).contains(&d[r]),
                    "{}: demand {} out of range",
                    job.id,
                    d[r]
                );
            }
        }
    }
}

#[test]
fn degenerate_synthetic_jobs_are_reported_not_panicked() {
    // An empty stage is a typed error even for hand-built jobs.
    let job = TraceJob {
        id: "empty".into(),
        map_runtimes: vec![1],
        reduce_runtimes: vec![],
        map_demands: vec![spear_dag::ResourceVec::from_slice(&[0.1])],
        reduce_demands: vec![],
    };
    let err = job.to_dag().unwrap_err();
    assert!(
        err.to_string().contains("needs map and reduce"),
        "got {err}"
    );
}
