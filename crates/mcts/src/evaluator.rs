//! State evaluators for truncated rollouts (extension beyond the paper).
//!
//! Spear's wall-clock on a fast substrate is dominated by full-length
//! DRL rollouts (every step is an MLP forward pass). A
//! [`StateEvaluator`] lets the search cut a rollout off after a bounded
//! number of steps and bootstrap the rest of the makespan from a learned
//! value function — the AlphaZero-style middle ground measured by the
//! `value_extension` experiment.

use spear_cluster::SimState;
use spear_nn::{InferScratch, InferenceEngine, Precision};
use spear_rl::{EvalCacheStats, ValueCache, ValueCacheF32, ValueNetwork};

use crate::PolicyContext;

/// Entries in the value-estimate cache; matches the policy cache size
/// (sized for one episode's distinct states, cleared per episode). The
/// `f32` fast-precision cache doubles this — each entry is half the
/// footprint, so the same memory budget holds twice the states.
const VALUE_CACHE_CAPACITY: usize = 32_768;

/// Estimates the *final* makespan of the schedule from a partial state.
pub trait StateEvaluator {
    /// The estimate, in time slots; must be ≥ `state.max_finish()`.
    fn estimate_final_makespan(&mut self, ctx: &PolicyContext<'_>, state: &SimState) -> f64;

    /// Evaluator name for reports.
    fn name(&self) -> &str;

    /// Notifies the evaluator that a new scheduling episode is starting.
    /// Cached evaluators clear their transposition tables here; entries
    /// stay valid across decisions within one episode (fixed DAG, spec,
    /// and weights) but not across episodes.
    fn on_episode_start(&mut self) {}

    /// Hit/miss/evict counters of the evaluator's cache. Uncached
    /// evaluators report zeros.
    fn cache_stats(&self) -> EvalCacheStats {
        EvalCacheStats::default()
    }
}

/// A trained [`ValueNetwork`] as a rollout evaluator. The normalization
/// scale is the job's serial total work, matching
/// [`spear_rl::train_value_network`]'s training targets.
#[derive(Debug, Clone)]
pub struct ValueEvaluator {
    value: ValueNetwork,
    // Fingerprint-keyed estimate cache, generation-cleared per episode;
    // `None` when disabled for differential testing. The estimate is a
    // pure function of fingerprint-covered state (features, clock and
    // max_finish all derive from placements/running/used), so a hit is
    // bit-identical to recomputation.
    cache: Option<ValueCache>,
    // Fast-precision state: the `f32` weight snapshot, its scratch, and
    // the half-footprint `f32` estimate cache. Estimates are rounded to
    // `f32` *before* they are returned or stored, so cached and uncached
    // fast runs stay bit-identical.
    precision: Precision,
    engine: Option<InferenceEngine>,
    scratch: InferScratch,
    cache_f32: Option<ValueCacheF32>,
}

impl ValueEvaluator {
    /// Wraps a trained value network, with the estimate cache enabled.
    pub fn new(value: ValueNetwork) -> Self {
        Self::with_cache(value, true)
    }

    /// Wraps a trained value network, caching estimates by state
    /// fingerprint iff `eval_cache` is set.
    pub fn with_cache(value: ValueNetwork, eval_cache: bool) -> Self {
        Self::with_cache_precision(value, eval_cache, Precision::Exact)
    }

    /// [`ValueEvaluator::with_cache`] with an explicit inference
    /// precision. `Fast` snapshots the weights into an `f32`
    /// [`InferenceEngine`] once, and sizes the estimate cache at double
    /// capacity (entries are half the width).
    pub fn with_cache_precision(
        value: ValueNetwork,
        eval_cache: bool,
        precision: Precision,
    ) -> Self {
        let (cache, engine, cache_f32) = match precision {
            Precision::Exact => (
                eval_cache.then(|| ValueCache::new(VALUE_CACHE_CAPACITY)),
                None,
                None,
            ),
            Precision::Fast => (
                None,
                Some(value.inference_engine()),
                eval_cache.then(|| ValueCacheF32::new(2 * VALUE_CACHE_CAPACITY)),
            ),
        };
        ValueEvaluator {
            value,
            cache,
            precision,
            engine,
            scratch: InferScratch::new(),
            cache_f32,
        }
    }

    /// The wrapped network.
    pub fn value(&self) -> &ValueNetwork {
        &self.value
    }

    /// The evaluator's inference precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    fn estimate_fast(&mut self, ctx: &PolicyContext<'_>, state: &SimState) -> f64 {
        let key = self.cache_f32.is_some().then(|| state.fingerprint());
        if let (Some(cache), Some(key)) = (self.cache_f32.as_mut(), key) {
            if let Some(v) = cache.get(key) {
                return f64::from(v);
            }
        }
        let scale = ctx.dag.total_work().max(1) as f64;
        let engine = self
            .engine
            .as_ref()
            .expect("fast mode always has an engine");
        let estimate = self.value.predict_final_fast(
            engine,
            &mut self.scratch,
            ctx.dag,
            ctx.spec,
            state,
            ctx.features,
            scale,
        ) as f32;
        if let (Some(cache), Some(key)) = (self.cache_f32.as_mut(), key) {
            cache.insert(key, estimate);
        }
        f64::from(estimate)
    }
}

impl StateEvaluator for ValueEvaluator {
    fn estimate_final_makespan(&mut self, ctx: &PolicyContext<'_>, state: &SimState) -> f64 {
        if self.precision == Precision::Fast {
            return self.estimate_fast(ctx, state);
        }
        let key = self.cache.is_some().then(|| state.fingerprint());
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key) {
            if let Some(v) = cache.get(key) {
                return v;
            }
        }
        let scale = ctx.dag.total_work().max(1) as f64;
        let estimate = self
            .value
            .predict_final(ctx.dag, ctx.spec, state, ctx.features, scale);
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key) {
            cache.insert(key, estimate);
        }
        estimate
    }

    fn name(&self) -> &str {
        match self.precision {
            Precision::Exact => "value-network",
            Precision::Fast => "value-network-fast",
        }
    }

    fn on_episode_start(&mut self) {
        if let Some(cache) = self.cache.as_mut() {
            cache.begin_generation();
        }
        if let Some(cache) = self.cache_f32.as_mut() {
            cache.begin_generation();
        }
    }

    fn cache_stats(&self) -> EvalCacheStats {
        let exact = self
            .cache
            .as_ref()
            .map(ValueCache::stats)
            .unwrap_or_default();
        let fast = self
            .cache_f32
            .as_ref()
            .map(ValueCacheF32::stats)
            .unwrap_or_default();
        exact.merged(fast)
    }
}

/// A cheap analytic evaluator: the maximum of the committed finish times
/// and the critical-path bound over unfinished work. Used as the
/// ablation's no-learning reference.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoundEvaluator;

impl StateEvaluator for BoundEvaluator {
    fn estimate_final_makespan(&mut self, ctx: &PolicyContext<'_>, state: &SimState) -> f64 {
        let mut estimate = state.max_finish() as f64;
        for &t in state.ready() {
            let bl = ctx.features.task(t).b_level;
            estimate = estimate.max((state.clock() + bl) as f64);
        }
        for run in state.running() {
            for &c in ctx.dag.children(run.task) {
                if state.start_of(c).is_none() {
                    let bl = ctx.features.task(c).b_level;
                    estimate = estimate.max((run.finish + bl) as f64);
                }
            }
        }
        estimate
    }

    fn name(&self) -> &str {
        "bound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_cluster::{Action, ClusterSpec};
    use spear_dag::analysis::GraphFeatures;
    use spear_dag::{DagBuilder, ResourceVec, Task};

    /// The estimate cache must (a) hit on a repeated state with a
    /// bit-identical value, and (b) be invalidated by
    /// `on_episode_start`, so stale estimates never leak across
    /// episodes.
    #[test]
    fn value_evaluator_cache_hits_and_clears_per_episode() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use spear_dag::generator::LayeredDagSpec;
        use spear_rl::FeatureConfig;

        let dag = LayeredDagSpec {
            num_tasks: 10,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(11));
        let spec = ClusterSpec::unit(2);
        let features = GraphFeatures::compute(&dag);
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let state = spear_cluster::SimState::new(&dag, &spec).unwrap();

        let value = ValueNetwork::new(
            FeatureConfig::small(spec.dims()),
            &[8],
            &mut StdRng::seed_from_u64(5),
        );
        let mut uncached = ValueEvaluator::with_cache(value.clone(), false);
        let mut cached = ValueEvaluator::with_cache(value, true);

        let reference = uncached.estimate_final_makespan(&ctx, &state);
        assert_eq!(uncached.cache_stats(), EvalCacheStats::default());

        let miss = cached.estimate_final_makespan(&ctx, &state);
        let hit = cached.estimate_final_makespan(&ctx, &state);
        assert_eq!(miss.to_bits(), reference.to_bits());
        assert_eq!(hit.to_bits(), reference.to_bits());
        let stats = cached.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));

        // A new episode invalidates the table: the same state misses
        // again (re-inserted under the new generation), then hits.
        cached.on_episode_start();
        let refreshed = cached.estimate_final_makespan(&ctx, &state);
        assert_eq!(refreshed.to_bits(), reference.to_bits());
        let stats = cached.cache_stats();
        assert_eq!((stats.misses, stats.hits), (2, 1));
        let _ = cached.estimate_final_makespan(&ctx, &state);
        assert_eq!(cached.cache_stats().hits, 2);
    }

    /// Fast-precision estimates must (a) be bit-identical between the
    /// cached and uncached evaluators (the `f32` rounding happens before
    /// the cache, not because of it), (b) hit the `f32` cache on a
    /// repeat, and (c) track the exact `f64` estimate within `f32`
    /// forward-pass tolerance.
    #[test]
    fn fast_value_evaluator_is_cache_invariant_and_tracks_exact() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use spear_dag::generator::LayeredDagSpec;
        use spear_nn::Precision;
        use spear_rl::FeatureConfig;

        let dag = LayeredDagSpec {
            num_tasks: 12,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(13));
        let spec = ClusterSpec::unit(2);
        let features = GraphFeatures::compute(&dag);
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let state = spear_cluster::SimState::new(&dag, &spec).unwrap();

        let value = ValueNetwork::new(
            FeatureConfig::small(spec.dims()),
            &[16],
            &mut StdRng::seed_from_u64(9),
        );
        let mut exact = ValueEvaluator::with_cache(value.clone(), false);
        let mut fast_uncached =
            ValueEvaluator::with_cache_precision(value.clone(), false, Precision::Fast);
        let mut fast_cached = ValueEvaluator::with_cache_precision(value, true, Precision::Fast);
        assert_eq!(fast_cached.name(), "value-network-fast");
        assert_eq!(fast_cached.precision(), Precision::Fast);

        let reference = fast_uncached.estimate_final_makespan(&ctx, &state);
        let miss = fast_cached.estimate_final_makespan(&ctx, &state);
        let hit = fast_cached.estimate_final_makespan(&ctx, &state);
        assert_eq!(miss.to_bits(), reference.to_bits());
        assert_eq!(hit.to_bits(), reference.to_bits());
        let stats = fast_cached.cache_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));

        let truth = exact.estimate_final_makespan(&ctx, &state);
        let scale = dag.total_work().max(1) as f64;
        assert!(
            (truth - reference).abs() <= 1e-3 * scale,
            "fast {reference} drifted from exact {truth} (scale {scale})"
        );
        assert!(reference >= state.max_finish() as f64);
    }

    #[test]
    fn bound_evaluator_respects_commitments() {
        let mut b = DagBuilder::new(1);
        let a = b.add_task(Task::new(5, ResourceVec::from_slice(&[0.5])));
        let c = b.add_task(Task::new(3, ResourceVec::from_slice(&[0.5])));
        b.add_edge(a, c).unwrap();
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let mut state = spear_cluster::SimState::new(&dag, &spec).unwrap();
        let mut ev = BoundEvaluator;
        // Initially: clock 0 + b-level(a)=8.
        assert_eq!(ev.estimate_final_makespan(&ctx, &state), 8.0);
        state.apply(&dag, Action::Schedule(a)).unwrap();
        // a finishes at 5, its unscheduled child adds b-level 3.
        assert_eq!(ev.estimate_final_makespan(&ctx, &state), 8.0);
        assert_eq!(ev.name(), "bound");
    }
}
