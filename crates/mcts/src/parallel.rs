//! Root-parallel MCTS.
//!
//! The paper notes (§V-B.1) that the scheduling latency "can be further
//! reduced using multiprocessing techniques as MCTS can easily be
//! parallelized". This module implements the simplest sound scheme, *root
//! parallelization*: `workers` independent searches with different RNG
//! seeds run concurrently, and the best schedule wins. Independent trees
//! need no synchronization, and with max-value exploitation the best-of-K
//! result is exactly what a K×-budget sequential search would have kept
//! from those K subtrees.

use std::thread;

use spear_cluster::{ClusterSpec, JobQueue, Schedule, SpearError};
use spear_dag::Dag;
use spear_obs::MetricsRegistry;
use spear_sched::Scheduler;

use crate::{MctsScheduler, SearchStats};

/// Runs `workers` independent [`MctsScheduler`]s concurrently and keeps
/// the best schedule.
///
/// The factory receives a per-worker seed (derived from the base config's
/// seed) and must build the scheduler for that worker — this is how the
/// DRL policy network gets cloned per thread.
///
/// ```
/// use rand::SeedableRng;
/// use spear_dag::generator::LayeredDagSpec;
/// use spear_cluster::ClusterSpec;
/// use spear_mcts::{MctsConfig, MctsScheduler, RootParallelMcts};
/// use spear_sched::Scheduler;
///
/// let dag = LayeredDagSpec { num_tasks: 12, ..LayeredDagSpec::paper_training() }
///     .generate(&mut rand::rngs::StdRng::seed_from_u64(3));
/// let spec = ClusterSpec::unit(2);
/// let mut parallel = RootParallelMcts::new(4, |seed| {
///     MctsScheduler::pure(MctsConfig {
///         initial_budget: 30,
///         min_budget: 5,
///         seed,
///         ..MctsConfig::default()
///     })
/// });
/// let schedule = parallel.schedule(&dag, &spec).unwrap();
/// schedule.validate(&dag, &spec).unwrap();
/// ```
pub struct RootParallelMcts<F> {
    workers: usize,
    factory: F,
    registry: MetricsRegistry,
}

impl<F> RootParallelMcts<F>
where
    F: Fn(u64) -> MctsScheduler + Sync,
{
    /// Creates a pool of `workers` independent searches.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize, factory: F) -> Self {
        assert!(workers > 0, "need at least one worker");
        RootParallelMcts {
            workers,
            factory,
            registry: MetricsRegistry::disabled(),
        }
    }

    /// Number of concurrent searches.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Attaches a metrics registry: every worker records its `mcts.*`
    /// metrics into its own lock-free sink (labelled `mcts-worker-<n>`),
    /// merged when the registry is snapshotted. Recording never
    /// synchronizes workers with each other.
    #[must_use]
    pub fn with_registry(mut self, registry: &MetricsRegistry) -> Self {
        self.registry = registry.clone();
        self
    }

    /// Schedules `dag`, returning the best schedule plus the statistics
    /// of every worker that succeeded (in worker order).
    ///
    /// All workers are always drained: one failing worker does not
    /// discard the others' results.
    ///
    /// # Errors
    ///
    /// Returns the first worker error only if *every* search fails (they
    /// can only fail if the DAG does not fit the cluster — in which case
    /// all workers fail identically).
    pub fn schedule_with_stats(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, Vec<SearchStats>), SpearError> {
        self.race_workers(|scheduler| scheduler.schedule_with_stats(dag, spec))
    }

    /// Multi-job counterpart of [`RootParallelMcts::schedule_with_stats`]:
    /// every worker searches the same arrival stream independently and the
    /// best union schedule wins.
    ///
    /// # Errors
    ///
    /// Same contract as [`RootParallelMcts::schedule_with_stats`].
    pub fn schedule_multi_with_stats(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, Vec<SearchStats>), SpearError> {
        self.race_workers(|scheduler| scheduler.schedule_multi_with_stats(queue, spec))
    }

    /// Spawns the worker pool, runs `search` in each, and keeps the best
    /// schedule (deterministic tie-break on the lowest worker seed).
    fn race_workers<R>(&mut self, search: R) -> Result<(Schedule, Vec<SearchStats>), SpearError>
    where
        R: Fn(&mut MctsScheduler) -> Result<(Schedule, SearchStats), SpearError> + Sync,
    {
        let results: Vec<Result<(Schedule, SearchStats), SpearError>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|w| {
                    let factory = &self.factory;
                    let registry = &self.registry;
                    let search = &search;
                    scope.spawn(move || {
                        let mut scheduler = factory(w as u64);
                        if spear_obs::compiled() && registry.is_active() {
                            scheduler.set_obs(&registry.sink(&format!("mcts-worker-{w}")));
                        }
                        search(&mut scheduler)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        // Winner selection is an explicit (makespan, worker seed) argmin,
        // not first-wins over the join order: equal-makespan schedules can
        // differ in task placement, so the tie must break on something
        // deterministic and meaningful — the lowest worker seed — to keep
        // the parallel result reproducible even if the drain order ever
        // changes (e.g. completion-order joins).
        let mut best: Option<(Schedule, u64)> = None;
        let mut stats = Vec::with_capacity(self.workers);
        let mut first_err: Option<SpearError> = None;
        for (worker, result) in results.into_iter().enumerate() {
            let seed = worker as u64;
            match result {
                Ok((schedule, s)) => {
                    stats.push(s);
                    let better = best.as_ref().is_none_or(|(b, b_seed)| {
                        (schedule.makespan(), seed) < (b.makespan(), *b_seed)
                    });
                    if better {
                        best = Some((schedule, seed));
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match best {
            Some((schedule, _)) => Ok((schedule, stats)),
            None => Err(first_err.expect("at least one worker ran")),
        }
    }

    /// Like [`RootParallelMcts::schedule_with_stats`], but folds the
    /// per-worker statistics into one [`SearchStats`] via
    /// [`SearchStats::merged`]: counters summed, wall time the maximum
    /// over the overlapping workers.
    ///
    /// # Errors
    ///
    /// Same contract as [`RootParallelMcts::schedule_with_stats`].
    pub fn schedule_with_merged_stats(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        let (schedule, stats) = self.schedule_with_stats(dag, spec)?;
        let merged = stats
            .into_iter()
            .fold(SearchStats::default(), SearchStats::merged);
        Ok((schedule, merged))
    }
}

impl<F> Scheduler for RootParallelMcts<F>
where
    F: Fn(u64) -> MctsScheduler + Sync,
{
    fn name(&self) -> &str {
        "mcts-parallel"
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        Ok(self.schedule_with_stats(dag, spec)?.0)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        Ok(self.schedule_multi_with_stats(queue, spec)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MctsConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;

    fn dag(seed: u64) -> Dag {
        LayeredDagSpec {
            num_tasks: 14,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(seed))
    }

    fn factory(budget: u64) -> impl Fn(u64) -> MctsScheduler + Sync {
        move |seed| {
            MctsScheduler::pure(MctsConfig {
                initial_budget: budget,
                min_budget: 5,
                seed,
                ..MctsConfig::default()
            })
        }
    }

    #[test]
    fn parallel_schedule_is_valid() {
        let dag = dag(1);
        let spec = ClusterSpec::unit(2);
        let mut p = RootParallelMcts::new(3, factory(20));
        let (schedule, stats) = p.schedule_with_stats(&dag, &spec).unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(p.workers(), 3);
        assert_eq!(p.name(), "mcts-parallel");
    }

    #[test]
    fn best_of_workers_never_loses_to_any_single_worker() {
        let dag = dag(2);
        let spec = ClusterSpec::unit(2);
        let (best, _) = RootParallelMcts::new(4, factory(25))
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        for seed in 0..4u64 {
            let single = factory(25)(seed).schedule(&dag, &spec).unwrap();
            assert!(best.makespan() <= single.makespan());
        }
    }

    #[test]
    fn parallel_is_deterministic() {
        let dag = dag(3);
        let spec = ClusterSpec::unit(2);
        let a = RootParallelMcts::new(2, factory(15))
            .schedule(&dag, &spec)
            .unwrap();
        let b = RootParallelMcts::new(2, factory(15))
            .schedule(&dag, &spec)
            .unwrap();
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = RootParallelMcts::new(0, factory(10));
    }

    /// With every worker running the *same* seed, all makespans tie — the
    /// winner must then be worker 0's schedule, exactly (tie-break on the
    /// lowest worker seed, not on join order or placement differences).
    #[test]
    fn equal_makespans_break_ties_toward_lowest_seed() {
        let dag = dag(4);
        let spec = ClusterSpec::unit(2);
        let same_seed = |_w: u64| {
            MctsScheduler::pure(MctsConfig {
                initial_budget: 20,
                min_budget: 5,
                seed: 0,
                ..MctsConfig::default()
            })
        };
        let (best, stats) = RootParallelMcts::new(3, same_seed)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        assert_eq!(stats.len(), 3);
        let worker0 = same_seed(0).schedule(&dag, &spec).unwrap();
        assert_eq!(best, worker0, "tie must resolve to the lowest seed");
    }

    #[test]
    fn root_parallel_multi_job_keeps_the_best_stream_schedule() {
        let queue = JobQueue::new(vec![(0u64, dag(6)), (5, dag(7))]).unwrap();
        let spec = ClusterSpec::unit(2);
        let (best, stats) = RootParallelMcts::new(3, factory(20))
            .schedule_multi_with_stats(&queue, &spec)
            .unwrap();
        best.validate(queue.union_dag(), &spec).unwrap();
        assert_eq!(stats.len(), 3);
        for seed in 0..3u64 {
            let single = factory(20)(seed).schedule_multi(&queue, &spec).unwrap();
            assert!(best.makespan() <= single.makespan());
        }
    }

    #[test]
    fn merged_stats_sum_counters_and_max_elapsed() {
        let dag = dag(5);
        let spec = ClusterSpec::unit(2);
        let (s1, all) = RootParallelMcts::new(3, factory(20))
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        let (s2, merged) = RootParallelMcts::new(3, factory(20))
            .schedule_with_merged_stats(&dag, &spec)
            .unwrap();
        assert_eq!(s1.makespan(), s2.makespan());
        assert_eq!(
            merged.iterations,
            all.iter().map(|s| s.iterations).sum::<u64>()
        );
        assert_eq!(
            merged.rollout_steps,
            all.iter().map(|s| s.rollout_steps).sum::<u64>()
        );
        assert_eq!(
            merged.tree_nodes,
            all.iter().map(|s| s.tree_nodes).sum::<usize>()
        );
        // Workers overlap in time: merged wall time is a max, not a sum
        // (checked on the merge itself; cross-run timing is not
        // comparable).
        let direct = all
            .iter()
            .copied()
            .fold(SearchStats::default(), SearchStats::merged);
        let max = all.iter().map(|s| s.elapsed_seconds).fold(0.0, f64::max);
        assert_eq!(direct.elapsed_seconds, max);
        assert!(merged.elapsed_seconds > 0.0);
    }
}
