//! Expansion and rollout policies: random (classic MCTS), greedy
//! heuristic, and DRL-guided (Spear).

use rand::rngs::StdRng;
use rand::Rng;
use spear_cluster::env::{DecisionPolicy, EnvContext};
use spear_cluster::{Action, ClusterSpec, SimState};
use spear_dag::analysis::GraphFeatures;
use spear_dag::Dag;
use spear_nn::{InferScratch, InferenceEngine, Precision};
use spear_rl::{EvalCache, EvalCacheF32, EvalCacheStats, PolicyNetwork, StateView};

/// Read-only context handed to policies at every decision.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// The job being scheduled.
    pub dag: &'a Dag,
    /// The cluster.
    pub spec: &'a ClusterSpec,
    /// Precomputed graph features of the job.
    pub features: &'a GraphFeatures,
}

/// A policy guiding MCTS in two places: picking which untried action to
/// *expand*, and picking actions during the *rollout* simulation.
///
/// Classic MCTS uses [`RandomPolicy`] for both; Spear substitutes the
/// trained [`DrlPolicy`].
pub trait SearchPolicy {
    /// Picks one of `untried` to expand (returns an index into `untried`).
    ///
    /// `untried` is never empty.
    fn choose_expansion(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        untried: &[Action],
        rng: &mut StdRng,
    ) -> usize;

    /// Picks one of `legal` during a rollout.
    ///
    /// `legal` is never empty.
    fn choose_rollout(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action;

    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Cumulative policy-network forward passes this policy has run.
    /// Non-learned policies report zero.
    fn inferences(&self) -> u64 {
        0
    }

    /// Notifies the policy that a new scheduling episode (one complete
    /// schedule of one DAG) is starting. Cached policies clear their
    /// transposition tables here: within an episode the DAG, spec,
    /// graph features, and network weights are fixed, so
    /// fingerprint-keyed entries stay valid across the episode's
    /// decisions — but entries from a previous episode index a
    /// different state space and must not survive into this one.
    fn on_episode_start(&mut self) {}

    /// Hit/miss/evict counters of the policy's inference cache.
    /// Uncached policies report zeros.
    fn cache_stats(&self) -> EvalCacheStats {
        EvalCacheStats::default()
    }

    /// Inferences skipped because the decision was forced (a single
    /// untried/legal action). Distinct from cache hits: a skip never
    /// consults the network's distribution at all.
    fn inference_skips(&self) -> u64 {
        0
    }
}

/// Adapts the rollout half of a [`SearchPolicy`] to the environment
/// layer's [`DecisionPolicy`], so rollouts run on the shared
/// [`EpisodeDriver`](spear_cluster::env::EpisodeDriver). The adapter
/// rebuilds the richer [`PolicyContext`] — which carries the precomputed
/// graph features the env layer deliberately does not know about — from
/// the driver's [`EnvContext`] at every decision.
pub(crate) struct RolloutAdapter<'p, 'f, P: SearchPolicy + ?Sized> {
    pub policy: &'p mut P,
    pub features: &'f GraphFeatures,
}

impl<P: SearchPolicy + ?Sized> DecisionPolicy<StdRng> for RolloutAdapter<'_, '_, P> {
    fn decide(
        &mut self,
        ctx: &EnvContext<'_>,
        state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action {
        let ctx = PolicyContext {
            dag: ctx.dag,
            spec: ctx.spec,
            features: self.features,
        };
        self.policy.choose_rollout(&ctx, state, legal, rng)
    }

    fn name(&self) -> &str {
        self.policy.name()
    }
}

/// Random choices — classic MCTS.
///
/// Expansion is uniformly random over the untried actions. Rollouts are
/// *work-conserving* random: uniform over the schedulable tasks, taking
/// `process` only when nothing fits. A rollout that idles the cluster at
/// random produces makespans no real executor would, drowning the value
/// signal in noise; restricting rollouts to work-conserving schedules
/// keeps them unbiased over the space any list scheduler can reach, while
/// the *tree* still explores deliberate idling through its `process`
/// edges. (Verified to dominate fully-uniform rollouts at every budget —
/// see the `rollout` ablation in `spear-bench`.)
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPolicy;

impl SearchPolicy for RandomPolicy {
    fn choose_expansion(
        &mut self,
        _ctx: &PolicyContext<'_>,
        _state: &SimState,
        untried: &[Action],
        rng: &mut StdRng,
    ) -> usize {
        rng.gen_range(0..untried.len())
    }

    fn choose_rollout(
        &mut self,
        _ctx: &PolicyContext<'_>,
        _state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action {
        let schedulable = legal
            .iter()
            .filter(|a| !matches!(a, Action::Process))
            .count();
        if schedulable == 0 {
            return Action::Process;
        }
        *legal
            .iter()
            .filter(|a| !matches!(a, Action::Process))
            .nth(rng.gen_range(0..schedulable))
            .expect("counted above")
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Fully uniform random choices, including `process` while tasks still
/// fit — the ablation comparator for [`RandomPolicy`]'s work-conserving
/// rollouts.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPolicy;

impl SearchPolicy for UniformPolicy {
    fn choose_expansion(
        &mut self,
        _ctx: &PolicyContext<'_>,
        _state: &SimState,
        untried: &[Action],
        rng: &mut StdRng,
    ) -> usize {
        rng.gen_range(0..untried.len())
    }

    fn choose_rollout(
        &mut self,
        _ctx: &PolicyContext<'_>,
        _state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action {
        legal[rng.gen_range(0..legal.len())]
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// Greedy packing guidance: prefers scheduling the task with the largest
/// Tetris alignment score, falling back to `process` last. A cheap
/// learned-policy stand-in used in ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeuristicPolicy;

impl HeuristicPolicy {
    fn score(ctx: &PolicyContext<'_>, state: &SimState, action: Action) -> f64 {
        match action {
            // Process only when nothing else scores: rank below any task.
            Action::Process => f64::NEG_INFINITY,
            Action::Schedule(t) => ctx.dag.task(t).demand().dot(state.free()),
            // Hetero placement: align against the target machine's free
            // vector, so the packer prefers the machine the task fits best.
            Action::Place(t, m) => ctx.dag.task(t).demand().dot(state.machine_free(m)),
        }
    }
}

impl SearchPolicy for HeuristicPolicy {
    fn choose_expansion(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        untried: &[Action],
        _rng: &mut StdRng,
    ) -> usize {
        let mut best = 0;
        for i in 1..untried.len() {
            if Self::score(ctx, state, untried[i]) > Self::score(ctx, state, untried[best]) {
                best = i;
            }
        }
        best
    }

    fn choose_rollout(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        legal: &[Action],
        _rng: &mut StdRng,
    ) -> Action {
        let mut best = legal[0];
        let mut best_score = Self::score(ctx, state, best);
        for &a in &legal[1..] {
            let s = Self::score(ctx, state, a);
            if s > best_score {
                best = a;
                best_score = s;
            }
        }
        best
    }

    fn name(&self) -> &str {
        "heuristic"
    }
}

/// The trained DRL agent as search guidance (the Spear configuration).
///
/// * **Expansion** picks the untried action to which the policy assigns the
///   highest probability — "the DRL agent effectively sorts the actions by
///   how promising they are" (§III-C).
/// * **Rollout** samples from the policy's masked distribution, giving
///   informed but still stochastic simulations.
///
/// Untried actions the network cannot see (tasks beyond the visible ready
/// window) inherit a tiny epsilon probability so they are expanded last
/// rather than never.
#[derive(Debug, Clone)]
pub struct DrlPolicy {
    policy: PolicyNetwork,
    inferences: u64,
    skips: u64,
    // Transposition-keyed inference cache: rollouts revisit identical
    // states along different tree paths — and consecutive decisions
    // re-explore overlapping subtrees — so the masked distribution is
    // cached by `SimState::fingerprint` and cleared (by generation bump)
    // at each episode start. `None` when disabled for differential
    // testing (`MctsConfig::eval_cache = false`) or when the fast path
    // owns the cache instead.
    cache: Option<EvalCache>,
    // Fast-precision state: the `f32` engine snapshot, its scratch, and
    // the half-footprint `f32` row cache (double the entries at the
    // same memory budget). All `None`/unused in `Precision::Exact`.
    precision: Precision,
    engine: Option<InferenceEngine>,
    infer_scratch: InferScratch,
    cache_f32: Option<EvalCacheF32>,
    probs_f32: Vec<f32>,
    // Reused across inferences: slot probabilities, featurized view, and
    // the per-action probabilities handed back to the search. Rollouts run
    // one inference per step, so without these the guidance path would
    // allocate its way through every simulation.
    probs: Vec<f64>,
    view: StateView,
    action_probs: Vec<f64>,
}

/// Entries per policy/value cache. Sized for the distinct states one
/// *episode's* search visits across all of its decisions (a 50-task
/// paper-simulation job touches roughly 20k unique states); power-of-two
/// enforced by the cache itself. At the paper's action dimensionality
/// this is a few megabytes per policy instance.
pub(crate) const EVAL_CACHE_CAPACITY: usize = 32_768;

impl DrlPolicy {
    /// Wraps a trained policy network, with the inference cache enabled.
    pub fn new(policy: PolicyNetwork) -> Self {
        Self::with_cache(policy, true)
    }

    /// Wraps a trained policy network, caching inferences by state
    /// fingerprint iff `eval_cache` is set. Cache hits reproduce the
    /// uncached distribution bit-identically, so this only trades memory
    /// for speed; disabling is for differential testing.
    pub fn with_cache(policy: PolicyNetwork, eval_cache: bool) -> Self {
        Self::with_cache_precision(policy, eval_cache, Precision::Exact)
    }

    /// [`DrlPolicy::with_cache`] with an explicit numeric mode. `Exact`
    /// is the golden-checked `f64` path. `Fast` snapshots the weights
    /// into an `f32` [`InferenceEngine`] and caches `f32` rows — half
    /// the footprint per entry, so the cache holds twice the entries at
    /// the same memory budget. Within fast mode, cached and uncached
    /// runs still agree bit-for-bit: the masked softmax is computed
    /// entirely in `f32`, so a cached row replays exactly, and the
    /// upcast to `f64` at the sampling boundary is exact.
    pub fn with_cache_precision(
        policy: PolicyNetwork,
        eval_cache: bool,
        precision: Precision,
    ) -> Self {
        let fc = policy.feature_config();
        let (action_dim, max_ready) = (fc.action_dim(), fc.process_action());
        let (cache, engine, cache_f32) = match precision {
            Precision::Exact => (
                eval_cache.then(|| EvalCache::new(EVAL_CACHE_CAPACITY, action_dim, max_ready)),
                None,
                None,
            ),
            Precision::Fast => (
                None,
                Some(policy.inference_engine()),
                eval_cache
                    .then(|| EvalCacheF32::new(2 * EVAL_CACHE_CAPACITY, action_dim, max_ready)),
            ),
        };
        DrlPolicy {
            policy,
            inferences: 0,
            skips: 0,
            cache,
            precision,
            engine,
            infer_scratch: InferScratch::new(),
            cache_f32,
            probs_f32: Vec::new(),
            probs: Vec::new(),
            view: StateView::default(),
            action_probs: Vec::new(),
        }
    }

    /// The numeric mode this policy runs its forward passes in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The wrapped network.
    pub fn policy(&self) -> &PolicyNetwork {
        &self.policy
    }

    /// Probability the network assigns to each action in `actions`. The
    /// returned slice borrows the policy's scratch buffer and has one entry
    /// per action.
    ///
    /// Consults the fingerprint-keyed cache first: a hit maps the cached
    /// distribution onto `actions` without featurizing or running the
    /// network, bit-identically to recomputation (the cached rows are the
    /// exact softmax output and slot assignment a miss would produce).
    ///
    /// The key is [`SimState::frontier_fingerprint`], not the full state
    /// fingerprint: the policy featurization reads only the frontier
    /// (ready set, running tasks at clock-relative offsets, `used`,
    /// completion count), so rollout trajectories that placed finished
    /// work differently — or at different absolute clocks — but
    /// reconverged to the same frontier share one cache entry. That
    /// convergence, not exact-state revisits, is where most hits come
    /// from.
    fn action_probs(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        actions: &[Action],
    ) -> &[f64] {
        if self.precision == Precision::Fast {
            return self.action_probs_fast(ctx, state, actions);
        }
        let process_idx = self.policy.feature_config().process_action();
        let key = self.cache.is_some().then(|| state.frontier_fingerprint());
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key) {
            if let Some((probs, slots)) = cache.get(key) {
                self.action_probs.clear();
                self.action_probs.extend(actions.iter().map(|&a| {
                    match a {
                        Action::Process => probs[process_idx],
                        // A `Place` inherits its task's probability: the
                        // policy head stays task-indexed and the machine
                        // choice is resolved at the sampling boundary.
                        Action::Schedule(t) | Action::Place(t, _) => slots
                            .iter()
                            .position(|&s| s == Some(t))
                            .map(|slot| probs[slot])
                            // Backlogged tasks are invisible to the network.
                            .unwrap_or(1e-9),
                    }
                }));
                return &self.action_probs;
            }
        }
        self.inferences += 1;
        self.policy.action_distribution_into(
            ctx.dag,
            ctx.spec,
            state,
            ctx.features,
            &mut self.probs,
            &mut self.view,
        );
        if let (Some(cache), Some(key)) = (self.cache.as_mut(), key) {
            cache.insert(key, &self.probs, &self.view.slot_tasks);
        }
        self.action_probs.clear();
        self.action_probs.extend(actions.iter().map(|&a| {
            match a {
                Action::Process => self.probs[process_idx],
                Action::Schedule(t) | Action::Place(t, _) => self
                    .view
                    .slot_tasks
                    .iter()
                    .position(|&s| s == Some(t))
                    .map(|slot| self.probs[slot])
                    // Backlogged tasks are invisible to the network.
                    .unwrap_or(1e-9),
            }
        }));
        &self.action_probs
    }

    /// The fast-precision miss/hit pipeline: `f32` engine forward pass,
    /// `f32` masked softmax, `f32` cache rows. The `f64` upcast happens
    /// only while mapping onto `actions`, which is exact — so fast-mode
    /// cached and uncached runs stay bit-identical to each other (the
    /// same transparency contract the exact cache pins, inside the
    /// fast numeric universe).
    fn action_probs_fast(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        actions: &[Action],
    ) -> &[f64] {
        let process_idx = self.policy.feature_config().process_action();
        let key = self
            .cache_f32
            .is_some()
            .then(|| state.frontier_fingerprint());
        if let (Some(cache), Some(key)) = (self.cache_f32.as_mut(), key) {
            if let Some((probs, slots)) = cache.get(key) {
                self.action_probs.clear();
                self.action_probs.extend(actions.iter().map(|&a| {
                    match a {
                        Action::Process => f64::from(probs[process_idx]),
                        Action::Schedule(t) | Action::Place(t, _) => slots
                            .iter()
                            .position(|&s| s == Some(t))
                            .map(|slot| f64::from(probs[slot]))
                            // Backlogged tasks are invisible to the network.
                            .unwrap_or(1e-9),
                    }
                }));
                return &self.action_probs;
            }
        }
        self.inferences += 1;
        let engine = self
            .engine
            .as_ref()
            .expect("fast mode always has an engine");
        self.policy.action_distribution_fast_into(
            engine,
            &mut self.infer_scratch,
            ctx.dag,
            ctx.spec,
            state,
            ctx.features,
            &mut self.probs_f32,
            &mut self.view,
        );
        if let (Some(cache), Some(key)) = (self.cache_f32.as_mut(), key) {
            cache.insert(key, &self.probs_f32, &self.view.slot_tasks);
        }
        self.action_probs.clear();
        self.action_probs.extend(actions.iter().map(|&a| {
            match a {
                Action::Process => f64::from(self.probs_f32[process_idx]),
                Action::Schedule(t) | Action::Place(t, _) => self
                    .view
                    .slot_tasks
                    .iter()
                    .position(|&s| s == Some(t))
                    .map(|slot| f64::from(self.probs_f32[slot]))
                    // Backlogged tasks are invisible to the network.
                    .unwrap_or(1e-9),
            }
        }));
        &self.action_probs
    }
}

impl SearchPolicy for DrlPolicy {
    fn choose_expansion(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        untried: &[Action],
        _rng: &mut StdRng,
    ) -> usize {
        // A single candidate needs no inference: the argmax is forced.
        if untried.len() == 1 {
            self.skips += 1;
            return 0;
        }
        let probs = self.action_probs(ctx, state, untried);
        let mut best = 0;
        for i in 1..probs.len() {
            if probs[i] > probs[best] {
                best = i;
            }
        }
        best
    }

    fn choose_rollout(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action {
        // A single legal action (usually a forced `process` on a saturated
        // cluster) needs no inference — a sizable share of rollout steps.
        // The network assigns a lone legal action positive probability
        // (masked softmax over its own mask, or the backlog epsilon), so
        // the full path below would always take the one-draw sampling
        // branch; drawing here keeps the RNG stream — and therefore every
        // downstream decision — bit-identical.
        if legal.len() == 1 {
            self.skips += 1;
            let _: f64 = rng.gen();
            return legal[0];
        }
        let probs = self.action_probs(ctx, state, legal);
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            return legal[rng.gen_range(0..legal.len())];
        }
        let x: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        for (a, &p) in legal.iter().zip(probs) {
            acc += p;
            if x < acc {
                return *a;
            }
        }
        *legal.last().expect("legal is never empty")
    }

    fn name(&self) -> &str {
        "drl"
    }

    fn inferences(&self) -> u64 {
        self.inferences
    }

    fn on_episode_start(&mut self) {
        if let Some(cache) = self.cache.as_mut() {
            cache.begin_generation();
        }
        if let Some(cache) = self.cache_f32.as_mut() {
            cache.begin_generation();
        }
    }

    fn cache_stats(&self) -> EvalCacheStats {
        // At most one of the two caches exists (per precision mode), so
        // the merge is really a select.
        self.cache
            .as_ref()
            .map(EvalCache::stats)
            .unwrap_or_default()
            .merged(
                self.cache_f32
                    .as_ref()
                    .map(EvalCacheF32::stats)
                    .unwrap_or_default(),
            )
    }

    fn inference_skips(&self) -> u64 {
        self.skips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spear_dag::{DagBuilder, ResourceVec, Task, TaskId};
    use spear_rl::FeatureConfig;

    fn setup() -> (Dag, ClusterSpec, GraphFeatures) {
        let mut b = DagBuilder::new(2);
        b.add_task(Task::new(4, ResourceVec::from_slice(&[0.7, 0.2])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.2, 0.2])));
        b.add_task(Task::new(3, ResourceVec::from_slice(&[0.1, 0.6])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(2);
        let features = GraphFeatures::compute(&dag);
        (dag, spec, features)
    }

    #[test]
    fn random_policy_stays_in_range() {
        let (dag, spec, features) = setup();
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let state = SimState::new(&dag, &spec).unwrap();
        let legal = state.legal_actions(&dag);
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = RandomPolicy;
        for _ in 0..50 {
            let idx = policy.choose_expansion(&ctx, &state, &legal, &mut rng);
            assert!(idx < legal.len());
            let a = policy.choose_rollout(&ctx, &state, &legal, &mut rng);
            assert!(legal.contains(&a));
        }
    }

    #[test]
    fn heuristic_prefers_best_aligned_task() {
        let (dag, spec, features) = setup();
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let state = SimState::new(&dag, &spec).unwrap();
        let legal = state.legal_actions(&dag);
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = HeuristicPolicy;
        // Free = [1,1]: task 0 has the highest dot product (0.9).
        let a = policy.choose_rollout(&ctx, &state, &legal, &mut rng);
        assert_eq!(a, Action::Schedule(TaskId::new(0)));
    }

    #[test]
    fn heuristic_prefers_any_task_over_process() {
        let (dag, spec, features) = setup();
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let mut state = SimState::new(&dag, &spec).unwrap();
        state.apply(&dag, Action::Schedule(TaskId::new(0))).unwrap();
        // Legal now: schedule 1 or 2 (both fit), or process.
        let legal = state.legal_actions(&dag);
        assert!(legal.contains(&Action::Process));
        let mut rng = StdRng::seed_from_u64(0);
        let a = HeuristicPolicy.choose_rollout(&ctx, &state, &legal, &mut rng);
        assert_ne!(a, Action::Process);
    }

    #[test]
    fn drl_policy_produces_legal_choices() {
        let (dag, spec, features) = setup();
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let net = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[12], &mut rng);
        let mut policy = DrlPolicy::new(net);
        let mut state = SimState::new(&dag, &spec).unwrap();
        while !state.is_terminal(&dag) {
            let legal = state.legal_actions(&dag);
            let idx = policy.choose_expansion(&ctx, &state, &legal, &mut rng);
            assert!(idx < legal.len());
            let a = policy.choose_rollout(&ctx, &state, &legal, &mut rng);
            assert!(legal.contains(&a));
            state.apply(&dag, a).unwrap();
        }
    }

    #[test]
    fn policy_names() {
        let (_, _, _) = setup();
        assert_eq!(RandomPolicy.name(), "random");
        assert_eq!(HeuristicPolicy.name(), "heuristic");
    }

    /// Cached and uncached policies must make identical choices from
    /// identical RNG streams — revisiting states repeatedly so the cache
    /// actually serves hits (asserted), not just misses.
    #[test]
    fn cached_policy_choices_match_uncached_bitwise() {
        let (dag, spec, features) = setup();
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let net = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[12], &mut rng);
        let mut cached = DrlPolicy::with_cache(net.clone(), true);
        let mut uncached = DrlPolicy::with_cache(net, false);
        let state = SimState::new(&dag, &spec).unwrap();
        let legal = state.legal_actions(&dag);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let ia = cached.choose_expansion(&ctx, &state, &legal, &mut rng_a);
            let ib = uncached.choose_expansion(&ctx, &state, &legal, &mut rng_b);
            assert_eq!(ia, ib);
            let aa = cached.choose_rollout(&ctx, &state, &legal, &mut rng_a);
            let ab = uncached.choose_rollout(&ctx, &state, &legal, &mut rng_b);
            assert_eq!(aa, ab);
        }
        assert!(cached.cache_stats().hits > 0, "repeat visits must hit");
        assert_eq!(cached.cache_stats().misses, 1);
        assert_eq!(uncached.cache_stats(), EvalCacheStats::default());
        assert!(uncached.inferences() > cached.inferences());
        // An episode boundary invalidates the cache: next probe misses.
        // (Decision boundaries within an episode do NOT invalidate —
        // retention across decisions is where most hits come from.)
        cached.on_episode_start();
        let mut rng_c = StdRng::seed_from_u64(3);
        let _ = cached.choose_rollout(&ctx, &state, &legal, &mut rng_c);
        assert_eq!(cached.cache_stats().misses, 2);
    }

    /// The fast-mode transparency contract: within `Precision::Fast`,
    /// cached and uncached policies make bit-identical choices (the
    /// `f32` softmax round-trips exactly through the `f32` cache).
    #[test]
    fn fast_cached_policy_choices_match_fast_uncached_bitwise() {
        let (dag, spec, features) = setup();
        let ctx = PolicyContext {
            dag: &dag,
            spec: &spec,
            features: &features,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let net = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[12], &mut rng);
        let mut cached = DrlPolicy::with_cache_precision(net.clone(), true, Precision::Fast);
        let mut uncached = DrlPolicy::with_cache_precision(net, false, Precision::Fast);
        assert_eq!(cached.precision(), Precision::Fast);
        let state = SimState::new(&dag, &spec).unwrap();
        let legal = state.legal_actions(&dag);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let ia = cached.choose_expansion(&ctx, &state, &legal, &mut rng_a);
            let ib = uncached.choose_expansion(&ctx, &state, &legal, &mut rng_b);
            assert_eq!(ia, ib);
            let aa = cached.choose_rollout(&ctx, &state, &legal, &mut rng_a);
            let ab = uncached.choose_rollout(&ctx, &state, &legal, &mut rng_b);
            assert_eq!(aa, ab);
        }
        assert!(cached.cache_stats().hits > 0, "repeat visits must hit");
        assert_eq!(cached.cache_stats().misses, 1);
        assert!(uncached.inferences() > cached.inferences());
    }
}
