//! The arena-allocated search tree.

use spear_cluster::Action;

/// Index of a node in the [`Tree`] arena.
pub type NodeId = usize;

/// One search-tree node: MCTS statistics for one reachable state.
///
/// Nodes do **not** store their simulation state. The search reconstructs a
/// leaf's state by replaying the action path into a reusable scratch state
/// during selection — replays are a handful of cheap `apply` calls, while
/// storing a state per node costs a multi-`Vec` clone on every expansion
/// and bloats the arena until UCB selection is bound on cache misses.
///
/// Values are rollout *returns* (negative makespans), so larger is better.
/// Both the maximum and the sum of returns are tracked: selection and the
/// final move exploit the maximum (paper Eq. 5) and tie-break on the mean.
#[derive(Debug, Clone)]
pub struct Node {
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// The action that led here from the parent.
    pub action: Option<Action>,
    /// Expanded children, in expansion order.
    pub children: Vec<(Action, NodeId)>,
    /// Legal actions not yet expanded.
    pub untried: Vec<Action>,
    /// Whether the node's state is terminal.
    pub terminal: bool,
    /// Exact return of the completed schedule (only meaningful when
    /// `terminal`; recorded at expansion so terminal reinforcement does not
    /// need the state).
    pub terminal_value: f64,
    /// Number of rollouts that passed through this node.
    pub visits: u64,
    /// Best rollout return seen through this node.
    pub max_value: f64,
    /// Sum of rollout returns (for the mean tiebreak).
    pub sum_value: f64,
    /// Virtual losses: rollouts currently *in flight* through this node
    /// in a tree-parallel search. Each concurrent worker increments the
    /// counter along its selection path and decrements it when the
    /// rollout's real value is backpropagated, so UCB selection sees
    /// in-flight paths as already-visited-and-losing and concurrent
    /// workers decorrelate instead of piling onto one leaf. Always zero
    /// in sequential searches, where selection arithmetic reduces
    /// bit-identically to the vloss-free formula.
    pub vloss: u32,
}

impl Node {
    /// A fresh, unvisited node. `terminal_value` is the exact return of
    /// the completed schedule when `terminal`, and ignored otherwise.
    pub fn fresh(
        parent: Option<NodeId>,
        action: Option<Action>,
        untried: Vec<Action>,
        terminal: bool,
        terminal_value: f64,
    ) -> Self {
        Node {
            parent,
            action,
            children: Vec::new(),
            untried,
            terminal,
            terminal_value,
            visits: 0,
            max_value: f64::NEG_INFINITY,
            sum_value: 0.0,
            vloss: 0,
        }
    }

    /// Visits as UCB selection sees them: real visits plus in-flight
    /// virtual losses. Equal to `visits` whenever no search worker holds
    /// a virtual loss here (always, in sequential searches).
    pub fn effective_visits(&self) -> u64 {
        self.visits + u64::from(self.vloss)
    }

    /// Mean rollout return (`-inf` before the first visit).
    pub fn mean_value(&self) -> f64 {
        if self.visits == 0 {
            f64::NEG_INFINITY
        } else {
            self.sum_value / self.visits as f64
        }
    }

    /// Whether every legal action has been expanded.
    pub fn fully_expanded(&self) -> bool {
        self.untried.is_empty()
    }
}

/// A growable arena of [`Node`]s. Subtree reuse across decisions is
/// implemented by moving the root id; stale siblings stay in the arena
/// until the search ends (bounded by the total iteration budget).
#[derive(Debug, Clone, Default)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Tree::default()
    }

    /// Number of nodes ever allocated.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Allocates a node and returns its id.
    pub fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutable node access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Depth of `id` below the arena's original root (edges walked to the
    /// top).
    pub fn depth(&self, mut id: NodeId) -> usize {
        let mut d = 0;
        while let Some(p) = self.nodes[id].parent {
            id = p;
            d += 1;
        }
        d
    }

    /// Propagates a rollout return from `id` up to the root: increments
    /// visits, updates max and sum.
    pub fn backpropagate(&mut self, mut id: NodeId, value: f64) {
        loop {
            let node = &mut self.nodes[id];
            node.visits += 1;
            node.max_value = node.max_value.max(value);
            node.sum_value += value;
            match node.parent {
                Some(p) => id = p,
                None => break,
            }
        }
    }

    /// Propagates a rollout return from `id` up to `stop` inclusive, then
    /// halts. After the search re-roots (see `MctsSearch::advance`), nodes
    /// above the current root are never consulted again, so updating them
    /// is pure waste — and the wasted path grows with every committed
    /// decision. `stop` must be an ancestor of `id` (or `id` itself).
    pub fn backpropagate_to(&mut self, mut id: NodeId, stop: NodeId, value: f64) {
        loop {
            let node = &mut self.nodes[id];
            node.visits += 1;
            node.max_value = node.max_value.max(value);
            node.sum_value += value;
            if id == stop {
                break;
            }
            match node.parent {
                Some(p) => id = p,
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_node(parent: Option<NodeId>) -> Node {
        Node::fresh(parent, None, Vec::new(), false, 0.0)
    }

    #[test]
    fn push_and_depth() {
        let mut tree = Tree::new();
        let root = tree.push(make_node(None));
        let child = tree.push(make_node(Some(root)));
        let grandchild = tree.push(make_node(Some(child)));
        assert_eq!(tree.depth(root), 0);
        assert_eq!(tree.depth(child), 1);
        assert_eq!(tree.depth(grandchild), 2);
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn backpropagation_updates_all_ancestors() {
        let mut tree = Tree::new();
        let root = tree.push(make_node(None));
        let child = tree.push(make_node(Some(root)));
        tree.backpropagate(child, -50.0);
        tree.backpropagate(child, -30.0);
        let r = tree.node(root);
        assert_eq!(r.visits, 2);
        assert_eq!(r.max_value, -30.0);
        assert_eq!(r.sum_value, -80.0);
        assert_eq!(r.mean_value(), -40.0);
        let c = tree.node(child);
        assert_eq!(c.visits, 2);
        assert_eq!(c.max_value, -30.0);
    }

    #[test]
    fn mean_value_of_unvisited_is_neg_infinity() {
        let node = make_node(None);
        assert_eq!(node.mean_value(), f64::NEG_INFINITY);
        assert!(node.fully_expanded());
    }

    #[test]
    fn effective_visits_adds_virtual_losses() {
        let mut node = make_node(None);
        assert_eq!(node.effective_visits(), 0);
        node.visits = 3;
        node.vloss = 2;
        assert_eq!(node.effective_visits(), 5);
        node.vloss = 0;
        assert_eq!(node.effective_visits(), node.visits);
    }
}
