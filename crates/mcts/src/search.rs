//! The core search: selection, expansion, simulation, backpropagation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear_cluster::env::{DriveOutcome, Env, EpisodeDriver, SimEnv};
use spear_cluster::{Action, ClusterSpec, SimState, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::Dag;

use crate::policies::RolloutAdapter;
use crate::tree::{Node, NodeId, Tree};
use crate::{PolicyContext, SearchPolicy, StateEvaluator};

/// Reusable buffers for the rollout hot loop. The search owns one scratch
/// and `clone_from`s the root environment into it, so steady-state rollouts
/// do zero heap allocations: the state's interior vectors and the
/// legal-action buffer keep their capacity across rollouts.
#[derive(Default)]
struct RolloutScratch<'a> {
    env: Option<SimEnv<'a>>,
    legal: Vec<Action>,
}

/// Entries in the precomputed `ln` table used by UCB selection. Selection
/// evaluates `ln(visits)` once per node on every descent; a table lookup
/// replaces the libm call for all but astronomically visited nodes and is
/// bit-identical to computing `(k as f64).ln()` directly.
const LN_TABLE_SIZE: usize = 4096;

pub(crate) fn ln_table() -> Vec<f64> {
    (0..LN_TABLE_SIZE as u64)
        .map(|k| (k.max(1) as f64).ln())
        .collect()
}

/// Strictly-greater comparison of a `(primary, tiebreak)` selection key
/// under [`f64::total_cmp`]. IEEE `>` is always false when either side is
/// NaN, so a NaN value (e.g. from a misbehaving evaluator) would silently
/// freeze an argmax on whichever candidate came first; `total_cmp` imposes
/// a total order instead, keeping selection deterministic. For the finite
/// keys produced by healthy searches the result is identical to tuple `>`.
pub(crate) fn key_gt(a: (f64, f64), b: (f64, f64)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.1.total_cmp(&b.1) == std::cmp::Ordering::Greater,
    }
}

/// UCB child selection (paper Eq. 5) over `tree.node(id)`'s children:
/// exploit the max rollout return (or the mean, in the ablation mode),
/// explore by visit counts, tie-break with the mean return.
///
/// Shared between the sequential [`MctsSearch`] and the tree-parallel
/// workers. Virtual losses are folded in two ways: in-flight rollouts
/// count as visits (shrinking the exploration bonus of contested paths
/// and growing everyone else's), and each in-flight rollout additionally
/// charges `exploration` against the child's score so concurrent workers
/// fan out instead of replaying the current argmax. Both adjustments are
/// written so that sequential search — where every `vloss` is zero — is
/// *bit-identical* to the pre-vloss formula: `visits + 0` is exact in
/// `u64`, and the penalty subtraction only executes when a virtual loss
/// is actually held.
///
/// An unvisited child with in-flight rollouts (`visits == 0`,
/// `vloss > 0`) deliberately does **not** get the `INFINITY`
/// first-visit bonus: its max value is still `-inf`, so other workers
/// avoid it until the pending rollout reports back. If every child is
/// in that state the tie-break makes the scan fall back to the first
/// child, so selection still returns.
pub(crate) fn select_child_ucb(
    tree: &Tree,
    id: NodeId,
    exploration: f64,
    max_value_mode: bool,
    ln_table: &[f64],
) -> (Action, NodeId) {
    let node = tree.node(id);
    debug_assert!(!node.children.is_empty());
    // With one child there is nothing to compare; skip the UCB math.
    // Single-child nodes are common on deep exploit chains (states
    // where only `process` is legal), so this fast path matters.
    if node.children.len() == 1 {
        return node.children[0];
    }
    let n_eff = node.effective_visits();
    let ln_n = match ln_table.get(n_eff as usize) {
        Some(&ln) => ln,
        None => (n_eff.max(1) as f64).ln(),
    };
    let mut best = node.children[0];
    let mut best_key = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(action, child_id) in &node.children {
        let child = tree.node(child_id);
        let child_n = child.effective_visits();
        let ucb = if child_n == 0 {
            f64::INFINITY
        } else {
            let exploit = if max_value_mode {
                child.max_value
            } else {
                child.mean_value()
            };
            let mut ucb = exploit + exploration * (ln_n / child_n as f64).sqrt();
            // Guarded so the sequential path never touches the value.
            if child.vloss > 0 {
                ucb -= exploration * f64::from(child.vloss);
            }
            ucb
        };
        let key = (ucb, child.mean_value());
        if key_gt(key, best_key) {
            best_key = key;
            best = (action, child_id);
        }
    }
    best
}

/// A Monte Carlo tree search over scheduling states of one DAG.
///
/// The search is built once per job and driven decision by decision:
/// [`MctsSearch::run_iteration`] grows the tree, [`MctsSearch::best_action`]
/// reads off the best root move, and [`MctsSearch::advance`] commits it,
/// re-rooting the tree at the chosen child so earlier search effort is
/// reused (the paper: "the selected action will point to a child node which
/// will become the new root node").
pub struct MctsSearch<'a, P: SearchPolicy + ?Sized> {
    dag: &'a Dag,
    spec: &'a ClusterSpec,
    features: &'a GraphFeatures,
    policy: &'a mut P,
    tree: Tree,
    root: NodeId,
    root_env: SimEnv<'a>,
    exploration: f64,
    max_value_mode: bool,
    evaluator: Option<&'a mut dyn StateEvaluator>,
    truncate_after: u64,
    rng: StdRng,
    scratch: RolloutScratch<'a>,
    ln_table: Vec<f64>,
    iterations: u64,
    rollout_steps: u64,
    max_depth: u64,
}

impl<'a, P: SearchPolicy + ?Sized> MctsSearch<'a, P> {
    /// Creates a search rooted at the initial state of `dag` on `spec`.
    ///
    /// `exploration` is the absolute UCB constant `c`; callers scale it to
    /// the makespan magnitude (see [`MctsConfig`](crate::MctsConfig)).
    ///
    /// # Errors
    ///
    /// Fails if the DAG cannot run on the cluster.
    pub fn new(
        dag: &'a Dag,
        spec: &'a ClusterSpec,
        features: &'a GraphFeatures,
        policy: &'a mut P,
        exploration: f64,
        seed: u64,
    ) -> Result<Self, SpearError> {
        let root_env = SimEnv::new(dag, spec)?;
        Self::from_env(dag, spec, features, policy, exploration, seed, root_env)
    }

    /// Creates a search rooted at an arbitrary simulation state of `dag`
    /// — e.g. a multi-job state built with
    /// [`SimState::new_multi`](spear_cluster::SimState::new_multi), whose
    /// arrival gating every rollout then inherits through state cloning.
    ///
    /// # Errors
    ///
    /// Fails if the DAG cannot run on the cluster.
    pub fn from_root_state(
        dag: &'a Dag,
        spec: &'a ClusterSpec,
        features: &'a GraphFeatures,
        policy: &'a mut P,
        exploration: f64,
        seed: u64,
        root_state: SimState,
    ) -> Result<Self, SpearError> {
        spec.validate_dag(dag)?;
        let root_env = SimEnv::from_state(dag, spec, root_state);
        Self::from_env(dag, spec, features, policy, exploration, seed, root_env)
    }

    #[allow(clippy::too_many_arguments)]
    fn from_env(
        dag: &'a Dag,
        spec: &'a ClusterSpec,
        features: &'a GraphFeatures,
        policy: &'a mut P,
        exploration: f64,
        seed: u64,
        root_env: SimEnv<'a>,
    ) -> Result<Self, SpearError> {
        // A new search is a new episode: cached policies drop entries
        // computed under a previous DAG/spec. Within this episode they
        // retain entries across decisions (same DAG, same weights — a
        // fingerprint-keyed entry cannot go stale until the episode
        // ends).
        policy.on_episode_start();
        let mut tree = Tree::new();
        let untried = root_env.observe().legal_actions(dag);
        let terminal = untried.is_empty();
        let terminal_value = if terminal {
            -(root_env.makespan().unwrap_or(0) as f64)
        } else {
            0.0
        };
        let root = tree.push(Node::fresh(None, None, untried, terminal, terminal_value));
        Ok(MctsSearch {
            dag,
            spec,
            features,
            policy,
            tree,
            root,
            root_env,
            exploration,
            max_value_mode: true,
            evaluator: None,
            truncate_after: u64::MAX,
            rng: StdRng::seed_from_u64(seed),
            scratch: RolloutScratch::default(),
            ln_table: ln_table(),
            iterations: 0,
            rollout_steps: 0,
            max_depth: 0,
        })
    }

    /// Enables truncated rollouts: after `max_steps` simulated actions the
    /// rollout stops and `evaluator` bootstraps the remaining makespan
    /// (extension beyond the paper; see the `evaluator` module).
    pub fn set_rollout_truncation(
        &mut self,
        max_steps: u64,
        evaluator: &'a mut dyn StateEvaluator,
    ) {
        self.truncate_after = max_steps;
        // Joining this search's episode: see `new` for the cache
        // lifetime contract.
        evaluator.on_episode_start();
        self.evaluator = Some(evaluator);
    }

    /// Switches between max-value exploitation (paper Eq. 5, the default)
    /// and classic mean-value UCB (the backpropagation ablation).
    pub fn set_max_value_mode(&mut self, enabled: bool) {
        self.max_value_mode = enabled;
    }

    /// The exploitation value of a node under the current mode.
    fn exploit_value(&self, node: &Node) -> f64 {
        if self.max_value_mode {
            node.max_value
        } else {
            node.mean_value()
        }
    }

    /// The current root state.
    pub fn root_state(&self) -> &SimState {
        self.root_env.state()
    }

    /// Whether the committed schedule is complete.
    pub fn is_terminal(&self) -> bool {
        self.tree.node(self.root).terminal
    }

    /// Total iterations run so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Total simulated rollout steps so far.
    pub fn rollout_steps(&self) -> u64 {
        self.rollout_steps
    }

    /// Deepest node reached below the *current* root (selection replay
    /// plus the expanded child) since the last [`MctsSearch::advance`] —
    /// how far ahead of the committed schedule the search is looking.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }

    /// Cumulative policy-network forward passes of the guiding policy.
    pub fn policy_inferences(&self) -> u64 {
        self.policy.inferences()
    }

    /// Hit/miss/evict counters of the guiding policy's inference cache.
    pub fn policy_cache_stats(&self) -> spear_rl::EvalCacheStats {
        self.policy.cache_stats()
    }

    /// Inferences the guiding policy skipped on forced (singleton)
    /// decisions.
    pub fn policy_inference_skips(&self) -> u64 {
        self.policy.inference_skips()
    }

    /// Hit/miss/evict counters of the evaluator's cache, if any.
    pub fn evaluator_cache_stats(&self) -> spear_rl::EvalCacheStats {
        self.evaluator
            .as_ref()
            .map(|e| e.cache_stats())
            .unwrap_or_default()
    }

    /// Nodes allocated so far.
    pub fn tree_size(&self) -> usize {
        self.tree.len()
    }

    fn ctx(&self) -> PolicyContext<'a> {
        PolicyContext {
            dag: self.dag,
            spec: self.spec,
            features: self.features,
        }
    }

    /// One MCTS iteration: select a leaf by UCB, expand one action
    /// (policy-guided), simulate to termination (policy-guided), and
    /// backpropagate the return.
    pub fn run_iteration(&mut self) {
        self.iterations += 1;
        // The whole iteration runs inside the reusable scratch: the root
        // environment is `clone_from`ed in, selection replays each chosen
        // action, and the rollout continues from wherever the replay
        // stopped. In steady state nothing here allocates except the new
        // node itself.
        let RolloutScratch { env, mut legal } = std::mem::take(&mut self.scratch);
        let mut env = match env {
            Some(mut e) => {
                e.clone_from(&self.root_env);
                e
            }
            None => self.root_env.clone(),
        };
        // --- Selection (replaying the path into the scratch env). ---
        let mut id = self.root;
        let mut depth = 0u64;
        while self.tree.node(id).fully_expanded() && !self.tree.node(id).terminal {
            let (action, child) = self.select_child(id);
            env.step_trusted(action);
            id = child;
            depth += 1;
        }
        self.max_depth = self.max_depth.max(depth);
        // Terminal leaf: its value is exact; just reinforce it.
        if self.tree.node(id).terminal {
            let value = self.tree.node(id).terminal_value;
            self.tree.backpropagate_to(id, self.root, value);
            self.scratch = RolloutScratch {
                env: Some(env),
                legal,
            };
            return;
        }
        // --- Expansion (policy-guided instead of random, §III-C). ---
        let child = {
            let ctx = self.ctx();
            let node = self.tree.node(id);
            let pick =
                self.policy
                    .choose_expansion(&ctx, env.observe(), &node.untried, &mut self.rng);
            let action = self.tree.node_mut(id).untried.swap_remove(pick);
            env.step_trusted(action);
            let untried = env.observe().legal_actions(self.dag);
            let terminal = untried.is_empty();
            let terminal_value = if terminal {
                -(env.makespan().unwrap_or(0) as f64)
            } else {
                0.0
            };
            let child = self.tree.push(Node::fresh(
                Some(id),
                Some(action),
                untried,
                terminal,
                terminal_value,
            ));
            self.tree.node_mut(id).children.push((action, child));
            child
        };
        self.max_depth = self.max_depth.max(depth + 1);
        // --- Simulation (continues in the scratch env). ---
        let value = self.rollout(&mut env, &mut legal);
        // --- Backpropagation (stops at the current root: ancestors above
        // it are never read again after re-rooting). ---
        self.tree.backpropagate_to(child, self.root, value);
        self.scratch = RolloutScratch {
            env: Some(env),
            legal,
        };
    }

    /// UCB child selection (paper Eq. 5): exploit the max rollout return,
    /// explore by visit counts, tie-break with the mean return.
    fn select_child(&self, id: NodeId) -> (Action, NodeId) {
        select_child_ucb(
            &self.tree,
            id,
            self.exploration,
            self.max_value_mode,
            &self.ln_table,
        )
    }

    /// Simulates `env` (the freshly expanded child, already replayed into
    /// the scratch) to completion with the rollout policy; returns the
    /// negative makespan.
    ///
    /// `env` and `legal` are the search's [`RolloutScratch`] buffers. The
    /// step loop is the shared [`EpisodeDriver`] in trusted mode, rebuilt
    /// around the scratch legal buffer each rollout so the hot path stays
    /// allocation-free once the buffers have warmed up: actions are
    /// enumerated into the reused buffer and applied with
    /// [`Env::step_trusted`].
    fn rollout(&mut self, env: &mut SimEnv<'a>, legal: &mut Vec<Action>) -> f64 {
        // Truncation only applies when an evaluator can bootstrap the
        // remainder; without one the rollout always runs to termination.
        let max_steps = if self.evaluator.is_some() {
            self.truncate_after
        } else {
            u64::MAX
        };
        let adapter = RolloutAdapter {
            policy: &mut *self.policy,
            features: self.features,
        };
        let mut driver = EpisodeDriver::from_parts(adapter, std::mem::take(legal));
        let outcome = driver.drive_trusted(env, &mut self.rng, max_steps);
        *legal = driver.into_parts().1;
        self.rollout_steps += outcome.steps();
        match outcome {
            DriveOutcome::Terminal { .. } => -(env.makespan().expect("terminal state") as f64),
            DriveOutcome::Truncated { .. } => {
                let ctx = self.ctx();
                let evaluator = self
                    .evaluator
                    .as_deref_mut()
                    .expect("truncation implies an evaluator");
                -evaluator.estimate_final_makespan(&ctx, env.observe())
            }
        }
    }

    /// The best root action by exploitation only: maximum value first,
    /// mean value as the tiebreaker (paper §III-C "we then choose the next
    /// move based on the exploitation score").
    ///
    /// # Panics
    ///
    /// Panics if no iteration has run yet (the root has no children).
    pub fn best_action(&self) -> Action {
        let node = self.tree.node(self.root);
        assert!(
            !node.children.is_empty(),
            "best_action requires at least one iteration"
        );
        let mut best: Option<(Action, (f64, f64))> = None;
        for &(action, child_id) in &node.children {
            let child = self.tree.node(child_id);
            let key = (self.exploit_value(child), child.mean_value());
            if best.is_none_or(|(_, bk)| key_gt(key, bk)) {
                best = Some((action, key));
            }
        }
        best.expect("children checked non-empty").0
    }

    /// Commits `action`: re-roots the tree at the corresponding child
    /// (creating it if the action was never expanded).
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if `action` is illegal in the root state;
    /// the search is left unchanged.
    pub fn advance(&mut self, action: Action) -> Result<(), SpearError> {
        self.root_env.step(action)?;
        let existing = self
            .tree
            .node(self.root)
            .children
            .iter()
            .find(|(a, _)| *a == action)
            .map(|&(_, id)| id);
        let child = match existing {
            Some(id) => id,
            None => {
                let untried = self.root_env.observe().legal_actions(self.dag);
                let terminal = untried.is_empty();
                let terminal_value = if terminal {
                    -(self.root_env.makespan().unwrap_or(0) as f64)
                } else {
                    0.0
                };
                let id = self.tree.push(Node::fresh(
                    Some(self.root),
                    Some(action),
                    untried,
                    terminal,
                    terminal_value,
                ));
                self.tree.node_mut(self.root).children.push((action, id));
                id
            }
        };
        self.root = child;
        // Depth is measured from the current root; re-rooting starts a
        // fresh decision window.
        self.max_depth = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomPolicy;
    use spear_dag::{DagBuilder, ResourceVec, Task, TaskId};

    fn two_task_dag() -> Dag {
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        b.add_task(Task::new(3, ResourceVec::from_slice(&[0.6])));
        b.build().unwrap()
    }

    #[test]
    fn iterations_grow_the_tree() {
        let dag = two_task_dag();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let mut policy = RandomPolicy;
        let mut search = MctsSearch::new(&dag, &spec, &features, &mut policy, 5.0, 1).unwrap();
        assert_eq!(search.tree_size(), 1);
        for _ in 0..20 {
            search.run_iteration();
        }
        assert!(search.tree_size() > 1);
        assert_eq!(search.iterations(), 20);
        assert!(search.rollout_steps() > 0);
    }

    #[test]
    fn best_action_is_a_legal_root_action() {
        let dag = two_task_dag();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let mut policy = RandomPolicy;
        let mut search = MctsSearch::new(&dag, &spec, &features, &mut policy, 5.0, 2).unwrap();
        for _ in 0..10 {
            search.run_iteration();
        }
        let action = search.best_action();
        assert!(search.root_state().legal_actions(&dag).contains(&action));
    }

    #[test]
    #[should_panic(expected = "requires at least one iteration")]
    fn best_action_without_iterations_panics() {
        let dag = two_task_dag();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let mut policy = RandomPolicy;
        let search = MctsSearch::new(&dag, &spec, &features, &mut policy, 5.0, 3).unwrap();
        let _ = search.best_action();
    }

    #[test]
    fn advancing_to_terminal_completes_schedule() {
        let dag = two_task_dag();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let mut policy = RandomPolicy;
        let mut search = MctsSearch::new(&dag, &spec, &features, &mut policy, 5.0, 4).unwrap();
        while !search.is_terminal() {
            for _ in 0..5 {
                search.run_iteration();
            }
            let a = search.best_action();
            search.advance(a).unwrap();
        }
        let makespan = search.root_state().makespan().unwrap();
        // Tight capacity: tasks must serialize, makespan = 5 regardless of
        // order.
        assert_eq!(makespan, 5);
    }

    #[test]
    fn advance_reuses_expanded_children() {
        let dag = two_task_dag();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let mut policy = RandomPolicy;
        let mut search = MctsSearch::new(&dag, &spec, &features, &mut policy, 5.0, 5).unwrap();
        for _ in 0..10 {
            search.run_iteration();
        }
        let size_before = search.tree_size();
        search.advance(Action::Schedule(TaskId::new(0))).unwrap();
        // The child existed (both root actions were expanded in 10
        // iterations), so no node was allocated.
        assert_eq!(search.tree_size(), size_before);
    }

    #[test]
    fn advance_creates_missing_children() {
        let dag = two_task_dag();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let mut policy = RandomPolicy;
        let mut search = MctsSearch::new(&dag, &spec, &features, &mut policy, 5.0, 6).unwrap();
        // No iterations: advancing must create the child on demand.
        let size_before = search.tree_size();
        search.advance(Action::Schedule(TaskId::new(1))).unwrap();
        assert_eq!(search.tree_size(), size_before + 1);
        assert_eq!(search.root_state().start_of(TaskId::new(1)), Some(0));
    }

    #[test]
    fn key_gt_matches_tuple_gt_on_finite_keys_and_totals_nan() {
        // Finite keys: identical to the tuple `>` it replaced.
        assert!(key_gt((2.0, 0.0), (1.0, 9.0)));
        assert!(!key_gt((1.0, 9.0), (2.0, 0.0)));
        assert!(key_gt((1.0, 1.0), (1.0, 0.0)));
        assert!(!key_gt((1.0, 0.0), (1.0, 0.0)));
        assert!(key_gt((f64::INFINITY, 0.0), (1e308, 0.0)));
        assert!(!key_gt((f64::INFINITY, 0.0), (f64::INFINITY, 0.0)));
        // NaN keys: totally ordered (positive NaN above +inf) instead of
        // incomparable, so exactly one direction is "greater" and repeated
        // argmax scans stay deterministic.
        assert!(key_gt((f64::NAN, 0.0), (f64::INFINITY, 0.0)));
        assert!(!key_gt((f64::INFINITY, 0.0), (f64::NAN, 0.0)));
        assert!(!key_gt((f64::NAN, 0.0), (f64::NAN, 0.0)));
        assert!(key_gt((1.0, f64::NAN), (1.0, f64::INFINITY)));
    }

    /// A truncation evaluator that poisons every rollout value with NaN.
    struct NanEvaluator;

    impl StateEvaluator for NanEvaluator {
        fn estimate_final_makespan(&mut self, _: &PolicyContext<'_>, _: &SimState) -> f64 {
            f64::NAN
        }

        fn name(&self) -> &str {
            "nan"
        }
    }

    /// With IEEE `>` a NaN-valued child could never win a comparison, so
    /// selection silently froze on the first child. Under `total_cmp` the
    /// search stays deterministic and completes even when every backed-up
    /// value is NaN.
    #[test]
    fn nan_rollout_values_do_not_break_determinism() {
        let run = |seed: u64| {
            let dag = two_task_dag();
            let spec = ClusterSpec::unit(1);
            let features = GraphFeatures::compute(&dag);
            let mut policy = RandomPolicy;
            let mut evaluator = NanEvaluator;
            let mut search =
                MctsSearch::new(&dag, &spec, &features, &mut policy, 5.0, seed).unwrap();
            search.set_rollout_truncation(0, &mut evaluator);
            let mut actions = Vec::new();
            while !search.is_terminal() {
                for _ in 0..8 {
                    search.run_iteration();
                }
                let a = search.best_action();
                actions.push(a);
                search.advance(a).unwrap();
            }
            (actions, search.root_state().makespan().unwrap())
        };
        let (actions_a, makespan_a) = run(11);
        let (actions_b, makespan_b) = run(11);
        assert_eq!(actions_a, actions_b, "NaN values broke determinism");
        assert_eq!(makespan_a, makespan_b);
        assert_eq!(makespan_a, 5); // schedule is still complete and valid
    }

    /// Virtual losses steer selection away from in-flight children and,
    /// once released, leave the choice exactly where it started.
    #[test]
    fn virtual_loss_diverts_selection_and_is_reversible() {
        let mut tree = Tree::new();
        let root = tree.push(Node::fresh(None, None, Vec::new(), false, 0.0));
        let a = tree.push(Node::fresh(
            None,
            Some(Action::Process),
            Vec::new(),
            false,
            0.0,
        ));
        let b = tree.push(Node::fresh(
            None,
            Some(Action::Schedule(TaskId::new(0))),
            Vec::new(),
            false,
            0.0,
        ));
        tree.node_mut(root).children =
            vec![(Action::Process, a), (Action::Schedule(TaskId::new(0)), b)];
        tree.node_mut(root).visits = 20;
        // Child `a` is clearly better.
        let na = tree.node_mut(a);
        na.visits = 10;
        na.max_value = -10.0;
        na.sum_value = -110.0;
        let nb = tree.node_mut(b);
        nb.visits = 10;
        nb.max_value = -12.0;
        nb.sum_value = -140.0;
        let table = ln_table();
        let pick = |tree: &Tree| select_child_ucb(tree, root, 2.0, true, &table).1;
        assert_eq!(pick(&tree), a);
        // A worker descends through `a`: the virtual loss must divert the
        // next worker to `b`.
        tree.node_mut(a).vloss = 3;
        assert_eq!(pick(&tree), b);
        // Released: the original choice is restored.
        tree.node_mut(a).vloss = 0;
        assert_eq!(pick(&tree), a);
        // An unvisited-but-in-flight child must not get the first-visit
        // INFINITY bonus.
        let c = tree.push(Node::fresh(
            None,
            Some(Action::Schedule(TaskId::new(1))),
            Vec::new(),
            false,
            0.0,
        ));
        tree.node_mut(root)
            .children
            .push((Action::Schedule(TaskId::new(1)), c));
        tree.node_mut(c).vloss = 1;
        assert_eq!(pick(&tree), a, "in-flight unvisited child was selected");
    }

    /// On a DAG where one root choice is clearly better, sufficient budget
    /// finds it. Two tasks: a long one (8) and a short one (1) with
    /// demands such that they cannot co-run; a third task (runtime 8,
    /// gated on the short one) can co-run with the long one. Starting the
    /// long task first wastes no time: makespan 9 vs 17.
    #[test]
    fn search_finds_the_better_first_move() {
        let mut b = DagBuilder::new(1);
        let _long = b.add_task(Task::new(8, ResourceVec::from_slice(&[0.5])));
        let short = b.add_task(Task::new(1, ResourceVec::from_slice(&[0.6])));
        let gated = b.add_task(Task::new(8, ResourceVec::from_slice(&[0.4])));
        b.add_edge(short, gated).unwrap();
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let features = GraphFeatures::compute(&dag);
        let mut policy = RandomPolicy;
        let mut search = MctsSearch::new(&dag, &spec, &features, &mut policy, 10.0, 7).unwrap();
        while !search.is_terminal() {
            for _ in 0..60 {
                search.run_iteration();
            }
            let a = search.best_action();
            search.advance(a).unwrap();
        }
        // Optimal: schedule short (t=0..1), then long and gated co-run.
        // long 1..9? No: long fits with short? 0.5+0.6 > 1 — they cannot
        // co-run. Optimal order: short at 0, at t=1 long + gated co-run
        // (0.5+0.4 fits) => makespan 9.
        assert_eq!(search.root_state().makespan().unwrap(), 9);
    }
}
