//! The per-decision iteration budget (paper Eq. 4).

use serde::{Deserialize, Serialize};

/// Budget schedule `max(initial / depth, min)`: as the search descends
/// (one decision per scheduling step), the remaining solution space shrinks
/// exponentially, so the iteration budget shrinks hyperbolically with a
/// floor that guarantees enough samples at deep nodes.
///
/// ```
/// use spear_mcts::BudgetSchedule;
/// let b = BudgetSchedule::new(1000, 100);
/// assert_eq!(b.at_depth(1), 1000);
/// assert_eq!(b.at_depth(4), 250);
/// assert_eq!(b.at_depth(50), 100); // the floor
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetSchedule {
    initial: u64,
    min: u64,
}

impl BudgetSchedule {
    /// Creates a schedule with the given initial and minimum budgets.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero (the search would never run).
    pub fn new(initial: u64, min: u64) -> Self {
        assert!(initial > 0, "initial budget must be positive");
        BudgetSchedule { initial, min }
    }

    /// A flat schedule (`initial` at every depth) — the ablation baseline
    /// for the decay design.
    pub fn flat(budget: u64) -> Self {
        Self::new(budget, budget)
    }

    /// The initial budget.
    pub fn initial(&self) -> u64 {
        self.initial
    }

    /// The floor budget.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Budget at decision depth `d` (1-based): `max(initial / d, min, 1)`.
    pub fn at_depth(&self, depth: u64) -> u64 {
        (self.initial / depth.max(1)).max(self.min).max(1)
    }

    /// Total iterations if the episode takes `decisions` decisions — used
    /// to compare search effort across configurations.
    pub fn total_for(&self, decisions: u64) -> u64 {
        (1..=decisions).map(|d| self.at_depth(d)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_hyperbolically_with_floor() {
        let b = BudgetSchedule::new(1000, 5);
        assert_eq!(b.at_depth(1), 1000);
        assert_eq!(b.at_depth(2), 500);
        assert_eq!(b.at_depth(3), 333);
        assert_eq!(b.at_depth(250), 5);
    }

    #[test]
    fn flat_schedule_is_constant() {
        let b = BudgetSchedule::flat(77);
        for d in [1, 10, 1000] {
            assert_eq!(b.at_depth(d), 77);
        }
    }

    #[test]
    fn never_returns_zero() {
        let b = BudgetSchedule::new(10, 0);
        assert_eq!(b.at_depth(100), 1);
    }

    #[test]
    fn depth_zero_treated_as_one() {
        let b = BudgetSchedule::new(100, 1);
        assert_eq!(b.at_depth(0), 100);
    }

    #[test]
    fn total_sums_the_series() {
        let b = BudgetSchedule::new(10, 2);
        // depths 1..=4: 10, 5, 3, 2 (10/4=2 -> max(2,2)).
        assert_eq!(b.total_for(4), 20);
    }

    #[test]
    #[should_panic(expected = "initial budget must be positive")]
    fn rejects_zero_initial() {
        let _ = BudgetSchedule::new(0, 0);
    }
}
