//! Tree-parallel MCTS: N workers growing **one shared search tree**.
//!
//! Root parallelism ([`RootParallelMcts`](crate::RootParallelMcts)) runs K
//! independent searches and keeps the best result — simple and sound, but
//! every worker re-discovers the same high-value subtree from scratch.
//! Tree parallelism instead shares the tree: all statistics accumulate in
//! one arena, so every worker's rollouts sharpen the same value estimates
//! and the search quality at a given *total* budget matches the
//! sequential search far more closely.
//!
//! Sharing needs two mechanisms:
//!
//! * **Virtual loss** (`Node::vloss`): a worker descending the tree marks
//!   every node on its selection path as one in-flight rollout before
//!   releasing the tree lock. UCB selection counts those marks as visits
//!   and charges an additional penalty (see
//!   [`select_child_ucb`](crate::search::select_child_ucb)), so
//!   concurrent workers fan out across siblings instead of all replaying
//!   the current argmax path. The marks are removed when the rollout's
//!   real value is backpropagated.
//! * **Batched leaf inference** ([`LeafBatcher`]): in DRL mode every
//!   expansion/rollout decision wants a policy forward pass. Workers park
//!   their featurized leaf states in a shared queue; once
//!   `min(leaf_batch_size, search_threads)` requests are pending (or a
//!   50µs wait times out), one worker flushes the whole batch through a
//!   single [`Mlp::forward_batch_into`] matmul (or, under
//!   [`MctsConfig::nn_precision`]` = Fast`, one
//!   [`InferenceEngine::forward_batch`] pass over the `f32` weight
//!   snapshot). Each output row is bit-identical to the row a solo
//!   forward pass at the same precision would produce, so batching
//!   changes *scheduling of work*, never *values*. The shared
//!   frontier-fingerprint cache ([`SharedEvalCache`]) is probed **before**
//!   enqueuing, so cache hits never wait on a batch; in fast mode it
//!   stores exact `f64` upcasts of the `f32` probabilities, so hits
//!   replay the fast rows bit-identically too.
//!
//! The tree lock is held only for pointer-chasing phases (selection,
//! claim, attach/backpropagate); simulation — the dominant cost — runs
//! unlocked on per-worker scratch environments.
//!
//! # Determinism contract
//!
//! With `search_threads <= 1` the scheduler *is* the sequential
//! [`MctsScheduler`] (it delegates outright), so results stay
//! bit-identical to the golden tables. With more threads each worker's
//! RNG stream is seeded deterministically, but the interleaving of
//! workers — and therefore the search outcome — depends on thread timing:
//! runs are *valid* (every schedule passes the full judge set) but not
//! reproducible run-to-run. That trade is the point of the mode; callers
//! that need exact replay keep `search_threads = 1`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Barrier, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spear_cluster::env::{Env, EpisodeDriver, SimEnv};
use spear_cluster::{Action, ClusterSpec, JobQueue, Schedule, SimState, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::{Dag, TaskId};
use spear_nn::{
    softmax_masked_f32_into, softmax_masked_into, BatchScratch, InferScratch, InferenceEngine,
    Matrix, Mlp, Precision,
};
use spear_obs::{Counter, Histogram, Obs};
use spear_rl::{Featurizer, PolicyNetwork, SharedEvalCache, StateView};
use spear_sched::Scheduler;

use crate::policies::{RolloutAdapter, EVAL_CACHE_CAPACITY};
use crate::scheduler::SearchObs;
use crate::search::{key_gt, ln_table, select_child_ucb};
use crate::tree::{Node, NodeId, Tree};
use crate::{MctsConfig, MctsScheduler, PolicyContext, RandomPolicy, SearchPolicy, SearchStats};

/// How long a worker waits for its batched inference before flushing the
/// pending batch itself. This is the liveness valve: when the other
/// workers have exhausted their iteration tickets and parked at the
/// decision barrier, nobody else will ever fill the batch, so the waiter
/// must become the flusher. 50µs is a few single-row inference times —
/// long enough that the valve almost never fires while peers are active,
/// short enough to be invisible at decision granularity.
const FLUSH_TIMEOUT: Duration = Duration::from_micros(50);

/// One shared leaf-inference queue (DRL mode only).
///
/// Workers call [`LeafBatcher::infer`] with a featurized state; the call
/// returns that state's logits row, computed by whichever worker flushed
/// the batch containing it. A flush is **one** matrix-matrix
/// `forward_batch_into` over all pending rows — the whole point of the
/// batcher is replacing per-leaf matrix-vector passes with fewer, wider
/// matmuls that amortize weight traffic.
/// Which forward pass a flush runs: the training-grade `f64` network or
/// the fast-precision `f32` snapshot. Either way the queue keeps `f64`
/// feature rows and publishes `f64` logits rows; the fast backend rounds
/// features to `f32` inside the engine (the same rounding the sequential
/// fast path applies) and upcasts its `f32` logits exactly on
/// publication, so batched and solo fast inferences stay bit-identical.
enum BatchBackend<'a> {
    Exact(&'a Mlp),
    Fast(&'a InferenceEngine),
}

/// Per-worker flush scratch: the `f64` batch buffers plus the `f32`
/// engine scratch (only one side is touched per flush, but carrying both
/// keeps [`LeafBatcher::infer`] backend-agnostic).
#[derive(Default)]
struct FlushScratch {
    batch: BatchScratch,
    infer: InferScratch,
    rows_f32: Vec<f32>,
}

struct LeafBatcher<'a> {
    backend: BatchBackend<'a>,
    input_dim: usize,
    /// Pending requests at which the enqueuer flushes immediately.
    threshold: usize,
    shared: Mutex<BatcherQueue>,
    ready: Condvar,
    flushes: AtomicU64,
    fill: Option<Histogram>,
    flush_ns: Option<Histogram>,
}

#[derive(Default)]
struct BatcherQueue {
    /// Flattened pending feature rows (`tickets.len()` × `input_dim`).
    rows: Vec<f64>,
    /// Request ids, in enqueue order (row `i` belongs to `tickets[i]`).
    tickets: Vec<u64>,
    next_ticket: u64,
    /// Completed logits rows, keyed by ticket, awaiting pickup.
    results: HashMap<u64, Vec<f64>>,
}

struct PendingBatch {
    rows: Vec<f64>,
    tickets: Vec<u64>,
}

impl<'a> LeafBatcher<'a> {
    fn new(
        backend: BatchBackend<'a>,
        input_dim: usize,
        threshold: usize,
        obs: Option<&BatchObs>,
    ) -> Self {
        LeafBatcher {
            backend,
            input_dim,
            threshold: threshold.max(1),
            shared: Mutex::new(BatcherQueue::default()),
            ready: Condvar::new(),
            flushes: AtomicU64::new(0),
            fill: obs.map(|o| o.fill.clone()),
            flush_ns: obs.map(|o| o.flush_ns.clone()),
        }
    }

    fn take_pending(queue: &mut BatcherQueue) -> PendingBatch {
        PendingBatch {
            rows: std::mem::take(&mut queue.rows),
            tickets: std::mem::take(&mut queue.tickets),
        }
    }

    /// Enqueues `features`, blocks until its logits row is available, and
    /// copies it into `out`. `scratch` is the calling worker's private
    /// batch-forward scratch, used only if this call ends up flushing.
    fn infer(&self, features: &[f64], out: &mut Vec<f64>, scratch: &mut FlushScratch) {
        debug_assert_eq!(features.len(), self.input_dim);
        let mut queue = self.shared.lock().expect("batcher lock poisoned");
        let ticket = queue.next_ticket;
        queue.next_ticket += 1;
        queue.rows.extend_from_slice(features);
        queue.tickets.push(ticket);
        if queue.tickets.len() >= self.threshold {
            let batch = Self::take_pending(&mut queue);
            drop(queue);
            self.flush(batch, scratch);
            queue = self.shared.lock().expect("batcher lock poisoned");
        }
        loop {
            if let Some(row) = queue.results.remove(&ticket) {
                out.clear();
                out.extend_from_slice(&row);
                return;
            }
            let (guard, timeout) = self
                .ready
                .wait_timeout(queue, FLUSH_TIMEOUT)
                .expect("batcher lock poisoned");
            queue = guard;
            // Liveness valve: if nobody filled the batch while we slept,
            // the remaining peers are idle — flush whatever is pending
            // (which includes our own request if it wasn't flushed yet).
            if timeout.timed_out() && !queue.tickets.is_empty() {
                let batch = Self::take_pending(&mut queue);
                drop(queue);
                self.flush(batch, scratch);
                queue = self.shared.lock().expect("batcher lock poisoned");
            }
        }
    }

    /// Runs one batched forward pass over `batch` and publishes each
    /// logits row under its ticket. Runs entirely outside the queue lock
    /// except for the final publication.
    fn flush(&self, batch: PendingBatch, scratch: &mut FlushScratch) {
        let n = batch.tickets.len();
        self.flushes.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.fill {
            h.record(n as u64);
        }
        let span = self.flush_ns.as_ref().map(|h| h.start_span());
        let queue = match &self.backend {
            BatchBackend::Exact(net) => {
                let x = Matrix::from_vec(n, self.input_dim, batch.rows);
                let logits = net.forward_batch_into(&x, &mut scratch.batch);
                let mut queue = self.shared.lock().expect("batcher lock poisoned");
                for (i, &ticket) in batch.tickets.iter().enumerate() {
                    queue.results.insert(ticket, logits.row(i).to_vec());
                }
                queue
            }
            BatchBackend::Fast(engine) => {
                engine.forward_batch(&batch.rows, n, &mut scratch.rows_f32, &mut scratch.infer);
                let out_dim = engine.output_dim();
                let mut queue = self.shared.lock().expect("batcher lock poisoned");
                for (i, &ticket) in batch.tickets.iter().enumerate() {
                    let row = &scratch.rows_f32[i * out_dim..(i + 1) * out_dim];
                    queue
                        .results
                        .insert(ticket, row.iter().map(|&v| f64::from(v)).collect());
                }
                queue
            }
        };
        drop(queue);
        drop(span);
        self.ready.notify_all();
    }
}

/// Everything the DRL guidance shares between workers: the (read-only)
/// featurizer and network, the leaf batcher, and the striped inference
/// cache.
struct DrlShared<'a> {
    featurizer: &'a Featurizer,
    process_idx: usize,
    precision: Precision,
    batcher: LeafBatcher<'a>,
    cache: Option<SharedEvalCache>,
}

/// Per-worker DRL guidance: the same decision logic as
/// [`DrlPolicy`](crate::DrlPolicy) — argmax expansion, proportional
/// rollout sampling, singleton skips with preserved RNG draws — but with
/// inference routed through the shared batcher and cache instead of a
/// private network and cache.
struct BatchedDrlGuide<'a> {
    shared: &'a DrlShared<'a>,
    ready_scratch: Vec<TaskId>,
    view: StateView,
    flush_scratch: FlushScratch,
    logits: Vec<f64>,
    logits_f32: Vec<f32>,
    probs: Vec<f64>,
    probs_f32: Vec<f32>,
    slot_scratch: Vec<Option<TaskId>>,
    action_probs: Vec<f64>,
    inferences: u64,
    skips: u64,
}

/// Maps a full slot distribution onto the probability of each action in
/// `actions` — the same mapping [`DrlPolicy`](crate::DrlPolicy) applies,
/// including the tiny epsilon for backlogged tasks the network cannot
/// see.
fn map_action_probs(
    actions: &[Action],
    probs: &[f64],
    slot_tasks: &[Option<TaskId>],
    process_idx: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.extend(actions.iter().map(|&a| {
        match a {
            Action::Process => probs[process_idx],
            Action::Schedule(t) | Action::Place(t, _) => slot_tasks
                .iter()
                .position(|&s| s == Some(t))
                .map(|slot| probs[slot])
                // Backlogged tasks are invisible to the network.
                .unwrap_or(1e-9),
        }
    }));
}

impl<'a> BatchedDrlGuide<'a> {
    fn new(shared: &'a DrlShared<'a>) -> Self {
        BatchedDrlGuide {
            shared,
            ready_scratch: Vec::new(),
            view: StateView::default(),
            flush_scratch: FlushScratch::default(),
            logits: Vec::new(),
            logits_f32: Vec::new(),
            probs: Vec::new(),
            probs_f32: Vec::new(),
            slot_scratch: Vec::new(),
            action_probs: Vec::new(),
            inferences: 0,
            skips: 0,
        }
    }

    /// Probability of each action in `actions`, via (in order): the
    /// shared fingerprint cache — probed *before* any batching so hits
    /// never wait on peers — then a batched forward pass whose result is
    /// published back to the cache for every other worker.
    fn action_probs(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        actions: &[Action],
    ) -> &[f64] {
        let process_idx = self.shared.process_idx;
        let key = self
            .shared
            .cache
            .is_some()
            .then(|| state.frontier_fingerprint());
        if let (Some(cache), Some(key)) = (self.shared.cache.as_ref(), key) {
            if cache.get_into(key, &mut self.probs, &mut self.slot_scratch) {
                map_action_probs(
                    actions,
                    &self.probs,
                    &self.slot_scratch,
                    process_idx,
                    &mut self.action_probs,
                );
                return &self.action_probs;
            }
        }
        self.inferences += 1;
        self.shared.featurizer.featurize_into(
            ctx.dag,
            ctx.spec,
            state,
            ctx.features,
            &mut self.ready_scratch,
            &mut self.view,
        );
        self.shared.batcher.infer(
            &self.view.features,
            &mut self.logits,
            &mut self.flush_scratch,
        );
        match self.shared.precision {
            Precision::Exact => {
                softmax_masked_into(&self.logits, &self.view.mask, &mut self.probs);
            }
            Precision::Fast => {
                // Published fast logits are exact upcasts of the engine's
                // `f32` rows, so this downcast is lossless; the softmax
                // then runs entirely in `f32`, matching the sequential
                // fast path bit for bit, and only the resulting
                // probabilities are upcast (exactly) for the shared `f64`
                // cache and the action mapping.
                self.logits_f32.clear();
                self.logits_f32
                    .extend(self.logits.iter().map(|&v| v as f32));
                softmax_masked_f32_into(&self.logits_f32, &self.view.mask, &mut self.probs_f32);
                self.probs.clear();
                self.probs
                    .extend(self.probs_f32.iter().map(|&p| f64::from(p)));
            }
        }
        if let (Some(cache), Some(key)) = (self.shared.cache.as_ref(), key) {
            cache.insert(key, &self.probs, &self.view.slot_tasks);
        }
        map_action_probs(
            actions,
            &self.probs,
            &self.view.slot_tasks,
            process_idx,
            &mut self.action_probs,
        );
        &self.action_probs
    }
}

impl SearchPolicy for BatchedDrlGuide<'_> {
    fn choose_expansion(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        untried: &[Action],
        _rng: &mut StdRng,
    ) -> usize {
        // A single candidate needs no inference: the argmax is forced.
        if untried.len() == 1 {
            self.skips += 1;
            return 0;
        }
        let probs = self.action_probs(ctx, state, untried);
        let mut best = 0;
        for i in 1..probs.len() {
            if probs[i] > probs[best] {
                best = i;
            }
        }
        best
    }

    fn choose_rollout(
        &mut self,
        ctx: &PolicyContext<'_>,
        state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action {
        // Forced decision: skip the inference but keep the RNG stream
        // aligned with the non-skipping path (see `DrlPolicy`).
        if legal.len() == 1 {
            self.skips += 1;
            let _: f64 = rng.gen();
            return legal[0];
        }
        let probs = self.action_probs(ctx, state, legal);
        let total: f64 = probs.iter().sum();
        if total <= 0.0 {
            return legal[rng.gen_range(0..legal.len())];
        }
        let x: f64 = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        for (a, &p) in legal.iter().zip(probs) {
            acc += p;
            if x < acc {
                return *a;
            }
        }
        *legal.last().expect("legal is never empty")
    }

    fn name(&self) -> &str {
        "drl-batched"
    }

    fn inferences(&self) -> u64 {
        self.inferences
    }

    fn inference_skips(&self) -> u64 {
        self.skips
    }
}

/// The `mcts.batch.*` instrument family (tree-parallel only).
#[derive(Debug, Clone)]
struct BatchObs {
    /// Requests per flushed batch.
    fill: Histogram,
    /// Wall time of one batched forward pass (including publication).
    flush_ns: Histogram,
    /// Expansion claims lost to a concurrent worker.
    vloss_collisions: Counter,
}

impl BatchObs {
    fn new(obs: &Obs) -> Self {
        BatchObs {
            fill: obs.histogram("mcts.batch.fill"),
            flush_ns: obs.histogram("mcts.batch.flush_ns"),
            vloss_collisions: obs.counter("mcts.batch.vloss_collisions"),
        }
    }
}

/// Shared state of one parallel search (one `schedule` call).
struct SearchShared<'a> {
    dag: &'a Dag,
    spec: &'a ClusterSpec,
    features: &'a GraphFeatures,
    exploration: f64,
    max_value_mode: bool,
    ln_table: Vec<f64>,
    tree: Mutex<Tree>,
    /// Root id and state of the decision currently being searched.
    /// Written by the coordinator strictly between the `done` and `start`
    /// barriers, read by workers strictly after `start` — the barriers
    /// are the synchronization; the mutex merely satisfies the borrow
    /// checker cheaply.
    ctl: Mutex<DecisionCtl>,
    /// Remaining iteration tickets for the current decision. Workers
    /// decrement and run while positive, so the *total* iterations per
    /// decision equal the sequential budget regardless of thread count.
    tickets: AtomicI64,
    stop: AtomicBool,
    start: Barrier,
    done: Barrier,
    /// Deepest selection path seen this decision (for `mcts.tree_depth`).
    decision_depth: AtomicU64,
    drl: Option<DrlShared<'a>>,
}

struct DecisionCtl {
    root: NodeId,
    state: SimState,
}

/// Counters a worker accumulates locally and hands back at join — the
/// only cross-thread stats traffic is this one struct per worker.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerTotals {
    iterations: u64,
    rollout_steps: u64,
    collisions: u64,
    inferences: u64,
    skips: u64,
}

/// Per-worker reusable buffers (the parallel analogue of the sequential
/// search's `RolloutScratch`).
struct WorkerScratch<'a> {
    env: Option<SimEnv<'a>>,
    legal: Vec<Action>,
    path_nodes: Vec<NodeId>,
    path_actions: Vec<Action>,
    untried: Vec<Action>,
}

fn worker_seed(base: u64, worker: usize) -> u64 {
    // Distinct, deterministic streams per worker; the odd multiplier is
    // the usual Fibonacci-hashing constant.
    base ^ (worker as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// One worker's lifetime: wait at the start barrier, drain iteration
/// tickets against the current root, park at the done barrier; repeat
/// until stopped.
fn worker_loop(shared: &SearchShared<'_>, worker: usize, base_seed: u64) -> WorkerTotals {
    let mut rng = StdRng::seed_from_u64(worker_seed(base_seed, worker));
    let mut guide: Box<dyn SearchPolicy> = match shared.drl.as_ref() {
        Some(drl) => Box::new(BatchedDrlGuide::new(drl)),
        None => Box::new(RandomPolicy),
    };
    let mut totals = WorkerTotals::default();
    let mut scratch = WorkerScratch {
        env: None,
        legal: Vec::new(),
        path_nodes: Vec::new(),
        path_actions: Vec::new(),
        untried: Vec::new(),
    };
    loop {
        shared.start.wait();
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let (root, root_state) = {
            let ctl = shared.ctl.lock().expect("ctl lock poisoned");
            (ctl.root, ctl.state.clone())
        };
        let local_root = SimEnv::from_state(shared.dag, shared.spec, root_state);
        while shared.tickets.fetch_sub(1, Ordering::Relaxed) > 0 {
            totals.iterations += 1;
            iterate(
                shared,
                guide.as_mut(),
                &mut rng,
                root,
                &local_root,
                &mut scratch,
                &mut totals,
            );
        }
        shared.done.wait();
    }
    totals.inferences = guide.inferences();
    totals.skips = guide.inference_skips();
    totals
}

/// One tree-parallel MCTS iteration. The tree lock is held for three
/// short pointer-chasing windows (select+mark, claim, attach+backprop);
/// state replay, guidance inference, and the rollout all run unlocked.
fn iterate<'a>(
    shared: &SearchShared<'a>,
    guide: &mut dyn SearchPolicy,
    rng: &mut StdRng,
    root: NodeId,
    local_root: &SimEnv<'a>,
    scratch: &mut WorkerScratch<'a>,
    totals: &mut WorkerTotals,
) {
    let ctx = PolicyContext {
        dag: shared.dag,
        spec: shared.spec,
        features: shared.features,
    };
    // --- Phase 1 (locked): select a leaf, mark the path in flight. ---
    let leaf = {
        let mut tree = shared.tree.lock().expect("tree lock poisoned");
        let mut id = root;
        scratch.path_nodes.clear();
        scratch.path_actions.clear();
        scratch.path_nodes.push(id);
        while tree.node(id).fully_expanded() && !tree.node(id).terminal {
            // Claim/attach race: a peer claims the node's last untried
            // action in its phase 4 but only attaches the child in its
            // phase 6, so a non-terminal node can transiently look fully
            // expanded while having no children to descend into. Nothing
            // to select or expand here — give the ticket up (the peer's
            // in-flight rollout carries the value).
            if tree.node(id).children.is_empty() {
                totals.collisions += 1;
                return;
            }
            let (action, child) = select_child_ucb(
                &tree,
                id,
                shared.exploration,
                shared.max_value_mode,
                &shared.ln_table,
            );
            scratch.path_actions.push(action);
            id = child;
            scratch.path_nodes.push(id);
        }
        // Terminal leaf: its value is exact; reinforce it under the same
        // lock — no virtual loss needed since we never leave the tree.
        if tree.node(id).terminal {
            let value = tree.node(id).terminal_value;
            tree.backpropagate_to(id, root, value);
            return;
        }
        for &n in &scratch.path_nodes {
            tree.node_mut(n).vloss += 1;
        }
        scratch.untried.clear();
        scratch.untried.extend_from_slice(&tree.node(id).untried);
        id
    };
    shared
        .decision_depth
        .fetch_max(scratch.path_actions.len() as u64 + 1, Ordering::Relaxed);
    // --- Phase 2 (unlocked): replay the path into the scratch env. ---
    let env = match scratch.env.as_mut() {
        Some(env) => {
            env.clone_from(local_root);
            env
        }
        None => scratch.env.insert(local_root.clone()),
    };
    for &action in &scratch.path_actions {
        env.step_trusted(action);
    }
    // --- Phase 3 (unlocked): pick the expansion — may batch-infer. ---
    let pick = guide.choose_expansion(&ctx, env.observe(), &scratch.untried, rng);
    let desired = scratch.untried[pick];
    // --- Phase 4 (locked): claim the action from the live node. A peer
    // may have claimed it (or everything) since our snapshot. ---
    let action = {
        let mut tree = shared.tree.lock().expect("tree lock poisoned");
        let node = tree.node_mut(leaf);
        match node.untried.iter().position(|&a| a == desired) {
            Some(i) => node.untried.swap_remove(i),
            None => {
                totals.collisions += 1;
                if node.untried.is_empty() {
                    // Fully claimed by peers: release the marks and give
                    // the ticket up (the peers' rollouts carry the value).
                    for &n in &scratch.path_nodes {
                        tree.node_mut(n).vloss -= 1;
                    }
                    return;
                }
                node.untried.swap_remove(0)
            }
        }
    };
    // --- Phase 5 (unlocked): step, then simulate to termination. ---
    env.step_trusted(action);
    let untried = env.observe().legal_actions(shared.dag);
    let terminal = untried.is_empty();
    let terminal_value = if terminal {
        -(env.makespan().unwrap_or(0) as f64)
    } else {
        0.0
    };
    let value = if terminal {
        terminal_value
    } else {
        let adapter = RolloutAdapter {
            policy: guide,
            features: shared.features,
        };
        let mut driver = EpisodeDriver::from_parts(adapter, std::mem::take(&mut scratch.legal));
        let outcome = driver.drive_trusted(env, rng, u64::MAX);
        scratch.legal = driver.into_parts().1;
        totals.rollout_steps += outcome.steps();
        -(env.makespan().expect("rollout ran to termination") as f64)
    };
    // --- Phase 6 (locked): attach the child, release the marks,
    // backpropagate the real value. ---
    {
        let mut tree = shared.tree.lock().expect("tree lock poisoned");
        let child = tree.push(Node::fresh(
            Some(leaf),
            Some(action),
            untried,
            terminal,
            terminal_value,
        ));
        tree.node_mut(leaf).children.push((action, child));
        for &n in &scratch.path_nodes {
            tree.node_mut(n).vloss -= 1;
        }
        tree.backpropagate_to(child, root, value);
    }
}

/// The best root action by exploitation only — the shared-tree analogue
/// of `MctsSearch::best_action`.
fn best_root_action(tree: &Tree, root: NodeId, max_value_mode: bool) -> Action {
    let node = tree.node(root);
    assert!(
        !node.children.is_empty(),
        "best_action requires at least one iteration"
    );
    let mut best: Option<(Action, (f64, f64))> = None;
    for &(action, child_id) in &node.children {
        let child = tree.node(child_id);
        let exploit = if max_value_mode {
            child.max_value
        } else {
            child.mean_value()
        };
        let key = (exploit, child.mean_value());
        if best.is_none_or(|(_, bk)| key_gt(key, bk)) {
            best = Some((action, key));
        }
    }
    best.expect("children checked non-empty").0
}

/// Which guidance the parallel engine runs.
enum Mode {
    Pure,
    Drl(PolicyNetwork),
}

/// Tree-parallel MCTS scheduler: [`MctsConfig::search_threads`] workers
/// over one shared tree, with virtual-loss decorrelation and (in DRL
/// mode) batched leaf inference through [`MctsConfig::leaf_batch_size`].
///
/// With `search_threads <= 1` this type delegates to the sequential
/// [`MctsScheduler`] and is bit-identical to it; see the module docs for
/// the full determinism contract.
///
/// ```
/// use rand::SeedableRng;
/// use spear_cluster::ClusterSpec;
/// use spear_dag::generator::LayeredDagSpec;
/// use spear_mcts::{MctsConfig, TreeParallelMcts};
/// use spear_sched::Scheduler;
///
/// let dag = LayeredDagSpec { num_tasks: 12, ..LayeredDagSpec::paper_training() }
///     .generate(&mut rand::rngs::StdRng::seed_from_u64(3));
/// let spec = ClusterSpec::unit(2);
/// let mut mcts = TreeParallelMcts::pure(MctsConfig {
///     initial_budget: 24,
///     min_budget: 4,
///     search_threads: 2,
///     ..MctsConfig::default()
/// });
/// let schedule = mcts.schedule(&dag, &spec).unwrap();
/// schedule.validate(&dag, &spec).unwrap();
/// ```
pub struct TreeParallelMcts {
    config: MctsConfig,
    mode: Mode,
    /// The bit-identity escape hatch: populated iff `search_threads <= 1`.
    sequential: Option<MctsScheduler>,
    name: String,
    obs: Obs,
    search_obs: Option<SearchObs>,
    batch_obs: Option<BatchObs>,
}

impl std::fmt::Debug for TreeParallelMcts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeParallelMcts")
            .field("config", &self.config)
            .field("name", &self.name)
            .finish()
    }
}

impl TreeParallelMcts {
    /// Tree-parallel classic MCTS (random expansion and rollout).
    pub fn pure(config: MctsConfig) -> Self {
        Self::build(config, Mode::Pure, "mcts-tree")
    }

    /// Tree-parallel DRL-guided MCTS — parallel Spear with batched leaf
    /// inference and the shared frontier-fingerprint cache.
    pub fn drl(config: MctsConfig, policy: PolicyNetwork) -> Self {
        Self::build(config, Mode::Drl(policy), "spear-tree")
    }

    fn build(config: MctsConfig, mode: Mode, name: &str) -> Self {
        let sequential = (config.search_threads <= 1).then(|| match &mode {
            Mode::Pure => MctsScheduler::pure(config.clone()),
            Mode::Drl(policy) => MctsScheduler::drl(config.clone(), policy.clone()),
        });
        TreeParallelMcts {
            config,
            mode,
            sequential,
            name: name.to_owned(),
            obs: Obs::noop(),
            search_obs: None,
            batch_obs: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MctsConfig {
        &self.config
    }

    /// Attaches a metric sink recording the `mcts.*` family plus the
    /// tree-parallel `mcts.batch.*` instruments. Pass [`Obs::noop`] to
    /// detach.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place variant of [`TreeParallelMcts::with_obs`].
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.search_obs = None;
        self.batch_obs = None;
        if let Some(seq) = self.sequential.as_mut() {
            seq.set_obs(obs);
        }
    }

    fn prepare_obs(&mut self) {
        if spear_obs::compiled() && self.search_obs.is_none() && self.obs.is_enabled() {
            self.search_obs = Some(SearchObs::new(&self.obs));
            self.batch_obs = Some(BatchObs::new(&self.obs));
        }
    }

    /// Schedules `dag` and reports merged search statistics: counters are
    /// summed across workers, cache stats come from the shared cache, and
    /// `elapsed_seconds` is wall-clock (not CPU) time.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if the DAG cannot run on the cluster.
    pub fn schedule_with_stats(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        if let Some(seq) = self.sequential.as_mut() {
            return seq.schedule_with_stats(dag, spec);
        }
        // Scale exploration to the makespan magnitude (paper §IV).
        let estimate = spear_sched::greedy_makespan_estimate(dag, spec)? as f64;
        // Validates DAG-vs-cluster before any thread is spawned, so every
        // fallible step below this point is unreachable-by-construction.
        let root_env = SimEnv::new(dag, spec)?;
        self.run_search(dag, spec, root_env, estimate)
    }

    /// Multi-job counterpart of [`TreeParallelMcts::schedule_with_stats`]:
    /// the shared tree spans the arrival stream's union DAG, and every
    /// worker's rollouts inherit the arrival gating through the root-state
    /// clones handed out per decision.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if any job cannot run on the cluster.
    pub fn schedule_multi_with_stats(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        if let Some(seq) = self.sequential.as_mut() {
            return seq.schedule_multi_with_stats(queue, spec);
        }
        let estimate = spear_sched::greedy_makespan_estimate_multi(queue, spec)? as f64;
        let dag = queue.union_dag();
        // `new_multi` validates every job against the cluster up front.
        let root_env = SimEnv::from_state(dag, spec, SimState::new_multi(queue, spec)?);
        self.run_search(dag, spec, root_env, estimate)
    }

    /// Shared tree-parallel search loop behind the single- and multi-job
    /// entry points; `root_env` carries the (possibly arrival-gated) root
    /// state.
    fn run_search(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        mut root_env: SimEnv<'_>,
        estimate: f64,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        let start = std::time::Instant::now();
        self.prepare_obs();
        let threads = self.config.search_threads;
        let features = GraphFeatures::compute(dag);
        let exploration = self.config.exploration_coeff * estimate.max(1.0);
        let budget = self.config.budget();
        let untried = root_env.observe().legal_actions(dag);
        let terminal = untried.is_empty();
        let terminal_value = if terminal {
            -(root_env.makespan().unwrap_or(0) as f64)
        } else {
            0.0
        };
        let mut tree = Tree::new();
        let root = tree.push(Node::fresh(None, None, untried, terminal, terminal_value));

        // The `f32` weight snapshot for fast-precision flushes; hoisted
        // out of `drl` so the shared borrow below can reference it.
        let engine = match &self.mode {
            Mode::Drl(policy) if self.config.nn_precision == Precision::Fast => {
                Some(policy.inference_engine())
            }
            _ => None,
        };
        let drl = match &self.mode {
            Mode::Pure => None,
            Mode::Drl(policy) => {
                let fc = policy.feature_config();
                let cache = self.config.eval_cache.then(|| {
                    SharedEvalCache::new(
                        EVAL_CACHE_CAPACITY,
                        fc.action_dim(),
                        fc.process_action(),
                        threads,
                    )
                });
                let backend = match engine.as_ref() {
                    Some(e) => BatchBackend::Fast(e),
                    None => BatchBackend::Exact(policy.net()),
                };
                Some(DrlShared {
                    featurizer: policy.featurizer(),
                    process_idx: fc.process_action(),
                    precision: self.config.nn_precision,
                    batcher: LeafBatcher::new(
                        backend,
                        fc.input_dim(),
                        self.config.leaf_batch_size.min(threads),
                        self.batch_obs.as_ref(),
                    ),
                    cache,
                })
            }
        };
        let shared = SearchShared {
            dag,
            spec,
            features: &features,
            exploration,
            max_value_mode: self.config.max_value_backprop,
            ln_table: ln_table(),
            tree: Mutex::new(tree),
            ctl: Mutex::new(DecisionCtl {
                root,
                state: root_env.state().clone(),
            }),
            tickets: AtomicI64::new(0),
            stop: AtomicBool::new(false),
            start: Barrier::new(threads + 1),
            done: Barrier::new(threads + 1),
            decision_depth: AtomicU64::new(0),
            drl,
        };
        let search_obs = self.search_obs.as_ref();
        let base_seed = self.config.seed;
        let max_value_mode = self.config.max_value_backprop;

        let (totals, decisions, outcome, tree_nodes) = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let shared = &shared;
                    scope.spawn(move || worker_loop(shared, w, base_seed))
                })
                .collect();
            let mut decisions = 0u64;
            let mut root_id = root;
            let mut err: Option<SpearError> = None;
            loop {
                let root_terminal = shared
                    .tree
                    .lock()
                    .expect("tree lock poisoned")
                    .node(root_id)
                    .terminal;
                if root_terminal {
                    break;
                }
                decisions += 1;
                let span = search_obs.map(|so| so.decision_ns.start_span());
                // `max(1)`: a zero-ticket decision would leave the root
                // childless and the assert below would abort mid-scope.
                let tickets = budget.at_depth(decisions).max(1);
                shared.tickets.store(tickets as i64, Ordering::Relaxed);
                shared.start.wait();
                shared.done.wait();
                let tree = shared.tree.lock().expect("tree lock poisoned");
                let action = best_root_action(&tree, root_id, max_value_mode);
                if let Err(e) = root_env.step(action) {
                    err = Some(e);
                    break;
                }
                root_id = tree
                    .node(root_id)
                    .children
                    .iter()
                    .find(|(a, _)| *a == action)
                    .map(|&(_, id)| id)
                    .expect("best action always has an expanded child");
                // Clear residual in-flight marks: a worker that lost the
                // last ticket race may have bailed between barriers, but
                // marks are always paired inc/dec within one iteration,
                // so by the `done` barrier the counts are zero again.
                debug_assert_eq!(tree.node(root_id).vloss, 0);
                drop(tree);
                {
                    let mut ctl = shared.ctl.lock().expect("ctl lock poisoned");
                    ctl.root = root_id;
                    ctl.state.clone_from(root_env.state());
                }
                if let Some(so) = search_obs {
                    so.tree_depth
                        .record(shared.decision_depth.swap(0, Ordering::Relaxed));
                }
                drop(span);
            }
            shared.stop.store(true, Ordering::Relaxed);
            shared.start.wait();
            let totals: Vec<WorkerTotals> = handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect();
            let tree_nodes = shared.tree.lock().expect("tree lock poisoned").len();
            let outcome = match err {
                Some(e) => Err(e),
                None => Ok(root_env.state().clone()),
            };
            (totals, decisions, outcome, tree_nodes)
        });
        let final_state = outcome?;

        let merged = totals
            .iter()
            .fold(WorkerTotals::default(), |acc, t| WorkerTotals {
                iterations: acc.iterations + t.iterations,
                rollout_steps: acc.rollout_steps + t.rollout_steps,
                collisions: acc.collisions + t.collisions,
                inferences: acc.inferences + t.inferences,
                skips: acc.skips + t.skips,
            });
        let cache = shared
            .drl
            .as_ref()
            .and_then(|d| d.cache.as_ref())
            .map(SharedEvalCache::stats)
            .unwrap_or_default();
        let stats = SearchStats {
            iterations: merged.iterations,
            rollout_steps: merged.rollout_steps,
            tree_nodes,
            decisions,
            policy_inferences: merged.inferences,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            inference_skips: merged.skips,
            vloss_collisions: merged.collisions,
            batch_flushes: shared
                .drl
                .as_ref()
                .map(|d| d.batcher.flushes.load(Ordering::Relaxed))
                .unwrap_or(0),
            elapsed_seconds: start.elapsed().as_secs_f64(),
        };
        if spear_obs::compiled() {
            if let Some(so) = &self.search_obs {
                so.record_stats(&stats);
            }
            if let Some(bo) = &self.batch_obs {
                bo.vloss_collisions.add(stats.vloss_collisions);
            }
        }
        let schedule = SimEnv::from_state(dag, spec, final_state).into_schedule()?;
        Ok((schedule, stats))
    }
}

impl Scheduler for TreeParallelMcts {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        Ok(self.schedule_with_stats(dag, spec)?.0)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        Ok(self.schedule_multi_with_stats(queue, spec)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use spear_dag::generator::LayeredDagSpec;
    use spear_rl::FeatureConfig;

    fn dag(seed: u64) -> Dag {
        LayeredDagSpec {
            num_tasks: 14,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(seed))
    }

    fn config(threads: usize) -> MctsConfig {
        MctsConfig {
            initial_budget: 40,
            min_budget: 8,
            search_threads: threads,
            leaf_batch_size: 4,
            ..MctsConfig::default()
        }
    }

    #[test]
    fn single_thread_is_bit_identical_to_sequential() {
        let dag = dag(1);
        let spec = ClusterSpec::unit(2);
        let (seq, seq_stats) = MctsScheduler::pure(config(1))
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        let (par, par_stats) = TreeParallelMcts::pure(config(1))
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        assert_eq!(seq, par, "threads=1 must delegate to the sequential engine");
        assert_eq!(seq_stats.iterations, par_stats.iterations);
        assert_eq!(seq_stats.rollout_steps, par_stats.rollout_steps);
    }

    #[test]
    fn parallel_pure_schedule_is_valid() {
        let dag = dag(2);
        let spec = ClusterSpec::unit(2);
        let mut mcts = TreeParallelMcts::pure(config(4));
        assert_eq!(mcts.name(), "mcts-tree");
        let (schedule, stats) = mcts.schedule_with_stats(&dag, &spec).unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert!(stats.iterations > 0);
        assert!(stats.tree_nodes > 1);
        assert!(stats.decisions >= dag.len() as u64);
        assert_eq!(stats.batch_flushes, 0, "pure mode never batches");
    }

    #[test]
    fn parallel_drl_batches_and_shares_the_cache() {
        let dag = dag(3);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(0);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let mut spear = TreeParallelMcts::drl(config(4), policy);
        assert_eq!(spear.name(), "spear-tree");
        let (schedule, stats) = spear.schedule_with_stats(&dag, &spec).unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert!(stats.policy_inferences > 0);
        assert!(stats.batch_flushes > 0, "DRL mode must flush batches");
        assert!(
            stats.batch_flushes <= stats.policy_inferences,
            "a flush covers at least one inference"
        );
        assert!(stats.cache_hits > 0, "workers must share cache entries");
    }

    #[test]
    fn parallel_drl_without_cache_still_schedules() {
        let dag = dag(4);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(1);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let cfg = MctsConfig {
            eval_cache: false,
            ..config(3)
        };
        let (schedule, stats) = TreeParallelMcts::drl(cfg, policy)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert!(stats.policy_inferences > 0);
    }

    #[test]
    fn unbatched_leaves_flush_one_by_one() {
        let dag = dag(5);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(2);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let cfg = MctsConfig {
            leaf_batch_size: 1,
            ..config(2)
        };
        let (schedule, stats) = TreeParallelMcts::drl(cfg, policy)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert_eq!(
            stats.batch_flushes, stats.policy_inferences,
            "batch size 1 flushes every inference alone"
        );
    }

    /// Fast precision must flow through the batched flush path: the
    /// schedule stays valid, batches still flush, and the shared cache
    /// still serves hits (it stores exact upcasts of the `f32` rows).
    #[test]
    fn parallel_fast_precision_drl_batches_validly() {
        let dag = dag(9);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(3);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let cfg = MctsConfig {
            nn_precision: Precision::Fast,
            ..config(4)
        };
        let (schedule, stats) = TreeParallelMcts::drl(cfg, policy)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert!(stats.policy_inferences > 0);
        assert!(stats.batch_flushes > 0, "fast mode must still batch");
        assert!(
            stats.cache_hits > 0,
            "fast rows must land in the shared cache"
        );
        assert!(schedule.makespan() >= dag.makespan_lower_bound(spec.capacity()));
        assert!(schedule.makespan() <= dag.total_work());
    }

    #[test]
    fn parallel_multi_job_schedule_respects_arrivals() {
        let queue = JobQueue::new(vec![(0u64, dag(6)), (8, dag(7))]).unwrap();
        let spec = ClusterSpec::unit(2);
        let (schedule, stats) = TreeParallelMcts::pure(config(3))
            .schedule_multi_with_stats(&queue, &spec)
            .unwrap();
        schedule.validate(queue.union_dag(), &spec).unwrap();
        for span in queue.spans() {
            for i in span.first_task..span.first_task + span.tasks {
                let start = schedule.placement_of(TaskId::new(i)).unwrap().start;
                assert!(start >= span.arrival, "task {i} started before arrival");
            }
        }
        assert!(stats.iterations > 0);
        assert_eq!(queue.jct_report(&schedule).completions().len(), 2);
    }

    #[test]
    fn single_thread_multi_job_delegates_to_sequential() {
        let queue = JobQueue::new(vec![(0u64, dag(6)), (8, dag(7))]).unwrap();
        let spec = ClusterSpec::unit(2);
        let seq = MctsScheduler::pure(config(1))
            .schedule_multi(&queue, &spec)
            .unwrap();
        let par = TreeParallelMcts::pure(config(1))
            .schedule_multi(&queue, &spec)
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..8).map(|w| worker_seed(7, w)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
