//! The MCTS scheduler: budgeted decision loop around [`MctsSearch`].

use serde::{Deserialize, Serialize};
use spear_cluster::env::SimEnv;
use spear_cluster::{ClusterSpec, JobQueue, Schedule, SimState, SpearError};
use spear_dag::analysis::GraphFeatures;
use spear_dag::Dag;
use spear_obs::{Counter, Histogram, Obs};
use spear_rl::PolicyNetwork;
use spear_sched::Scheduler;

use crate::{
    BudgetSchedule, DrlPolicy, HeuristicPolicy, MctsSearch, RandomPolicy, SearchPolicy,
    StateEvaluator, ValueEvaluator,
};

/// Configuration of the MCTS scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MctsConfig {
    /// Iteration budget at the first decision (paper: 1000 for pure MCTS,
    /// 100 for Spear).
    pub initial_budget: u64,
    /// Budget floor at deep decisions (paper: 100 / 50).
    pub min_budget: u64,
    /// Exploration coefficient; the effective UCB constant is this value
    /// times a greedy (Tetris) makespan estimate of the job, matching the
    /// paper's "same order as the makespan of the DAG" guidance.
    pub exploration_coeff: f64,
    /// Use the budget decay of Eq. 4; `false` keeps the initial budget at
    /// every depth (ablation).
    pub decay_budget: bool,
    /// Exploit the *maximum* rollout return per node (paper Eq. 5);
    /// `false` falls back to classic mean-value UCB (ablation).
    pub max_value_backprop: bool,
    /// Cache policy/value inferences by state fingerprint within each
    /// scheduling episode. Hits are bit-identical to recomputation, so
    /// this is on by default; disable (`--no-eval-cache` on the CLI) for
    /// differential testing. (Deserializing a config serialized before
    /// this field existed yields `false` — the safe, slower setting.)
    #[serde(default)]
    pub eval_cache: bool,
    /// RNG seed for rollouts and tie-breaking.
    pub seed: u64,
    /// Number of workers descending one shared search tree in
    /// [`TreeParallelMcts`](crate::TreeParallelMcts). `1` (the default)
    /// selects the sequential engine, which stays bit-identical to
    /// [`MctsScheduler`]; values above 1 trade exact reproducibility of
    /// the sequential search for wall-clock speed (each run is still
    /// internally deterministic only in its per-worker streams, not in
    /// their interleaving). Ignored by the plain [`MctsScheduler`].
    #[serde(default = "default_search_threads")]
    pub search_threads: usize,
    /// Leaf states a tree-parallel worker group accumulates before one
    /// batched policy forward pass. `1` disables batching (every leaf
    /// infers alone); the effective flush threshold is capped at
    /// `search_threads` since no more leaves can ever be pending.
    /// Ignored by the plain [`MctsScheduler`] and in pure (non-DRL)
    /// mode.
    #[serde(default = "default_leaf_batch_size")]
    pub leaf_batch_size: usize,
    /// Numeric precision of policy/value inference during search.
    /// `Exact` (the default, and what configs serialized before this
    /// field existed deserialize to) runs the training-grade `f64`
    /// forward pass and stays bit-identical to earlier releases; `Fast`
    /// snapshots the weights into the lane-padded `f32`
    /// [`InferenceEngine`](spear_nn::InferenceEngine) and doubles the
    /// eval-cache capacity at the same memory budget. Training is never
    /// affected — only inference inside the search loop.
    #[serde(default)]
    pub nn_precision: spear_nn::Precision,
}

fn default_search_threads() -> usize {
    1
}

fn default_leaf_batch_size() -> usize {
    8
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            initial_budget: 1000,
            min_budget: 100,
            exploration_coeff: 0.06,
            decay_budget: true,
            max_value_backprop: true,
            eval_cache: true,
            seed: 0,
            search_threads: default_search_threads(),
            leaf_batch_size: default_leaf_batch_size(),
            nn_precision: spear_nn::Precision::default(),
        }
    }
}

impl MctsConfig {
    /// The budget schedule implied by this config.
    pub fn budget(&self) -> BudgetSchedule {
        if self.decay_budget {
            BudgetSchedule::new(self.initial_budget, self.min_budget)
        } else {
            BudgetSchedule::flat(self.initial_budget)
        }
    }
}

/// Statistics of one scheduling run, reported by
/// [`MctsScheduler::schedule_with_stats`] (feeds Table I and the
/// ablations).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Total MCTS iterations across all decisions.
    pub iterations: u64,
    /// Total simulated rollout steps.
    pub rollout_steps: u64,
    /// Total tree nodes allocated.
    pub tree_nodes: usize,
    /// Number of decisions (tree re-rootings) taken.
    pub decisions: u64,
    /// Policy-network forward passes (zero for non-DRL policies).
    #[serde(default)]
    pub policy_inferences: u64,
    /// Inferences served from the fingerprint-keyed eval cache (policy
    /// and value caches combined).
    #[serde(default)]
    pub cache_hits: u64,
    /// Cache probes that found nothing and fell through to a fresh
    /// inference.
    #[serde(default)]
    pub cache_misses: u64,
    /// Live cache entries displaced by inserts under capacity pressure.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Inferences skipped outright because the decision was forced (a
    /// single untried/legal action) — distinct from cache hits, which
    /// still consult a stored distribution.
    #[serde(default)]
    pub inference_skips: u64,
    /// Tree-parallel only: expansion races where a worker reached the
    /// claim step and found its chosen action already taken by a peer
    /// (the rollout proceeds on a substitute action). Zero for
    /// sequential searches.
    #[serde(default)]
    pub vloss_collisions: u64,
    /// Tree-parallel DRL only: batched policy forward passes (each one
    /// matmul covering up to `leaf_batch_size` leaves). Zero for
    /// sequential searches.
    #[serde(default)]
    pub batch_flushes: u64,
    /// Wall-clock seconds spent searching.
    pub elapsed_seconds: f64,
}

impl SearchStats {
    /// Combines the stats of two searches that ran concurrently on the
    /// same job (root- or tree-parallel workers): every counter is
    /// summed, while `elapsed_seconds` takes the maximum because the
    /// workers' wall-clock intervals overlap — summing them would
    /// double-count real time and make derived rates (iterations per
    /// second) meaningless.
    #[must_use]
    pub fn merged(self, other: SearchStats) -> SearchStats {
        SearchStats {
            iterations: self.iterations + other.iterations,
            rollout_steps: self.rollout_steps + other.rollout_steps,
            tree_nodes: self.tree_nodes + other.tree_nodes,
            decisions: self.decisions + other.decisions,
            policy_inferences: self.policy_inferences + other.policy_inferences,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_misses: self.cache_misses + other.cache_misses,
            cache_evictions: self.cache_evictions + other.cache_evictions,
            inference_skips: self.inference_skips + other.inference_skips,
            vloss_collisions: self.vloss_collisions + other.vloss_collisions,
            batch_flushes: self.batch_flushes + other.batch_flushes,
            elapsed_seconds: self.elapsed_seconds.max(other.elapsed_seconds),
        }
    }
}

/// The scheduler's search instruments: per-episode totals mirrored from
/// [`SearchStats`] plus the per-decision distributions only the registry
/// sees (wall time, lookahead depth). Built lazily once an enabled sink
/// is attached.
#[derive(Debug, Clone)]
pub(crate) struct SearchObs {
    episodes: Counter,
    decisions: Counter,
    iterations: Counter,
    rollout_steps: Counter,
    policy_inferences: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    inference_skips: Counter,
    pub(crate) decision_ns: Histogram,
    pub(crate) tree_depth: Histogram,
    tree_nodes: Histogram,
    schedule_ns: Histogram,
}

impl SearchObs {
    pub(crate) fn new(obs: &Obs) -> Self {
        SearchObs {
            episodes: obs.counter("mcts.episodes"),
            decisions: obs.counter("mcts.decisions"),
            iterations: obs.counter("mcts.iterations"),
            rollout_steps: obs.counter("mcts.rollout_steps"),
            policy_inferences: obs.counter("mcts.policy_inferences"),
            cache_hits: obs.counter("mcts.cache_hits"),
            cache_misses: obs.counter("mcts.cache_misses"),
            cache_evictions: obs.counter("mcts.cache_evictions"),
            inference_skips: obs.counter("mcts.inference_skips"),
            decision_ns: obs.histogram("mcts.decision_ns"),
            tree_depth: obs.histogram("mcts.tree_depth"),
            tree_nodes: obs.histogram("mcts.tree_nodes"),
            schedule_ns: obs.histogram("mcts.schedule_ns"),
        }
    }

    pub(crate) fn record_stats(&self, stats: &SearchStats) {
        self.episodes.incr();
        self.decisions.add(stats.decisions);
        self.iterations.add(stats.iterations);
        self.rollout_steps.add(stats.rollout_steps);
        self.policy_inferences.add(stats.policy_inferences);
        self.cache_hits.add(stats.cache_hits);
        self.cache_misses.add(stats.cache_misses);
        self.cache_evictions.add(stats.cache_evictions);
        self.inference_skips.add(stats.inference_skips);
        self.tree_nodes.record(stats.tree_nodes as u64);
        self.schedule_ns
            .record((stats.elapsed_seconds * 1e9) as u64);
    }
}

/// A scheduler that runs budgeted MCTS for every decision.
///
/// * [`MctsScheduler::pure`] — classic MCTS with random expansion/rollout
///   (the paper's "MCTS" baseline);
/// * [`MctsScheduler::heuristic`] — greedy Tetris-scored guidance
///   (ablation);
/// * [`MctsScheduler::drl`] — guided by a trained policy network: this is
///   **Spear**.
///
/// An [`Obs`] sink attached via [`MctsScheduler::with_obs`] records the
/// `mcts.*` metric family: the [`SearchStats`] totals as counters plus the
/// per-decision wall-time and tree-depth distributions that the ad-hoc
/// stats struct cannot carry. Instrumentation never influences the
/// search; without the `obs` feature it compiles to nothing.
pub struct MctsScheduler {
    config: MctsConfig,
    policy: Box<dyn SearchPolicy + Send>,
    evaluator: Option<(Box<dyn StateEvaluator + Send>, u64)>,
    name: String,
    obs: Obs,
    search_obs: Option<SearchObs>,
}

impl std::fmt::Debug for MctsScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MctsScheduler")
            .field("config", &self.config)
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl MctsScheduler {
    /// Classic MCTS: random expansion and (work-conserving) random
    /// rollout — see [`RandomPolicy`].
    pub fn pure(config: MctsConfig) -> Self {
        MctsScheduler {
            config,
            policy: Box::new(RandomPolicy),
            evaluator: None,
            name: "mcts".to_owned(),
            obs: Obs::noop(),
            search_obs: None,
        }
    }

    /// MCTS guided by the greedy packing heuristic.
    pub fn heuristic(config: MctsConfig) -> Self {
        MctsScheduler {
            config,
            policy: Box::new(HeuristicPolicy),
            evaluator: None,
            name: "mcts-heuristic".to_owned(),
            obs: Obs::noop(),
            search_obs: None,
        }
    }

    /// MCTS guided by a trained DRL policy — the full Spear scheduler.
    pub fn drl(config: MctsConfig, policy: PolicyNetwork) -> Self {
        let policy = Box::new(DrlPolicy::with_cache_precision(
            policy,
            config.eval_cache,
            config.nn_precision,
        ));
        MctsScheduler {
            config,
            policy,
            evaluator: None,
            name: "spear".to_owned(),
            obs: Obs::noop(),
            search_obs: None,
        }
    }

    /// The full Spear scheduler with **truncated rollouts**: after
    /// `truncate_steps` simulated actions the rollout stops and the
    /// trained value network bootstraps the remaining makespan — an
    /// extension beyond the paper that attacks the rollout cost (see the
    /// `value_extension` experiment).
    pub fn drl_with_value(
        config: MctsConfig,
        policy: PolicyNetwork,
        value: spear_rl::ValueNetwork,
        truncate_steps: u64,
    ) -> Self {
        let policy = Box::new(DrlPolicy::with_cache_precision(
            policy,
            config.eval_cache,
            config.nn_precision,
        ));
        let evaluator = Box::new(ValueEvaluator::with_cache_precision(
            value,
            config.eval_cache,
            config.nn_precision,
        ));
        MctsScheduler {
            config,
            policy,
            evaluator: Some((evaluator, truncate_steps)),
            name: "spear-value".to_owned(),
            obs: Obs::noop(),
            search_obs: None,
        }
    }

    /// Any policy with any rollout evaluator (ablations).
    pub fn with_policy_and_evaluator(
        config: MctsConfig,
        policy: Box<dyn SearchPolicy + Send>,
        evaluator: Box<dyn StateEvaluator + Send>,
        truncate_steps: u64,
        name: impl Into<String>,
    ) -> Self {
        MctsScheduler {
            config,
            policy,
            evaluator: Some((evaluator, truncate_steps)),
            name: name.into(),
            obs: Obs::noop(),
            search_obs: None,
        }
    }

    /// Builds with any custom search policy under a custom name.
    pub fn with_policy(
        config: MctsConfig,
        policy: Box<dyn SearchPolicy + Send>,
        name: impl Into<String>,
    ) -> Self {
        MctsScheduler {
            config,
            policy,
            evaluator: None,
            name: name.into(),
            obs: Obs::noop(),
            search_obs: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MctsConfig {
        &self.config
    }

    /// Attaches a metric sink recording the `mcts.*` family (see the
    /// type-level docs). Pass [`Obs::noop`] to detach.
    #[must_use]
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place variant of [`MctsScheduler::with_obs`].
    pub fn set_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
        self.search_obs = None;
    }

    /// Builds the instrument handles on first use; constant-folded away
    /// without the `obs` feature.
    fn prepare_obs(&mut self) {
        if spear_obs::compiled() && self.search_obs.is_none() && self.obs.is_enabled() {
            self.search_obs = Some(SearchObs::new(&self.obs));
        }
    }

    /// Schedules `dag` and reports search statistics alongside.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if the DAG cannot run on the cluster.
    pub fn schedule_with_stats(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        // Scale exploration to the makespan magnitude (paper §IV).
        let estimate = spear_sched::greedy_makespan_estimate(dag, spec)? as f64;
        self.run_search(dag, spec, None, estimate)
    }

    /// Schedules a continuous-arrival job stream and reports search
    /// statistics alongside. The search tree spans the union DAG; every
    /// rollout inherits the arrival gating through state cloning, so the
    /// optimized makespan is the stream's completion time.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if any job cannot run on the cluster.
    pub fn schedule_multi_with_stats(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        let estimate = spear_sched::greedy_makespan_estimate_multi(queue, spec)? as f64;
        let root = SimState::new_multi(queue, spec)?;
        self.run_search(queue.union_dag(), spec, Some(root), estimate)
    }

    /// Shared decision loop behind the single- and multi-job entry
    /// points: `root` of `None` starts from the DAG's initial state.
    fn run_search(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
        root: Option<SimState>,
        estimate: f64,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        let start = std::time::Instant::now();
        self.prepare_obs();
        let features = GraphFeatures::compute(dag);
        let exploration = self.config.exploration_coeff * estimate.max(1.0);
        let budget = self.config.budget();
        let inferences_before = self.policy.inferences();
        let skips_before = self.policy.inference_skips();
        let cache_before = self.policy.cache_stats().merged(
            self.evaluator
                .as_ref()
                .map(|(e, _)| e.cache_stats())
                .unwrap_or_default(),
        );

        let mut search = match root {
            Some(state) => MctsSearch::from_root_state(
                dag,
                spec,
                &features,
                self.policy.as_mut(),
                exploration,
                self.config.seed,
                state,
            )?,
            None => MctsSearch::new(
                dag,
                spec,
                &features,
                self.policy.as_mut(),
                exploration,
                self.config.seed,
            )?,
        };
        search.set_max_value_mode(self.config.max_value_backprop);
        if let Some((evaluator, steps)) = self.evaluator.as_mut() {
            search.set_rollout_truncation(*steps, evaluator.as_mut());
        }
        let mut decisions = 0u64;
        while !search.is_terminal() {
            decisions += 1;
            let span = if spear_obs::compiled() {
                self.search_obs
                    .as_ref()
                    .map(|so| so.decision_ns.start_span())
            } else {
                None
            };
            for _ in 0..budget.at_depth(decisions) {
                search.run_iteration();
            }
            let action = search.best_action();
            if spear_obs::compiled() {
                if let Some(so) = &self.search_obs {
                    so.tree_depth.record(search.max_depth());
                }
            }
            search.advance(action)?;
            drop(span);
        }
        let cache = search
            .policy_cache_stats()
            .merged(search.evaluator_cache_stats());
        let stats = SearchStats {
            iterations: search.iterations(),
            rollout_steps: search.rollout_steps(),
            tree_nodes: search.tree_size(),
            decisions,
            policy_inferences: search.policy_inferences() - inferences_before,
            cache_hits: cache.hits - cache_before.hits,
            cache_misses: cache.misses - cache_before.misses,
            cache_evictions: cache.evictions - cache_before.evictions,
            inference_skips: search.policy_inference_skips() - skips_before,
            vloss_collisions: 0,
            batch_flushes: 0,
            elapsed_seconds: start.elapsed().as_secs_f64(),
        };
        if spear_obs::compiled() {
            if let Some(so) = &self.search_obs {
                so.record_stats(&stats);
            }
        }
        let schedule =
            SimEnv::from_state(dag, spec, search.root_state().clone()).into_schedule()?;
        Ok((schedule, stats))
    }
}

impl Scheduler for MctsScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        Ok(self.schedule_with_stats(dag, spec)?.0)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        Ok(self.schedule_multi_with_stats(queue, spec)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spear_dag::generator::LayeredDagSpec;
    use spear_rl::FeatureConfig;
    use spear_sched::RandomScheduler;

    fn small_config() -> MctsConfig {
        MctsConfig {
            initial_budget: 40,
            min_budget: 8,
            ..MctsConfig::default()
        }
    }

    fn small_dag(seed: u64) -> Dag {
        LayeredDagSpec {
            num_tasks: 15,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn pure_mcts_schedules_validly() {
        let dag = small_dag(1);
        let spec = ClusterSpec::unit(2);
        let (schedule, stats) = MctsScheduler::pure(small_config())
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert!(stats.iterations > 0);
        assert!(stats.tree_nodes > 1);
        assert!(stats.decisions >= dag.len() as u64);
        assert!(stats.elapsed_seconds >= 0.0);
    }

    #[test]
    fn mcts_beats_random_scheduling() {
        let spec = ClusterSpec::unit(2);
        let mut mcts_total = 0u64;
        let mut random_total = 0u64;
        for seed in 0..3 {
            let dag = small_dag(seed);
            let m = MctsScheduler::pure(MctsConfig {
                initial_budget: 120,
                min_budget: 20,
                seed,
                ..MctsConfig::default()
            })
            .schedule(&dag, &spec)
            .unwrap();
            let r = RandomScheduler::seeded(seed).schedule(&dag, &spec).unwrap();
            mcts_total += m.makespan();
            random_total += r.makespan();
        }
        assert!(
            mcts_total <= random_total,
            "mcts {mcts_total} vs random {random_total}"
        );
    }

    #[test]
    fn mcts_is_deterministic_per_seed() {
        let dag = small_dag(2);
        let spec = ClusterSpec::unit(2);
        let a = MctsScheduler::pure(small_config())
            .schedule(&dag, &spec)
            .unwrap();
        let b = MctsScheduler::pure(small_config())
            .schedule(&dag, &spec)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn heuristic_guidance_works() {
        let dag = small_dag(3);
        let spec = ClusterSpec::unit(2);
        let s = MctsScheduler::heuristic(small_config())
            .schedule(&dag, &spec)
            .unwrap();
        s.validate(&dag, &spec).unwrap();
    }

    #[test]
    fn drl_guidance_works_untrained() {
        let dag = small_dag(4);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(0);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let mut spear = MctsScheduler::drl(small_config(), policy);
        assert_eq!(spear.name(), "spear");
        let s = spear.schedule(&dag, &spec).unwrap();
        s.validate(&dag, &spec).unwrap();
    }

    /// The eval cache must be invisible in the schedule (bit-identical
    /// output) and visible in the stats (hits counted, inferences saved,
    /// skips attributed identically either way).
    #[test]
    fn drl_cache_is_transparent_and_counted() {
        let dag = small_dag(4);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(0);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[16], &mut rng);
        let (cached, cs) = MctsScheduler::drl(small_config(), policy.clone())
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        let no_cache = MctsConfig {
            eval_cache: false,
            ..small_config()
        };
        let (uncached, us) = MctsScheduler::drl(no_cache, policy)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        assert_eq!(cached, uncached, "cache changed the schedule");
        assert!(cs.cache_hits > 0, "search never revisits a state?");
        assert_eq!(us.cache_hits + us.cache_misses, 0);
        assert!(cs.policy_inferences < us.policy_inferences);
        assert_eq!(cs.inference_skips, us.inference_skips);
        assert_eq!(
            cs.policy_inferences,
            us.policy_inferences - cs.cache_hits,
            "every hit must replace exactly one inference"
        );
    }

    #[test]
    fn flat_budget_runs_more_iterations() {
        let dag = small_dag(5);
        let spec = ClusterSpec::unit(2);
        let (_, decayed) = MctsScheduler::pure(MctsConfig {
            initial_budget: 30,
            min_budget: 2,
            decay_budget: true,
            ..MctsConfig::default()
        })
        .schedule_with_stats(&dag, &spec)
        .unwrap();
        let (_, flat) = MctsScheduler::pure(MctsConfig {
            initial_budget: 30,
            min_budget: 2,
            decay_budget: false,
            ..MctsConfig::default()
        })
        .schedule_with_stats(&dag, &spec)
        .unwrap();
        assert!(flat.iterations > decayed.iterations);
    }

    #[test]
    fn multi_job_mcts_respects_arrivals_and_is_deterministic() {
        let jobs = vec![(0u64, small_dag(7)), (10, small_dag(8))];
        let queue = JobQueue::new(jobs).unwrap();
        let spec = ClusterSpec::unit(2);
        let (a, stats) = MctsScheduler::pure(small_config())
            .schedule_multi_with_stats(&queue, &spec)
            .unwrap();
        a.validate(queue.union_dag(), &spec).unwrap();
        for span in queue.spans() {
            for i in span.first_task..span.first_task + span.tasks {
                let start = a.placement_of(spear_dag::TaskId::new(i)).unwrap().start;
                assert!(start >= span.arrival, "task {i} started before arrival");
            }
        }
        assert!(stats.iterations > 0);
        assert_eq!(queue.jct_report(&a).completions().len(), 2);
        let b = MctsScheduler::pure(small_config())
            .schedule_multi(&queue, &spec)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn makespan_respects_bounds() {
        let dag = small_dag(6);
        let spec = ClusterSpec::unit(2);
        let s = MctsScheduler::pure(small_config())
            .schedule(&dag, &spec)
            .unwrap();
        assert!(s.makespan() >= dag.makespan_lower_bound(spec.capacity()));
        assert!(s.makespan() <= dag.total_work());
    }
}
