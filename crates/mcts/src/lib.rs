//! Monte Carlo Tree Search over DAG-scheduling states (paper §III-C).
//!
//! The search tree's nodes are simulation states; edges are the decoupled
//! actions `{schedule task, process}`. Spear's adaptations, all implemented
//! here:
//!
//! * **Search-space reduction** — the legal-action filter of
//!   [`spear_cluster::SimState::legal_actions`] (no processing an empty
//!   cluster; only tasks that fit *now*), and `process` jumping straight to
//!   the next completion.
//! * **UCB with max-value exploitation** (paper Eq. 5) — node values track
//!   both the best and the mean rollout return; selection exploits
//!   `max + c·√(ln N / n)` and breaks ties with the mean.
//! * **Scaled exploration constant** — `c` is the configured coefficient
//!   times a greedy (Tetris) makespan estimate, putting exploration on the
//!   same scale as the (negative-makespan) exploitation term (§IV).
//! * **Budget decay** (paper Eq. 4) — the per-decision iteration budget is
//!   `max(initial/d, min)` at decision depth `d`.
//! * **Pluggable expansion and rollout policies** — classic MCTS uses
//!   [`RandomPolicy`]; Spear plugs in the trained DRL agent via
//!   [`DrlPolicy`]. A greedy [`HeuristicPolicy`] (Tetris-scored) is
//!   included for ablations.
//!
//! # Example: pure MCTS on a small DAG
//!
//! ```
//! use rand::SeedableRng;
//! use spear_cluster::ClusterSpec;
//! use spear_dag::generator::LayeredDagSpec;
//! use spear_mcts::{MctsConfig, MctsScheduler};
//! use spear_sched::Scheduler;
//!
//! let dag = LayeredDagSpec { num_tasks: 12, ..LayeredDagSpec::paper_training() }
//!     .generate(&mut rand::rngs::StdRng::seed_from_u64(3));
//! let spec = ClusterSpec::unit(2);
//! let mut mcts = MctsScheduler::pure(MctsConfig { initial_budget: 50, min_budget: 10, ..MctsConfig::default() });
//! let schedule = mcts.schedule(&dag, &spec).unwrap();
//! schedule.validate(&dag, &spec).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod evaluator;
mod parallel;
mod policies;
mod scheduler;
mod search;
mod tree;
mod tree_parallel;

pub use budget::BudgetSchedule;
pub use evaluator::{BoundEvaluator, StateEvaluator, ValueEvaluator};
pub use parallel::RootParallelMcts;
pub use policies::{
    DrlPolicy, HeuristicPolicy, PolicyContext, RandomPolicy, SearchPolicy, UniformPolicy,
};
pub use scheduler::{MctsConfig, MctsScheduler, SearchStats};
pub use search::MctsSearch;
// Re-exported because `SearchPolicy`/`StateEvaluator` signatures use it.
pub use spear_rl::EvalCacheStats;
pub use tree::{Node, NodeId, Tree};
pub use tree_parallel::TreeParallelMcts;
