//! Property tests for the MCTS engine: schedule validity under every
//! policy, determinism, bound respect, and budget accounting.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use spear_cluster::ClusterSpec;
use spear_dag::generator::LayeredDagSpec;
use spear_dag::Dag;
use spear_mcts::{BudgetSchedule, MctsConfig, MctsScheduler, UniformPolicy};
use spear_rl::{FeatureConfig, PolicyNetwork};
use spear_sched::Scheduler;

fn random_dag(num_tasks: usize, seed: u64) -> Dag {
    LayeredDagSpec {
        num_tasks,
        min_width: 1,
        max_width: 4,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

fn config(budget: u64, seed: u64) -> MctsConfig {
    MctsConfig {
        initial_budget: budget,
        min_budget: (budget / 5).max(2),
        seed,
        ..MctsConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every guidance policy yields a valid, bounded schedule.
    #[test]
    fn all_policies_yield_valid_schedules(
        num_tasks in 1usize..16,
        dag_seed in any::<u64>(),
        search_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut rng = StdRng::seed_from_u64(search_seed);
        let net = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut rng);
        let mut schedulers: Vec<MctsScheduler> = vec![
            MctsScheduler::pure(config(15, search_seed)),
            MctsScheduler::heuristic(config(15, search_seed)),
            MctsScheduler::drl(config(10, search_seed), net),
            MctsScheduler::with_policy(
                config(15, search_seed),
                Box::new(UniformPolicy),
                "uniform",
            ),
        ];
        for s in &mut schedulers {
            let schedule = s.schedule(&dag, &spec).unwrap();
            schedule.validate(&dag, &spec).unwrap();
            prop_assert!(schedule.makespan() >= dag.makespan_lower_bound(spec.capacity()));
            prop_assert!(schedule.makespan() <= dag.total_work());
        }
    }

    /// The same seed reproduces the same schedule and statistics.
    #[test]
    fn search_is_deterministic(
        num_tasks in 1usize..14,
        dag_seed in any::<u64>(),
        search_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let (s1, st1) = MctsScheduler::pure(config(20, search_seed))
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        let (s2, st2) = MctsScheduler::pure(config(20, search_seed))
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(st1.iterations, st2.iterations);
        prop_assert_eq!(st1.tree_nodes, st2.tree_nodes);
    }

    /// Iteration accounting: the total equals the budget series over the
    /// decisions actually taken.
    #[test]
    fn iterations_match_budget_series(
        num_tasks in 1usize..12,
        dag_seed in any::<u64>(),
        budget in 4u64..40,
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let cfg = config(budget, 1);
        let schedule = BudgetSchedule::new(cfg.initial_budget, cfg.min_budget);
        let (_, stats) = MctsScheduler::pure(cfg)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        prop_assert_eq!(stats.iterations, schedule.total_for(stats.decisions));
    }

    /// Budget decay never exceeds the flat schedule and respects its floor.
    #[test]
    fn budget_schedule_bounds(initial in 1u64..10_000, min in 0u64..500, depth in 1u64..300) {
        let b = BudgetSchedule::new(initial, min);
        let at = b.at_depth(depth);
        prop_assert!(at >= min.max(1));
        prop_assert!(at <= initial.max(min.max(1)));
        // Monotone non-increasing in depth.
        prop_assert!(b.at_depth(depth + 1) <= at);
    }

    /// The fingerprint-keyed eval cache is bit-transparent: cached and
    /// `--no-eval-cache` searches produce identical schedules, makespans
    /// and iteration counts across seeded DAG × cluster workloads — while
    /// the cached run demonstrably serves hits and saves inferences.
    #[test]
    fn eval_cache_is_bit_transparent(
        num_tasks in 2usize..16,
        dag_seed in any::<u64>(),
        search_seed in any::<u64>(),
        capacity_step in 0u32..3,
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let capacity = 1.0 + 0.25 * f64::from(capacity_step);
        let spec =
            ClusterSpec::new(spear_dag::ResourceVec::splat(2, capacity)).unwrap();
        let mut rng = StdRng::seed_from_u64(search_seed);
        let net = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut rng);
        let (cached, cs) = MctsScheduler::drl(config(12, search_seed), net.clone())
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        let uncached_cfg = MctsConfig { eval_cache: false, ..config(12, search_seed) };
        let (uncached, us) = MctsScheduler::drl(uncached_cfg, net)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        prop_assert_eq!(&cached, &uncached, "cache changed the schedule");
        prop_assert_eq!(cached.makespan(), uncached.makespan());
        prop_assert_eq!(cs.iterations, us.iterations);
        prop_assert_eq!(cs.rollout_steps, us.rollout_steps);
        prop_assert_eq!(us.cache_hits, 0);
        prop_assert_eq!(
            cs.policy_inferences + cs.cache_hits,
            us.policy_inferences,
            "every hit must replace exactly one inference"
        );
    }

    /// The fast-precision (`f32`) variant of the cache-transparency
    /// property: the half-width eval cache must also be bit-transparent
    /// *within* fast mode — a fast cached search and a fast uncached
    /// search produce identical schedules — because the `f32` rounding
    /// happens on the inference path, before the cache. Fast schedules
    /// must also be valid and bounded in their own right.
    #[test]
    fn fast_precision_eval_cache_is_bit_transparent(
        num_tasks in 2usize..16,
        dag_seed in any::<u64>(),
        search_seed in any::<u64>(),
        capacity_step in 0u32..3,
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let capacity = 1.0 + 0.25 * f64::from(capacity_step);
        let spec =
            ClusterSpec::new(spear_dag::ResourceVec::splat(2, capacity)).unwrap();
        let mut rng = StdRng::seed_from_u64(search_seed);
        let net = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut rng);
        let fast_cfg = MctsConfig {
            nn_precision: spear_nn::Precision::Fast,
            ..config(12, search_seed)
        };
        let (cached, cs) = MctsScheduler::drl(fast_cfg.clone(), net.clone())
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        let uncached_cfg = MctsConfig { eval_cache: false, ..fast_cfg };
        let (uncached, us) = MctsScheduler::drl(uncached_cfg, net)
            .schedule_with_stats(&dag, &spec)
            .unwrap();
        cached.validate(&dag, &spec).unwrap();
        prop_assert_eq!(&cached, &uncached, "f32 cache changed the schedule");
        prop_assert!(cached.makespan() >= dag.makespan_lower_bound(spec.capacity()));
        prop_assert!(cached.makespan() <= dag.total_work());
        prop_assert_eq!(cs.iterations, us.iterations);
        prop_assert_eq!(cs.rollout_steps, us.rollout_steps);
        prop_assert_eq!(us.cache_hits, 0);
        prop_assert_eq!(
            cs.policy_inferences + cs.cache_hits,
            us.policy_inferences,
            "every hit must replace exactly one inference"
        );
    }

    /// Cross-validation against the exact solver: on tiny jobs, MCTS can
    /// never beat a branch-and-bound-*proven* optimum (a violation would
    /// mean the bound or the simulator is broken), and with a healthy
    /// budget it usually reaches it.
    #[test]
    fn mcts_never_beats_proven_optimum(
        num_tasks in 2usize..8,
        dag_seed in any::<u64>(),
        search_seed in any::<u64>(),
    ) {
        use spear_sched::bnb;
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        if let Some(opt) = bnb::optimal_makespan(&dag, &spec, 300_000).unwrap() {
            let mcts = MctsScheduler::pure(config(150, search_seed))
                .schedule(&dag, &spec)
                .unwrap()
                .makespan();
            prop_assert!(mcts >= opt, "mcts {} beat the proven optimum {}", mcts, opt);
        }
    }
}

/// Value-truncated Spear produces valid schedules and meaningfully fewer
/// rollout steps than untruncated Spear at the same budget.
#[test]
fn value_truncated_spear_is_valid_and_cheaper() {
    use spear_rl::{train_value_network, PolicyNetwork, ValueNetwork, ValueTrainConfig};
    let dag = random_dag(14, 9);
    let spec = ClusterSpec::unit(2);
    let mut rng = StdRng::seed_from_u64(0);
    let mut policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[12], &mut rng);
    let mut value = ValueNetwork::new(FeatureConfig::small(2), &[16], &mut rng);
    train_value_network(
        &mut value,
        &mut policy,
        std::slice::from_ref(&dag),
        &spec,
        &ValueTrainConfig {
            episodes_per_dag: 3,
            epochs: 5,
            batch_size: 64,
            learning_rate: 1e-2,
        },
        &mut rng,
    )
    .unwrap();

    let cfg = config(30, 1);
    let (full_sched, full_stats) = MctsScheduler::drl(cfg.clone(), policy.clone())
        .schedule_with_stats(&dag, &spec)
        .unwrap();
    let (trunc_sched, trunc_stats) = MctsScheduler::drl_with_value(cfg, policy, value, 4)
        .schedule_with_stats(&dag, &spec)
        .unwrap();
    full_sched.validate(&dag, &spec).unwrap();
    trunc_sched.validate(&dag, &spec).unwrap();
    assert!(
        trunc_stats.rollout_steps < full_stats.rollout_steps,
        "truncation did not reduce rollout steps: {} vs {}",
        trunc_stats.rollout_steps,
        full_stats.rollout_steps
    );
}

/// The analytic bound evaluator also works as a truncation target.
#[test]
fn bound_evaluator_truncation_is_valid() {
    use spear_mcts::{BoundEvaluator, RandomPolicy};
    let dag = random_dag(12, 4);
    let spec = ClusterSpec::unit(2);
    let mut s = MctsScheduler::with_policy_and_evaluator(
        config(25, 2),
        Box::new(RandomPolicy),
        Box::new(BoundEvaluator),
        3,
        "mcts-bound",
    );
    let schedule = s.schedule(&dag, &spec).unwrap();
    schedule.validate(&dag, &spec).unwrap();
    assert_eq!(s.name(), "mcts-bound");
}
