//! Criterion version of Table I: pure-MCTS scheduling cost across graph
//! sizes and budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spear::{MctsConfig, MctsScheduler, Scheduler};
use spear_bench::workload;

fn bench_mcts_runtime(c: &mut Criterion) {
    let spec = workload::cluster();
    let mut group = c.benchmark_group("table1_mcts_runtime");
    group.sample_size(10);
    for size in [50usize, 100] {
        let dag = workload::simulation_dags(1, size, 11)
            .pop()
            .expect("one dag");
        for budget in [100u64, 500] {
            group.bench_function(
                BenchmarkId::new(format!("tasks_{size}"), format!("budget_{budget}")),
                |b| {
                    b.iter(|| {
                        MctsScheduler::pure(MctsConfig {
                            initial_budget: budget,
                            min_budget: 5,
                            ..MctsConfig::default()
                        })
                        .schedule(&dag, &spec)
                        .unwrap()
                        .makespan()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mcts_runtime);
criterion_main!(benches);
