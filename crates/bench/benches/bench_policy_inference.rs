//! Criterion micro-benchmarks of the DRL hot path: featurization and the
//! policy-network forward pass (the per-step cost of Spear's rollouts).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::analysis::GraphFeatures;
use spear::rl::Featurizer;
use spear::{PolicyNetwork, SimState};
use spear_bench::{policy, workload};

fn bench_policy_inference(c: &mut Criterion) {
    let spec = workload::cluster();
    let dag = workload::simulation_dags(1, 100, 3).pop().expect("one dag");
    let features = GraphFeatures::compute(&dag);
    let state = SimState::new(&dag, &spec).expect("fits");
    let fz = Featurizer::new(policy::feature_config());
    let mut net = PolicyNetwork::new(policy::feature_config(), &mut StdRng::seed_from_u64(0));

    c.bench_function("featurize_100_tasks", |b| {
        b.iter(|| fz.featurize(&dag, &spec, &state, &features))
    });
    let view = fz.featurize(&dag, &spec, &state, &features);
    c.bench_function("mlp_forward_paper_arch", |b| {
        b.iter(|| net.net_mut().forward_one(&view.features))
    });
    c.bench_function("graph_features_100_tasks", |b| {
        b.iter(|| GraphFeatures::compute(&dag))
    });
    c.bench_function("legal_actions_100_tasks", |b| {
        b.iter(|| state.legal_actions(&dag))
    });
}

criterion_group!(benches, bench_policy_inference);
criterion_main!(benches);
