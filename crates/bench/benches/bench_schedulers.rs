//! Criterion micro-benchmarks: one full scheduling pass per baseline on
//! the paper's 100-task workload (the per-job cost behind Fig. 6(b)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spear::{CpScheduler, Graphene, Scheduler, SjfScheduler, TetrisScheduler};
use spear_bench::workload;

fn bench_schedulers(c: &mut Criterion) {
    let spec = workload::cluster();
    let dag = workload::simulation_dags(1, 100, 5).pop().expect("one dag");
    let mut group = c.benchmark_group("schedulers_100_tasks");
    group.sample_size(20);

    group.bench_function(BenchmarkId::from_parameter("tetris"), |b| {
        b.iter(|| {
            TetrisScheduler::new()
                .schedule(&dag, &spec)
                .unwrap()
                .makespan()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("sjf"), |b| {
        b.iter(|| {
            SjfScheduler::new()
                .schedule(&dag, &spec)
                .unwrap()
                .makespan()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("cp"), |b| {
        b.iter(|| CpScheduler::new().schedule(&dag, &spec).unwrap().makespan())
    });
    group.bench_function(BenchmarkId::from_parameter("graphene"), |b| {
        b.iter(|| Graphene::new().schedule(&dag, &spec).unwrap().makespan())
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
