//! Criterion micro-benchmarks of the allocation-free hot-path variants:
//! buffer-reusing featurization and inference, batched forward passes, and
//! the scratch-based simulation step loop that MCTS rollouts run on.
//!
//! `bench_policy_inference` measures the allocating counterparts; comparing
//! the two suites shows what the `_into` paths buy per call.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::analysis::GraphFeatures;
use spear::dag::TaskId;
use spear::nn::Matrix;
use spear::rl::{Featurizer, StateView};
use spear::{Action, PolicyNetwork, SimState};
use spear_bench::{policy, workload};

fn bench_hot_loop(c: &mut Criterion) {
    let spec = workload::cluster();
    let dag = workload::simulation_dags(1, 100, 3).pop().expect("one dag");
    let features = GraphFeatures::compute(&dag);
    let state = SimState::new(&dag, &spec).expect("fits");
    let fz = Featurizer::new(policy::feature_config());
    let mut net = PolicyNetwork::new(policy::feature_config(), &mut StdRng::seed_from_u64(0));

    // Featurization into reused buffers (vs `featurize_100_tasks`).
    let mut ready_scratch: Vec<TaskId> = Vec::new();
    let mut view = StateView::default();
    c.bench_function("featurize_into_100_tasks", |b| {
        b.iter(|| {
            fz.featurize_into(
                &dag,
                &spec,
                &state,
                &features,
                &mut ready_scratch,
                &mut view,
            )
        })
    });

    // Single-row inference through scratch activations (vs
    // `mlp_forward_paper_arch`).
    let fresh = fz.featurize(&dag, &spec, &state, &features);
    let mut forward_scratch = spear::nn::ForwardScratch::default();
    c.bench_function("mlp_forward_one_into_paper_arch", |b| {
        b.iter(|| {
            net.net()
                .forward_one_into(&fresh.features, &mut forward_scratch)
                .len()
        })
    });

    // Batched matrix-matrix inference: one pass over 64 identical rows.
    // Per-row cost should land well under 64 single-row passes because the
    // layer weights are streamed once per batch instead of once per row.
    let rows: Vec<&[f64]> = (0..64).map(|_| fresh.features.as_slice()).collect();
    let batch = Matrix::from_rows(&rows);
    c.bench_function("mlp_forward_batch_64_paper_arch", |b| {
        b.iter(|| net.net().forward_batch(&batch))
    });

    // Full inference path into caller-owned buffers: featurize + forward +
    // masked softmax, zero steady-state allocations.
    let mut probs: Vec<f64> = Vec::new();
    c.bench_function("action_distribution_into_paper_arch", |b| {
        b.iter(|| {
            net.action_distribution_into(&dag, &spec, &state, &features, &mut probs, &mut view)
        })
    });

    // Action enumeration into a reused buffer (vs `legal_actions_100_tasks`).
    let mut legal: Vec<Action> = Vec::new();
    c.bench_function("legal_actions_into_100_tasks", |b| {
        b.iter(|| {
            state.legal_actions_into(&dag, &mut legal);
            legal.len()
        })
    });

    // A full scratch-based episode: `clone_from` the root, then step with
    // `legal_actions_into` + `apply_legal` until terminal — exactly the
    // shape of one MCTS rollout.
    let mut scratch = state.clone();
    c.bench_function("rollout_episode_100_tasks_scratch", |b| {
        b.iter(|| {
            scratch.clone_from(&state);
            while !scratch.is_terminal(&dag) {
                scratch.legal_actions_into(&dag, &mut legal);
                let action = legal[0];
                scratch.apply_legal(&dag, action);
            }
            scratch.makespan().expect("terminal state")
        })
    });
}

criterion_group!(benches, bench_hot_loop);
criterion_main!(benches);
