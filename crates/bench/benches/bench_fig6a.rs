//! Criterion version of the Fig. 6(a) contenders on one 100-task DAG:
//! Spear (DRL-guided, reduced budget) vs Graphene.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::{Graphene, MctsConfig, MctsScheduler, PolicyNetwork, Scheduler};
use spear_bench::{policy, workload};

fn bench_fig6a(c: &mut Criterion) {
    let spec = workload::cluster();
    let dag = workload::simulation_dags(1, 100, 42)
        .pop()
        .expect("one dag");
    let mut group = c.benchmark_group("fig6a_spear_vs_graphene");
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("graphene"), |b| {
        b.iter(|| Graphene::new().schedule(&dag, &spec).unwrap().makespan())
    });
    group.bench_function(BenchmarkId::from_parameter("spear_budget_50"), |b| {
        b.iter(|| {
            // Fresh policy per scheduler construction; the network is the
            // dominant cost driver, so use a small untrained one here
            // (quality is measured by the fig6a binary, not this bench).
            let net = PolicyNetwork::with_hidden(
                policy::feature_config(),
                &[32],
                &mut StdRng::seed_from_u64(0),
            );
            MctsScheduler::drl(
                MctsConfig {
                    initial_budget: 50,
                    min_budget: 10,
                    ..MctsConfig::default()
                },
                net,
            )
            .schedule(&dag, &spec)
            .unwrap()
            .makespan()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6a);
criterion_main!(benches);
