//! Runs the design-choice ablations of DESIGN.md §5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::ablations;
use spear_bench::{policy, report, workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = ablations::Config::for_scale(scale);
    let trained = policy::obtain(scale, &workload::cluster());
    let mut outcome = ablations::run(&config, trained.clone());
    outcome.training = ablations::run_training_levels(&config, trained, 12345);
    for table in ablations::tables(&outcome) {
        println!("{}", table.render());
    }
    report::write_json(&format!("ablations_{}", scale.tag()), &outcome);
}
