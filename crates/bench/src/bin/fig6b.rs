//! Regenerates Fig. 6(b): scheduler runtime comparison (same runs as
//! Fig. 6(a), reported on the time axis).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig6;
use spear_bench::{policy, report, workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fig6::Config::for_scale(scale);
    let trained = policy::obtain(scale, &workload::cluster());
    let outcome = fig6::run(&config, trained);
    let table = fig6::runtime_table(&outcome);
    println!("{}", table.render());
    report::write_json(&format!("fig6b_{}", scale.tag()), &outcome);
    report::write_text(&format!("fig6b_{}.csv", scale.tag()), &table.to_csv());
}
