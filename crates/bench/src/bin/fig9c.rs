//! Regenerates Fig. 9(c): the distribution of makespan reduction of Spear
//! over Graphene on the trace jobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig9;
use spear_bench::{policy, report, workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fig9::Config::for_scale(scale);
    let trained = policy::obtain(scale, &workload::cluster());
    let outcome = fig9::run_reduction(&config, trained);
    let table = fig9::reduction_table(&outcome);
    println!("{}", table.render());
    report::write_json(&format!("fig9c_{}", scale.tag()), &outcome);
    report::write_text(&format!("fig9c_{}.csv", scale.tag()), &table.to_csv());
}
