//! Regenerates Fig. 8(a): Spear at a tenth of the budget vs pure MCTS vs
//! the greedy baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig8;
use spear_bench::{policy, report, workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fig8::Config::for_scale(scale);
    let trained = policy::obtain(scale, &workload::cluster());
    let outcome = fig8::run(&config, trained);
    let table = fig8::table(&outcome, &config);
    println!("{}", table.render());
    report::write_json(&format!("fig8a_{}", scale.tag()), &outcome);
    report::write_text(&format!("fig8a_{}.csv", scale.tag()), &table.to_csv());
}
