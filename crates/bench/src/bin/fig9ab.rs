//! Regenerates Fig. 9(a)/(b): the trace's task-count and mean-runtime
//! distributions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig9;
use spear_bench::{report, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fig9::Config::for_scale(scale);
    let trace = fig9::trace(config.seed);
    let a = fig9::task_count_table(&trace);
    let b = fig9::runtime_table(&trace);
    println!("{}", a.render());
    println!("{}", b.render());
    report::write_text(&format!("fig9a_{}.csv", scale.tag()), &a.to_csv());
    report::write_text(&format!("fig9b_{}.csv", scale.tag()), &b.to_csv());
    report::write_json(&format!("fig9_trace_{}", scale.tag()), &trace);
}
