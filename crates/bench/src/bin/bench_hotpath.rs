//! The reproducible hot-path benchmark: measures MCTS search throughput
//! (iterations/sec, rollout steps/sec, policy inferences/sec) on a fixed
//! fig6a-style workload and writes `BENCH_mcts.json` at the repository
//! root.
//!
//! Usage:
//!
//! * `bench_hotpath` — full measurement; if a committed baseline exists at
//!   `crates/bench/baseline/bench_hotpath_baseline.json`, speedup factors
//!   against it are included in the output.
//! * `bench_hotpath --save-baseline` — additionally snapshots this run as
//!   the committed baseline (run once *before* an optimization lands).
//! * `bench_hotpath --quick` — a seconds-scale smoke configuration for CI;
//!   writes `BENCH_mcts_quick.json` instead and never compares against the
//!   full baseline. Quick mode additionally asserts the pinned golden
//!   makespans — on the single-box cluster *and* on a degenerate
//!   1-machine heterogeneous cluster, which must agree exactly — and
//!   exits nonzero on drift, so the CI job catches bit-exactness
//!   regressions, not just panics. The JSON output and any
//!   `--metrics-out` file are written *before* the drift exit, so a failed
//!   run still leaves its evidence for CI to upload.
//! * `bench_hotpath --no-eval-cache` — disables the fingerprint-keyed
//!   inference cache (differential runs; makespans must not move).
//! * `bench_hotpath --search-threads N [--leaf-batch B]` — measures the
//!   tree-parallel DRL search at `[1, N]` threads instead of the full
//!   mode's default `[1, 2, 4, 8]` sweep; in quick mode this is the only
//!   way to get a `tree_parallel` section (the CI smoke passes 4).
//! * `bench_hotpath --metrics-out metrics.jsonl` — additionally writes the
//!   metrics recorded during the measured runs as JSON lines, and folds the
//!   same snapshot into the `metrics` field of the JSON output. Requires a
//!   build with `--features obs` for real data (recording is compiled out
//!   otherwise, keeping the measured hot path bit-identical to the plain
//!   build).
//!
//! Makespans per DAG are part of the output: across a pure performance
//! refactor they must not move (the same check the golden determinism
//! test enforces).
//!
//! Every run also works a seeded Poisson multi-job arrival stream through
//! the DRL-guided search in one continuous episode and folds the per-job
//! completion times (mean/p50/p99 JCT, unfairness — `null` when no job
//! completed, never a fake zero) into the output as the `multi_job`
//! section, then re-executes the same planned stream under a seeded 10%
//! fault plan (failures + 1.5x stragglers) and folds the realized
//! makespan, fault counters and recovery slowdown into the `faults`
//! section. The fault replay never perturbs the planned sections: the
//! quick goldens stay bit-identical.
//!
//! The `nn_precision` section (written in quick mode too) compares exact
//! (f64) against fast (f32) policy inference: raw kernel ns/inference,
//! DRL-guided search throughput at both precisions, and the makespan
//! quality ratio. Fast schedules are not pinned — they are validated by
//! the three diffcheck judges, and a judge failure gates the exit code
//! exactly like a golden mismatch. The pinned quick goldens are an
//! **exact-precision** contract: the golden runs always use
//! `Precision::Exact`, so fast-path changes cannot drift them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use spear::dag::generator::LayeredDagSpec;
use spear::{
    execute_multi_under_faults, ArrivalProcess, ArrivalStreamSpec, ClusterSpec, Dag, FaultProfile,
    FeatureConfig, JobQueue, JobSource, MctsConfig, MctsScheduler, MetricsRegistry, Obs,
    PolicyNetwork, Schedule, SearchStats, TreeParallelMcts,
};
use spear_bench::workload;

/// Workload generator seed (same family as fig6a's simulation DAGs).
const WORKLOAD_SEED: u64 = 42;

/// Search seed for both scheduler families.
const SEARCH_SEED: u64 = 7;

/// Throughput and determinism record of one scheduler family.
///
/// The cache fields carry `#[serde(default)]` so baselines written before
/// the eval cache existed still parse (they read as all-zero).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SectionMetrics {
    iterations: u64,
    rollout_steps: u64,
    policy_inferences: u64,
    #[serde(default)]
    cache_hits: u64,
    #[serde(default)]
    cache_misses: u64,
    #[serde(default)]
    cache_evictions: u64,
    #[serde(default)]
    inference_skips: u64,
    elapsed_seconds: f64,
    iterations_per_sec: f64,
    rollout_steps_per_sec: f64,
    policy_inferences_per_sec: f64,
    /// hits / (hits + misses) — the fraction of cache probes served.
    #[serde(default)]
    cache_hit_rate: f64,
    /// skips / (hits + misses + skips) — the fraction of decision points
    /// that never consulted the network's distribution at all.
    #[serde(default)]
    inference_skip_ratio: f64,
    makespans: Vec<u64>,
}

impl SectionMetrics {
    fn from_runs(runs: &[(u64, SearchStats)], elapsed_seconds: f64) -> Self {
        let sum = |f: fn(&SearchStats) -> u64| runs.iter().map(|(_, s)| f(s)).sum::<u64>();
        let iterations = sum(|s| s.iterations);
        let rollout_steps = sum(|s| s.rollout_steps);
        let policy_inferences = sum(|s| s.policy_inferences);
        let cache_hits = sum(|s| s.cache_hits);
        let cache_misses = sum(|s| s.cache_misses);
        let cache_evictions = sum(|s| s.cache_evictions);
        let inference_skips = sum(|s| s.inference_skips);
        let per_sec = |count: u64| count as f64 / elapsed_seconds.max(1e-9);
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        SectionMetrics {
            iterations,
            rollout_steps,
            policy_inferences,
            cache_hits,
            cache_misses,
            cache_evictions,
            inference_skips,
            elapsed_seconds,
            iterations_per_sec: per_sec(iterations),
            rollout_steps_per_sec: per_sec(rollout_steps),
            policy_inferences_per_sec: per_sec(policy_inferences),
            cache_hit_rate: ratio(cache_hits, cache_hits + cache_misses),
            inference_skip_ratio: ratio(
                inference_skips,
                cache_hits + cache_misses + inference_skips,
            ),
            makespans: runs.iter().map(|&(m, _)| m).collect(),
        }
    }
}

/// One full measurement: workload parameters + both scheduler families.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HotpathReport {
    mode: String,
    dags: usize,
    tasks: usize,
    workload_seed: u64,
    pure: SectionMetrics,
    drl: SectionMetrics,
}

/// Current-over-baseline throughput ratios.
#[derive(Debug, Serialize)]
struct Speedup {
    pure_iterations_per_sec: f64,
    pure_rollout_steps_per_sec: f64,
    drl_iterations_per_sec: f64,
    drl_policy_inferences_per_sec: f64,
}

/// One point on the tree-parallel thread-scaling curve (DRL-guided
/// search over the shared tree, batched leaf inference).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeParallelPoint {
    threads: usize,
    leaf_batch: usize,
    iterations: u64,
    elapsed_seconds: f64,
    iterations_per_sec: f64,
    /// Throughput relative to the 1-thread point of the same curve
    /// (1.0 for the 1-thread point itself).
    speedup_vs_sequential: f64,
    vloss_collisions: u64,
    batch_flushes: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Valid but NOT pinned: schedules at >1 thread depend on worker
    /// interleaving.
    makespans: Vec<u64>,
}

/// The `tree_parallel` section of `BENCH_mcts.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeParallelReport {
    /// Cores visible to this run. With `host_cores: 1` the curve can
    /// only measure coordination overhead — wall-clock speedup requires
    /// running on a multi-core host.
    host_cores: usize,
    note: String,
    points: Vec<TreeParallelPoint>,
}

/// The online multi-job section: a seeded Poisson arrival stream worked by
/// the sequential DRL-guided search (the Spear configuration) in one
/// continuous episode, reported as per-job completion times.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MultiJobReport {
    jobs: usize,
    tasks_per_job: usize,
    mean_gap: f64,
    stream_seed: u64,
    elapsed_seconds: f64,
    /// Jobs the episode left unfinished (0 for a complete episode).
    unfinished: usize,
    /// `None` (JSON `null`) when no job completed — absent, not zero.
    mean_jct: Option<f64>,
    p50_jct: Option<u64>,
    p99_jct: Option<u64>,
    /// Spread (max − min) of per-job slowdowns.
    unfairness: f64,
    /// Completion time of the whole stream (union makespan).
    stream_makespan: u64,
    /// Per-job JCTs in queue (arrival) order — deterministic in the seeds,
    /// like the single-job makespans above.
    jcts: Vec<u64>,
}

/// The `faults` section: the planned multi-job stream re-executed under a
/// seeded fault plan. Faults bite at execution time only, so this section
/// cannot move the planned makespans or the quick goldens.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FaultsReport {
    fail_rate: f64,
    straggler_rate: f64,
    straggler_factor: f64,
    max_retries: u32,
    planned_makespan: u64,
    realized_makespan: u64,
    failures: u64,
    straggles: u64,
    /// realized / planned makespan — the fault-recovery overhead.
    slowdown: f64,
    unfinished: usize,
    mean_jct: Option<f64>,
    p99_jct: Option<u64>,
    elapsed_seconds: f64,
}

/// One side (exact or fast) of the precision comparison: raw-kernel
/// latency plus a full DRL-guided search pass over the workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NnPrecisionPoint {
    /// Single-example policy-net forward latency (kernel only, no search).
    ns_per_inference: f64,
    /// DRL-guided search throughput over the workload DAGs.
    iterations_per_sec: f64,
    policy_inferences: u64,
    elapsed_seconds: f64,
    makespans: Vec<u64>,
}

/// The `nn_precision` section: exact (f64) vs fast (f32) inference on the
/// same workload. The exact side is the pinned golden path; the fast side
/// is validated per-DAG by the diffcheck judges instead of by bit
/// equality, with the makespan-quality ratio reported.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NnPrecisionReport {
    /// Always `false`: the comparison disables the eval cache on both
    /// sides so it measures the inference path itself rather than the
    /// cache's ability to hide it. The cache is makespan-transparent by
    /// pinned invariant, so the schedules are identical either way.
    eval_cache: bool,
    exact: NnPrecisionPoint,
    fast: NnPrecisionPoint,
    /// Exact ns/inference over fast ns/inference (kernel-level gain).
    inference_speedup: f64,
    /// Fast DRL iterations/s over exact DRL iterations/s (end-to-end gain).
    drl_speedup: f64,
    /// max over DAGs of fast_makespan / exact_makespan — the quality cost
    /// of dropping to f32 (1.0 = identical schedules).
    max_makespan_ratio: f64,
    /// Every fast schedule passed all three diffcheck judges.
    judges_ok: bool,
}

/// What `BENCH_mcts.json` holds. A `metrics` key is added to the emitted
/// JSON only when `--metrics-out` was given (so runs without it keep the
/// pre-observability output format byte-for-byte).
#[derive(Debug, Serialize)]
struct BenchOutput {
    report: HotpathReport,
    baseline: Option<HotpathReport>,
    speedup: Option<Speedup>,
    tree_parallel: Option<TreeParallelReport>,
    multi_job: MultiJobReport,
    faults: FaultsReport,
    nn_precision: NnPrecisionReport,
}

struct ModeParams {
    tag: &'static str,
    dags: usize,
    tasks: usize,
    pure_budget: (u64, u64),
    drl_budget: (u64, u64),
    multi_jobs: usize,
    multi_tasks: usize,
    multi_mean_gap: f64,
}

const FULL: ModeParams = ModeParams {
    tag: "full",
    dags: 6,
    tasks: 50,
    pure_budget: (800, 160),
    drl_budget: (40, 8),
    multi_jobs: 10,
    multi_tasks: 20,
    multi_mean_gap: 10.0,
};

const QUICK: ModeParams = ModeParams {
    tag: "quick",
    dags: 2,
    tasks: 30,
    pure_budget: (60, 12),
    drl_budget: (15, 3),
    multi_jobs: 4,
    multi_tasks: 8,
    multi_mean_gap: 5.0,
};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline/bench_hotpath_baseline.json")
}

fn measure(
    dags: &[Dag],
    spec: &ClusterSpec,
    mut scheduler: MctsScheduler,
) -> (Vec<(u64, SearchStats)>, f64) {
    let start = std::time::Instant::now();
    let runs: Vec<(u64, SearchStats)> = dags
        .iter()
        .map(|dag| {
            let (schedule, stats) = scheduler
                .schedule_with_stats(dag, spec)
                .expect("workload fits cluster");
            schedule
                .validate(dag, spec)
                .expect("schedule must be valid");
            (schedule.makespan(), stats)
        })
        .collect();
    (runs, start.elapsed().as_secs_f64())
}

fn pure_scheduler(params: &ModeParams) -> MctsScheduler {
    MctsScheduler::pure(MctsConfig {
        initial_budget: params.pure_budget.0,
        min_budget: params.pure_budget.1,
        seed: SEARCH_SEED,
        ..MctsConfig::default()
    })
}

fn drl_scheduler(params: &ModeParams, eval_cache: bool) -> MctsScheduler {
    drl_scheduler_precision(params, eval_cache, spear::nn::Precision::Exact)
}

fn drl_scheduler_precision(
    params: &ModeParams,
    eval_cache: bool,
    nn_precision: spear::nn::Precision,
) -> MctsScheduler {
    // An untrained paper-architecture policy: inference cost is identical
    // to a trained one, and no multi-minute training enters the harness.
    let mut rng = StdRng::seed_from_u64(0);
    let policy = PolicyNetwork::new(FeatureConfig::paper(2), &mut rng);
    MctsScheduler::drl(
        MctsConfig {
            initial_budget: params.drl_budget.0,
            min_budget: params.drl_budget.1,
            seed: SEARCH_SEED,
            eval_cache,
            nn_precision,
            ..MctsConfig::default()
        },
        policy,
    )
}

fn drl_tree_parallel(params: &ModeParams, threads: usize, leaf_batch: usize) -> TreeParallelMcts {
    let mut rng = StdRng::seed_from_u64(0);
    let policy = PolicyNetwork::new(FeatureConfig::paper(2), &mut rng);
    TreeParallelMcts::drl(
        MctsConfig {
            initial_budget: params.drl_budget.0,
            min_budget: params.drl_budget.1,
            seed: SEARCH_SEED,
            search_threads: threads,
            leaf_batch_size: leaf_batch,
            ..MctsConfig::default()
        },
        policy,
    )
}

fn run_tree_parallel(
    params: &ModeParams,
    thread_counts: &[usize],
    leaf_batch: usize,
    obs: &Obs,
) -> TreeParallelReport {
    let dags = workload::simulation_dags(params.dags, params.tasks, WORKLOAD_SEED);
    let spec = workload::cluster();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut points = Vec::new();
    let mut sequential_rate: Option<f64> = None;
    for &threads in thread_counts {
        let mut scheduler = drl_tree_parallel(params, threads, leaf_batch).with_obs(obs);
        let start = std::time::Instant::now();
        let runs: Vec<(u64, SearchStats)> = dags
            .iter()
            .map(|dag| {
                let (schedule, stats) = scheduler
                    .schedule_with_stats(dag, &spec)
                    .expect("workload fits cluster");
                schedule
                    .validate(dag, &spec)
                    .expect("schedule must be valid");
                (schedule.makespan(), stats)
            })
            .collect();
        let elapsed = start.elapsed().as_secs_f64();
        let sum = |f: fn(&SearchStats) -> u64| runs.iter().map(|(_, s)| f(s)).sum::<u64>();
        let iterations = sum(|s| s.iterations);
        let rate = iterations as f64 / elapsed.max(1e-9);
        if threads <= 1 {
            sequential_rate = Some(rate);
        }
        eprintln!(
            "[bench_hotpath] tree-parallel drl @ {threads} threads: {rate:.0} iterations/s in {elapsed:.2}s"
        );
        points.push(TreeParallelPoint {
            threads,
            leaf_batch,
            iterations,
            elapsed_seconds: elapsed,
            iterations_per_sec: rate,
            speedup_vs_sequential: rate / sequential_rate.unwrap_or(rate),
            vloss_collisions: sum(|s| s.vloss_collisions),
            batch_flushes: sum(|s| s.batch_flushes),
            cache_hits: sum(|s| s.cache_hits),
            cache_misses: sum(|s| s.cache_misses),
            makespans: runs.iter().map(|&(m, _)| m).collect(),
        });
    }
    TreeParallelReport {
        host_cores,
        note: format!(
            "wall-clock speedup is bounded by host_cores ({host_cores}); on a 1-core host \
             the curve measures coordination overhead, not parallel scaling"
        ),
        points,
    }
}

fn run_report(params: &ModeParams, eval_cache: bool, obs: &Obs) -> HotpathReport {
    let dags = workload::simulation_dags(params.dags, params.tasks, WORKLOAD_SEED);
    let spec = workload::cluster();
    eprintln!(
        "[bench_hotpath] {} mode: {} DAGs x {} tasks (eval cache {})",
        params.tag,
        params.dags,
        params.tasks,
        if eval_cache { "on" } else { "off" }
    );
    let (pure_runs, pure_elapsed) = measure(&dags, &spec, pure_scheduler(params).with_obs(obs));
    eprintln!("[bench_hotpath] pure MCTS done in {pure_elapsed:.2}s");
    let (drl_runs, drl_elapsed) = measure(
        &dags,
        &spec,
        drl_scheduler(params, eval_cache).with_obs(obs),
    );
    eprintln!("[bench_hotpath] DRL-guided done in {drl_elapsed:.2}s");
    HotpathReport {
        mode: params.tag.to_string(),
        dags: params.dags,
        tasks: params.tasks,
        workload_seed: WORKLOAD_SEED,
        pure: SectionMetrics::from_runs(&pure_runs, pure_elapsed),
        drl: SectionMetrics::from_runs(&drl_runs, drl_elapsed),
    }
}

fn run_multi_job(
    params: &ModeParams,
    eval_cache: bool,
    obs: &Obs,
) -> (MultiJobReport, JobQueue, Schedule) {
    let stream = ArrivalStreamSpec {
        jobs: params.multi_jobs,
        process: ArrivalProcess::Poisson {
            mean_gap: params.multi_mean_gap,
        },
        source: JobSource::Layered(LayeredDagSpec {
            num_tasks: params.multi_tasks,
            ..LayeredDagSpec::paper_simulation()
        }),
    }
    .generate(WORKLOAD_SEED)
    .expect("layered job source is total");
    let queue = JobQueue::new(stream).expect("generated stream forms a valid queue");
    let spec = workload::cluster();
    let mut scheduler = drl_scheduler(params, eval_cache).with_obs(obs);
    let start = std::time::Instant::now();
    let (schedule, _) = scheduler
        .schedule_multi_with_stats(&queue, &spec)
        .expect("stream fits cluster");
    let elapsed = start.elapsed().as_secs_f64();
    schedule
        .validate(queue.union_dag(), &spec)
        .expect("stream schedule must be valid");
    let report = queue.jct_report(&schedule);
    assert_eq!(
        report.unfinished(),
        0,
        "complete episode leaves no job behind"
    );
    eprintln!(
        "[bench_hotpath] multi-job drl: {} jobs x {} tasks in {elapsed:.2}s, jct mean {} p99 {}",
        params.multi_jobs,
        params.multi_tasks,
        fmt_opt(report.mean_jct().map(|m| format!("{m:.1}"))),
        fmt_opt(report.p99_jct())
    );
    let multi = MultiJobReport {
        jobs: params.multi_jobs,
        tasks_per_job: params.multi_tasks,
        mean_gap: params.multi_mean_gap,
        stream_seed: WORKLOAD_SEED,
        elapsed_seconds: elapsed,
        unfinished: report.unfinished(),
        mean_jct: report.mean_jct(),
        p50_jct: report.p50_jct(),
        p99_jct: report.p99_jct(),
        unfairness: report.unfairness(),
        stream_makespan: schedule.makespan(),
        jcts: report.completions().iter().map(|c| c.jct).collect(),
    };
    (multi, queue, schedule)
}

/// `Some(value)` displayed, `None` as `n/a` — mirrors the CLI's handling
/// of absent JCT statistics.
fn fmt_opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "n/a".to_owned(), |x| x.to_string())
}

/// Re-executes the planned multi-job schedule under a seeded 10% fault
/// plan (failures and 1.5x stragglers; a retry budget of 5 keeps the
/// deterministic stream clear of exhaustion) and reports the realized run.
fn run_faults(queue: &JobQueue, planned: &Schedule) -> FaultsReport {
    let profile = FaultProfile {
        max_retries: 5,
        ..FaultProfile::with_rate(0.10)
    };
    let plan = profile.plan(WORKLOAD_SEED);
    let spec = workload::cluster();
    let start = std::time::Instant::now();
    let faulty = execute_multi_under_faults(queue, &spec, planned, &plan, None)
        .expect("the 5-retry budget outlasts a seeded 10% failure rate");
    let elapsed = start.elapsed().as_secs_f64();
    let report = &faulty.report;
    eprintln!(
        "[bench_hotpath] faults @ {:.0}%: realized makespan {} (planned {}), {} failures, {} stragglers",
        100.0 * profile.fail_rate,
        faulty.run.makespan,
        planned.makespan(),
        faulty.run.failures,
        faulty.run.straggles
    );
    FaultsReport {
        fail_rate: profile.fail_rate,
        straggler_rate: profile.straggler_rate,
        straggler_factor: profile.straggler_factor,
        max_retries: profile.max_retries,
        planned_makespan: planned.makespan(),
        realized_makespan: faulty.run.makespan,
        failures: faulty.run.failures,
        straggles: faulty.run.straggles,
        slowdown: faulty.run.makespan as f64 / planned.makespan().max(1) as f64,
        unfinished: report.unfinished(),
        mean_jct: report.mean_jct(),
        p99_jct: report.p99_jct(),
        elapsed_seconds: elapsed,
    }
}

/// Measures raw single-example forward latency of the paper-architecture
/// policy net: the f64 `Mlp` scratch path vs the f32 `InferenceEngine`
/// kernels, on the same pseudo-random feature rows. Returns
/// `(exact_ns, fast_ns)` per inference.
fn kernel_latency(policy: &PolicyNetwork, reps: usize) -> (f64, f64) {
    use rand::Rng;
    let engine = policy.inference_engine();
    let input_dim = engine.input_dim();
    // A small rotation of feature rows defeats trivially value-predictable
    // branches without touching the measured allocation-free paths.
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED);
    let rows: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..input_dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let mut fwd = spear::nn::ForwardScratch::default();
    let mut inf = spear::nn::InferScratch::new();
    // Warm both scratches to steady state before timing.
    for row in &rows {
        std::hint::black_box(policy.net().forward_one_into(row, &mut fwd));
        std::hint::black_box(engine.forward_one(row, &mut inf));
    }
    let start = std::time::Instant::now();
    for i in 0..reps {
        let out = policy
            .net()
            .forward_one_into(&rows[i % rows.len()], &mut fwd);
        std::hint::black_box(out);
    }
    let exact_ns = start.elapsed().as_nanos() as f64 / reps.max(1) as f64;
    let start = std::time::Instant::now();
    for i in 0..reps {
        let out = engine.forward_one(&rows[i % rows.len()], &mut inf);
        std::hint::black_box(out);
    }
    let fast_ns = start.elapsed().as_nanos() as f64 / reps.max(1) as f64;
    (exact_ns, fast_ns)
}

/// Runs the DRL-guided search at both precisions over the same workload,
/// microbenches the raw kernels, and validates every fast schedule with
/// the three diffcheck judges. Both sides run with the eval cache off:
/// the section measures the inference path, and the cache would dilute
/// the comparison by serving ~half the probes from memory. Because the
/// cache is makespan-transparent (a pinned invariant), the exact side's
/// makespans still match the `drl` section and the quick goldens.
fn run_nn_precision(params: &ModeParams, obs: &Obs) -> NnPrecisionReport {
    let eval_cache = false;
    let dags = workload::simulation_dags(params.dags, params.tasks, WORKLOAD_SEED);
    let spec = workload::cluster();
    let reps = if params.tag == "quick" {
        20_000
    } else {
        200_000
    };
    let mut rng = StdRng::seed_from_u64(0);
    let policy = PolicyNetwork::new(FeatureConfig::paper(2), &mut rng);
    let (exact_ns, fast_ns) = kernel_latency(&policy, reps);

    let measure_precision = |precision: spear::nn::Precision| {
        let mut scheduler = drl_scheduler_precision(params, eval_cache, precision).with_obs(obs);
        let start = std::time::Instant::now();
        let runs: Vec<(Schedule, SearchStats)> = dags
            .iter()
            .map(|dag| {
                let (schedule, stats) = scheduler
                    .schedule_with_stats(dag, &spec)
                    .expect("workload fits cluster");
                (schedule, stats)
            })
            .collect();
        (runs, start.elapsed().as_secs_f64())
    };
    let (exact_runs, exact_elapsed) = measure_precision(spear::nn::Precision::Exact);
    let (fast_runs, fast_elapsed) = measure_precision(spear::nn::Precision::Fast);

    // The fast schedules are not pinned; the judges decide their validity
    // and the makespan ratio reports their quality against exact.
    let mut judges_ok = true;
    for (dag, (schedule, _)) in dags.iter().zip(&fast_runs) {
        let tri = spear::diffcheck::check_schedule(dag, &spec, schedule);
        if !tri.all_ok() {
            judges_ok = false;
            eprintln!(
                "[bench_hotpath] FAST JUDGE FAILURE on a {}-task DAG: {}",
                dag.len(),
                tri.summary()
            );
        }
    }
    let max_makespan_ratio = exact_runs
        .iter()
        .zip(&fast_runs)
        .map(|((e, _), (f, _))| f.makespan() as f64 / e.makespan().max(1) as f64)
        .fold(0.0_f64, f64::max);

    let point = |runs: &[(Schedule, SearchStats)], elapsed: f64, ns: f64| NnPrecisionPoint {
        ns_per_inference: ns,
        iterations_per_sec: runs.iter().map(|(_, s)| s.iterations).sum::<u64>() as f64
            / elapsed.max(1e-9),
        policy_inferences: runs.iter().map(|(_, s)| s.policy_inferences).sum(),
        elapsed_seconds: elapsed,
        makespans: runs.iter().map(|(s, _)| s.makespan()).collect(),
    };
    let exact = point(&exact_runs, exact_elapsed, exact_ns);
    let fast = point(&fast_runs, fast_elapsed, fast_ns);
    eprintln!(
        "[bench_hotpath] nn precision: exact {exact_ns:.0} ns/inference, fast {fast_ns:.0} ns/inference, drl {:.2}x",
        fast.iterations_per_sec / exact.iterations_per_sec.max(1e-9)
    );
    NnPrecisionReport {
        eval_cache,
        inference_speedup: exact_ns / fast_ns.max(1e-9),
        drl_speedup: fast.iterations_per_sec / exact.iterations_per_sec.max(1e-9),
        max_makespan_ratio,
        judges_ok,
        exact,
        fast,
    }
}

fn comparable(a: &HotpathReport, b: &HotpathReport) -> bool {
    a.mode == b.mode && a.dags == b.dags && a.tasks == b.tasks && a.workload_seed == b.workload_seed
}

/// Pinned quick-mode makespans (2 DAGs × 30 tasks, seed 42). The quick
/// run doubles as a CI smoke job: any drift here means a perf change
/// stopped being bit-exact, and the binary exits nonzero.
const QUICK_GOLDEN_PURE: [u64; 2] = [203, 208];
const QUICK_GOLDEN_DRL: [u64; 2] = [233, 229];

/// Quick-mode companion to the golden check: the same workload searched
/// on the degenerate 1-machine heterogeneous cluster must reproduce the
/// pinned single-box goldens exactly. The machine generalization routes
/// these runs through `Action::Place` and the per-machine accounting,
/// so any divergence there shows up as a golden mismatch.
fn one_machine_equivalence(params: &ModeParams, eval_cache: bool) -> bool {
    let dags = workload::simulation_dags(params.dags, params.tasks, WORKLOAD_SEED);
    let spec = workload::degenerate_hetero_cluster();
    let (pure_runs, _) = measure(&dags, &spec, pure_scheduler(params));
    let (drl_runs, _) = measure(&dags, &spec, drl_scheduler(params, eval_cache));
    let pure: Vec<u64> = pure_runs.iter().map(|&(m, _)| m).collect();
    let drl: Vec<u64> = drl_runs.iter().map(|&(m, _)| m).collect();
    let ok = pure == QUICK_GOLDEN_PURE && drl == QUICK_GOLDEN_DRL;
    if ok {
        eprintln!("[bench_hotpath] 1-machine hetero equivalence OK");
    } else {
        eprintln!(
            "[bench_hotpath] 1-MACHINE EQUIVALENCE MISMATCH: pure {pure:?} (want {:?}), \
             drl {drl:?} (want {:?})",
            QUICK_GOLDEN_PURE, QUICK_GOLDEN_DRL
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let save_baseline = args.iter().any(|a| a == "--save-baseline");
    let eval_cache = !args.iter().any(|a| a == "--no-eval-cache");
    let metrics_out: Option<String> = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("invalid {name} `{v}`"))
            })
    };
    let search_threads = flag_value("--search-threads");
    let leaf_batch = flag_value("--leaf-batch").unwrap_or(8);
    let params = if quick { &QUICK } else { &FULL };

    let registry = if metrics_out.is_some() {
        if !spear::obs::compiled() {
            eprintln!(
                "[bench_hotpath] note: metrics compiled out; rebuild with --features obs for data"
            );
        }
        MetricsRegistry::new()
    } else {
        MetricsRegistry::disabled()
    };
    let sink = registry.sink("bench_hotpath");

    let report = run_report(params, eval_cache, &sink);

    // The quick golden verdict gates the exit code, but only *after* the
    // JSON output and any `--metrics-out` file are written — a drift run
    // must still leave its evidence on disk for CI to upload.
    let golden_ok = if quick {
        let ok =
            report.pure.makespans == QUICK_GOLDEN_PURE && report.drl.makespans == QUICK_GOLDEN_DRL;
        if ok {
            eprintln!("[bench_hotpath] quick golden makespans OK");
        } else {
            eprintln!(
                "[bench_hotpath] GOLDEN MISMATCH: pure {:?} (want {:?}), drl {:?} (want {:?})",
                report.pure.makespans, QUICK_GOLDEN_PURE, report.drl.makespans, QUICK_GOLDEN_DRL
            );
        }
        ok && one_machine_equivalence(params, eval_cache)
    } else {
        true
    };

    let (multi_job, multi_queue, multi_schedule) = run_multi_job(params, eval_cache, &sink);
    let faults = run_faults(&multi_queue, &multi_schedule);
    let nn_precision = run_nn_precision(params, &sink);

    // Tree-parallel thread-scaling curve: the full default is the
    // 1/2/4/8 sweep; `--search-threads N` narrows it to [1, N] (the
    // quick CI smoke uses this for a single parallel run on top of the
    // sequential golden check).
    let thread_counts: Vec<usize> = match search_threads {
        Some(1) => vec![1],
        Some(n) => vec![1, n],
        None if quick => Vec::new(),
        None => vec![1, 2, 4, 8],
    };
    let tree_parallel = (!thread_counts.is_empty())
        .then(|| run_tree_parallel(params, &thread_counts, leaf_batch, &sink));

    let baseline: Option<HotpathReport> = std::fs::read_to_string(baseline_path())
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .filter(|b| comparable(b, &report));
    let speedup = baseline.as_ref().map(|b| Speedup {
        pure_iterations_per_sec: report.pure.iterations_per_sec / b.pure.iterations_per_sec,
        pure_rollout_steps_per_sec: report.pure.rollout_steps_per_sec
            / b.pure.rollout_steps_per_sec,
        drl_iterations_per_sec: report.drl.iterations_per_sec / b.drl.iterations_per_sec,
        drl_policy_inferences_per_sec: report.drl.policy_inferences_per_sec
            / b.drl.policy_inferences_per_sec,
    });

    println!(
        "pure: {:>10.0} iterations/s  {:>12.0} rollout steps/s  makespans {:?}",
        report.pure.iterations_per_sec, report.pure.rollout_steps_per_sec, report.pure.makespans
    );
    println!(
        "drl:  {:>10.0} iterations/s  {:>12.0} rollout steps/s  {:>10.0} inferences/s  makespans {:?}",
        report.drl.iterations_per_sec,
        report.drl.rollout_steps_per_sec,
        report.drl.policy_inferences_per_sec,
        report.drl.makespans
    );
    println!(
        "drl cache: {} hits / {} misses / {} evictions ({:.1}% hit rate), {} singleton skips ({:.1}% of decision points)",
        report.drl.cache_hits,
        report.drl.cache_misses,
        report.drl.cache_evictions,
        100.0 * report.drl.cache_hit_rate,
        report.drl.inference_skips,
        100.0 * report.drl.inference_skip_ratio
    );
    if let Some(tp) = &tree_parallel {
        for p in &tp.points {
            println!(
                "tree-parallel drl @ {} threads (leaf batch {}): {:>10.0} iterations/s ({:.2}x vs 1 thread), {} vloss collisions, {} batch flushes",
                p.threads,
                p.leaf_batch,
                p.iterations_per_sec,
                p.speedup_vs_sequential,
                p.vloss_collisions,
                p.batch_flushes
            );
        }
        println!("tree-parallel host cores: {}", tp.host_cores);
    }
    println!(
        "multi-job drl: {} jobs x {} tasks ({} unfinished), jct mean {} p50 {} p99 {}, unfairness {:.2}, stream makespan {}",
        multi_job.jobs,
        multi_job.tasks_per_job,
        multi_job.unfinished,
        fmt_opt(multi_job.mean_jct.map(|m| format!("{m:.1}"))),
        fmt_opt(multi_job.p50_jct),
        fmt_opt(multi_job.p99_jct),
        multi_job.unfairness,
        multi_job.stream_makespan
    );
    println!(
        "faults @ {:.0}%: realized makespan {} (planned {}, {:.2}x), {} failures, {} stragglers, jct mean {}",
        100.0 * faults.fail_rate,
        faults.realized_makespan,
        faults.planned_makespan,
        faults.slowdown,
        faults.failures,
        faults.straggles,
        fmt_opt(faults.mean_jct.map(|m| format!("{m:.1}")))
    );
    println!(
        "nn precision: exact {:.0} ns/inference, fast {:.0} ns/inference ({:.2}x kernel); drl {:.0} -> {:.0} iterations/s ({:.2}x); max makespan ratio {:.3}, judges {}",
        nn_precision.exact.ns_per_inference,
        nn_precision.fast.ns_per_inference,
        nn_precision.inference_speedup,
        nn_precision.exact.iterations_per_sec,
        nn_precision.fast.iterations_per_sec,
        nn_precision.drl_speedup,
        nn_precision.max_makespan_ratio,
        if nn_precision.judges_ok { "OK" } else { "FAILED" }
    );
    if let Some(s) = &speedup {
        println!(
            "speedup vs baseline: pure {:.2}x iterations/s, {:.2}x rollout steps/s; drl {:.2}x iterations/s, {:.2}x inferences/s",
            s.pure_iterations_per_sec,
            s.pure_rollout_steps_per_sec,
            s.drl_iterations_per_sec,
            s.drl_policy_inferences_per_sec
        );
    } else {
        println!("no comparable baseline at {}", baseline_path().display());
    }

    if save_baseline {
        let path = baseline_path();
        std::fs::create_dir_all(path.parent().expect("has parent"))
            .expect("cannot create baseline dir");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&report).expect("report serializes"),
        )
        .expect("cannot write baseline");
        eprintln!("[bench_hotpath] baseline saved to {}", path.display());
    }

    let metrics = metrics_out.as_deref().map(|path| {
        let snapshot = registry.snapshot();
        std::fs::write(path, snapshot.to_jsonl()).expect("cannot write metrics output");
        eprintln!("[bench_hotpath] wrote metrics to {path}");
        serde_json::from_str(&snapshot.to_json())
            .expect("snapshot JSON round-trips through serde_json")
    });

    let out_name = if quick {
        "BENCH_mcts_quick.json"
    } else {
        "BENCH_mcts.json"
    };
    let out_path = repo_root().join(out_name);
    let judges_ok = nn_precision.judges_ok;
    let output = BenchOutput {
        report,
        baseline,
        speedup,
        tree_parallel,
        multi_job,
        faults,
        nn_precision,
    };
    let mut value = serde_json::to_value(&output);
    if let (Some(m), serde_json::Value::Obj(entries)) = (metrics, &mut value) {
        entries.push(("metrics".to_string(), m));
    }
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&value).expect("output serializes"),
    )
    .expect("cannot write benchmark output");
    eprintln!("[bench_hotpath] wrote {}", out_path.display());

    // Either gate failing means the run is evidence of a regression: the
    // goldens catch exact-path drift, the judges catch an invalid fast
    // schedule. The JSON above is already on disk either way.
    if !golden_ok || !judges_ok {
        std::process::exit(1);
    }
}
