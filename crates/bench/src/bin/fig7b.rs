//! Regenerates Fig. 7(b): fraction of jobs where MCTS beats Tetris, per
//! budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig7;
use spear_bench::{report, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fig7::Config::for_scale(scale);
    let outcome = fig7::run(&config);
    let table = fig7::winrate_table(&outcome);
    println!("{}", table.render());
    report::write_json(&format!("fig7_{}", scale.tag()), &outcome);
    report::write_text(&format!("fig7b_{}.csv", scale.tag()), &table.to_csv());
}
