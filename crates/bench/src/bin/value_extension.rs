//! Runs the value-network rollout-truncation extension (beyond the
//! paper; see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::value_ext;
use spear_bench::{policy, report, workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = value_ext::Config::for_scale(scale);
    let trained = policy::obtain(scale, &workload::cluster());
    let outcome = value_ext::run(&config, trained);
    let table = value_ext::table(&outcome);
    println!("{}", table.render());
    report::write_json(&format!("value_ext_{}", scale.tag()), &outcome);
    report::write_text(&format!("value_ext_{}.csv", scale.tag()), &table.to_csv());
}
