//! Regenerates Fig. 6(a): per-DAG makespans of Spear vs the baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig6;
use spear_bench::{policy, report, workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fig6::Config::for_scale(scale);
    let trained = policy::obtain(scale, &workload::cluster());
    let outcome = fig6::run(&config, trained);
    let table = fig6::makespan_table(&outcome);
    println!("{}", table.render());
    println!(
        "spear ≤ graphene on {:.0}% of DAGs (paper: 90%)",
        100.0 * outcome.spear_beats_graphene
    );
    report::write_json(&format!("fig6a_{}", scale.tag()), &outcome);
    report::write_text(&format!("fig6a_{}.csv", scale.tag()), &table.to_csv());
}
