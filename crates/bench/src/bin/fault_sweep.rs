//! Regenerates the EXPERIMENTS.md fault matrix: the scheduler roster
//! executed under seeded failure/straggler injection at rates 0-20%.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fault_sweep;
use spear_bench::{report, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fault_sweep::Config::for_scale(scale);
    let outcome = fault_sweep::run(&config);
    let table = fault_sweep::table(&outcome, &config);
    println!("{}", table.render());
    report::write_json(&format!("fault_sweep_{}", scale.tag()), &outcome);
    report::write_text(&format!("fault_sweep_{}.csv", scale.tag()), &table.to_csv());
}
