//! Regenerates every table and figure in one go, writing artifacts to
//! `results/` and a combined report to `results/experiments_<scale>.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::{ablations, fig6, fig7, fig8, fig9, table1};
use spear_bench::{policy, report, workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let started = std::time::Instant::now();
    let mut combined = String::new();
    let mut push = |s: String| {
        println!("{s}");
        combined.push_str(&s);
        combined.push('\n');
    };

    eprintln!("== policy ==");
    let trained = policy::obtain(scale, &workload::cluster());

    eprintln!("== fig6 ==");
    let f6 = fig6::run(&fig6::Config::for_scale(scale), trained.clone());
    push(fig6::makespan_table(&f6).render());
    push(format!(
        "spear ≤ graphene on {:.0}% of DAGs (paper: 90%)\n",
        100.0 * f6.spear_beats_graphene
    ));
    push(fig6::runtime_table(&f6).render());
    report::write_json(&format!("fig6a_{}", scale.tag()), &f6);

    eprintln!("== fig7 ==");
    let f7 = fig7::run(&fig7::Config::for_scale(scale));
    push(fig7::makespan_table(&f7).render());
    push(fig7::winrate_table(&f7).render());
    report::write_json(&format!("fig7_{}", scale.tag()), &f7);

    eprintln!("== table1 ==");
    let t1cfg = table1::Config::for_scale(scale);
    let t1 = table1::run(&t1cfg);
    push(table1::table(&t1, &t1cfg).render());
    report::write_json(&format!("table1_{}", scale.tag()), &t1);

    eprintln!("== fig8a ==");
    let f8cfg = fig8::Config::for_scale(scale);
    let f8 = fig8::run(&f8cfg, trained.clone());
    push(fig8::table(&f8, &f8cfg).render());
    report::write_json(&format!("fig8a_{}", scale.tag()), &f8);

    eprintln!("== fig8b ==");
    let f8b = fig8::run_curve(scale);
    push(fig8::curve_table(&f8b).render());
    report::write_json(&format!("fig8b_{}", scale.tag()), &f8b);

    eprintln!("== fig9 ==");
    let f9cfg = fig9::Config::for_scale(scale);
    let trace = fig9::trace(f9cfg.seed);
    push(fig9::task_count_table(&trace).render());
    push(fig9::runtime_table(&trace).render());
    let f9c = fig9::run_reduction(&f9cfg, trained.clone());
    push(fig9::reduction_table(&f9c).render());
    report::write_json(&format!("fig9c_{}", scale.tag()), &f9c);

    eprintln!("== ablations ==");
    let mut ab = ablations::run(&ablations::Config::for_scale(scale), trained.clone());
    ab.training =
        ablations::run_training_levels(&ablations::Config::for_scale(scale), trained, 12345);
    for table in ablations::tables(&ab) {
        push(table.render());
    }
    report::write_json(&format!("ablations_{}", scale.tag()), &ab);

    let path = report::write_text(&format!("experiments_{}.md", scale.tag()), &combined);
    eprintln!(
        "all experiments done in {:.0?}; combined report at {}",
        started.elapsed(),
        path.display()
    );
}
