//! Regenerates Fig. 8(b): the DRL learning curve with Tetris/SJF
//! reference lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig8;
use spear_bench::{report, Scale};

fn main() {
    let scale = Scale::from_args();
    let outcome = fig8::run_curve(scale);
    let table = fig8::curve_table(&outcome);
    println!("{}", table.render());
    report::write_json(&format!("fig8b_{}", scale.tag()), &outcome);
    report::write_text(&format!("fig8b_{}.csv", scale.tag()), &table.to_csv());
}
