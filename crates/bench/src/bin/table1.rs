//! Regenerates Table I: MCTS runtime across graph sizes and budgets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::table1;
use spear_bench::{report, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = table1::Config::for_scale(scale);
    let outcome = table1::run(&config);
    let table = table1::table(&outcome, &config);
    println!("{}", table.render());
    report::write_json(&format!("table1_{}", scale.tag()), &outcome);
    report::write_text(&format!("table1_{}.csv", scale.tag()), &table.to_csv());
}
