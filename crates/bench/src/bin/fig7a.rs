//! Regenerates Fig. 7(a): pure-MCTS makespan vs iteration budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spear_bench::experiments::fig7;
use spear_bench::{report, Scale};

fn main() {
    let scale = Scale::from_args();
    let config = fig7::Config::for_scale(scale);
    let outcome = fig7::run(&config);
    let table = fig7::makespan_table(&outcome);
    println!("{}", table.render());
    report::write_json(&format!("fig7_{}", scale.tag()), &outcome);
    report::write_text(&format!("fig7a_{}.csv", scale.tag()), &table.to_csv());
}
