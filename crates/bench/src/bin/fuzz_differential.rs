//! The differential schedule fuzzer — CI entry point.
//!
//! Runs a seeded `LayeredDagSpec` × scheduler-roster corpus (see
//! `spear::diffcheck::corpus`) and re-verifies every produced schedule
//! three independent ways: `Schedule::validate`, replay through a fresh
//! `SimState`, and replay onto a `ResourceTimeline`. Any disagreement is a
//! bookkeeping bug in one of the three cores; the offending case is shrunk
//! to a minimal witness and written as a fixture JSON for triage (move it
//! under `tests/fixtures/` once the bug is fixed, so it becomes a
//! permanent regression test).
//!
//! Usage:
//!
//! * `fuzz_differential` — the CI configuration: 200 single-job cases plus
//!   40 multi-job arrival-stream cases, 40 fault-injection cases and 40
//!   heterogeneous-cluster cases, seed `0xD1FF5EED`, exit code 1 on any
//!   failure.
//! * `fuzz_differential --cases N --multi-cases M --fault-cases F
//!   --hetero-cases H --seed S` — custom corpus sizes.
//! * `fuzz_differential --out DIR` — where to write shrunk witnesses
//!   (default `tests/fuzz_failures/` at the repository root).
//!
//! The multi-job pass runs every roster scheduler's `schedule_multi` over
//! seeded Poisson streams and applies the strengthened online judges
//! (arrival gating, per-job sub-schedules, JCT accounting, invariant
//! auditor); failures are reported by case label (streams have no DAG
//! shrinker).
//!
//! The fault pass executes every roster scheduler's fault-free plan under
//! seeded failure/straggler plans and applies the fault-aware judges
//! (`spear::diffcheck::check_faulty_run`): declarative re-derivation from
//! the plan's draws, audited bit-identical re-execution, and the occupancy
//! grid over failed *and* final attempts. Deterministic retry exhaustion is
//! legal; nondeterministic exhaustion or any judge failure is a finding.
//!
//! The heterogeneous pass runs the roster over seeded 2–3-machine clusters
//! with data-transfer-aware placement (both transfer modes, mixed
//! bandwidths); every judge re-derives the transfer delays independently.
//! A failing case first shrinks its *machine count* to the minimum that
//! still reproduces the disagreement, then its DAG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use spear::diffcheck::{
    check_schedule, corpus, fault_corpus, hetero_corpus, multi_corpus, shrink_dag, CaseSpec,
    Fixture, HeteroCaseSpec,
};

/// CI defaults: the corpus sizes the workflow's ~60 s budget is sized for.
const DEFAULT_CASES: usize = 200;
const DEFAULT_MULTI_CASES: usize = 40;
const DEFAULT_FAULT_CASES: usize = 40;
const DEFAULT_HETERO_CASES: usize = 40;
const DEFAULT_SEED: u64 = 0xD1FF_5EED;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Parses `--flag value` style arguments, with defaults.
fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Shrinks a failing case to a minimal witness fixture.
fn shrink_case(case: &CaseSpec, why: &str) -> Fixture {
    let dag = case.dag();
    let spec = case.cluster();
    let fails = |d: &spear::Dag| {
        let mut scheduler = case.scheduler.build(case.seed, case.dims);
        match scheduler.schedule(d, &spec) {
            Ok(schedule) => !check_schedule(d, &spec, &schedule).all_ok(),
            // A scheduler error on a sub-DAG is a different failure mode;
            // keep the shrink focused on the original disagreement.
            Err(_) => false,
        }
    };
    let small = shrink_dag(&dag, fails);
    Fixture::from_parts(
        &format!("fuzz_{}", case.label().replace('/', "_")),
        &format!("shrunk witness of a three-way disagreement: {why}"),
        case.scheduler,
        case.seed,
        &small,
        &spec,
    )
}

/// Shrinks a failing heterogeneous case: first to the minimal machine
/// count that still reproduces the disagreement, then to a minimal DAG on
/// that cluster.
fn shrink_hetero_case(case: &HeteroCaseSpec, why: &str) -> Fixture {
    let fails_with = |c: &HeteroCaseSpec, d: &spear::Dag| {
        let spec = c.cluster();
        let mut scheduler = c.scheduler.build(c.seed, c.dims);
        match scheduler.schedule(d, &spec) {
            Ok(schedule) => !check_schedule(d, &spec, &schedule).all_ok(),
            Err(_) => false,
        }
    };
    let dag = case.dag();
    let mut small_case = *case;
    while small_case.machines > 1 {
        let candidate = HeteroCaseSpec {
            machines: small_case.machines - 1,
            ..small_case
        };
        if fails_with(&candidate, &dag) {
            small_case = candidate;
        } else {
            break;
        }
    }
    let small = shrink_dag(&dag, |d| fails_with(&small_case, d));
    Fixture::from_parts(
        &format!("fuzz_{}", small_case.label().replace('/', "_")),
        &format!("shrunk witness of a heterogeneous three-way disagreement: {why}"),
        small_case.scheduler,
        small_case.seed,
        &small,
        &small_case.cluster(),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let cases = arg_value(&args, "--cases", DEFAULT_CASES);
    let multi_cases = arg_value(&args, "--multi-cases", DEFAULT_MULTI_CASES);
    let fault_cases = arg_value(&args, "--fault-cases", DEFAULT_FAULT_CASES);
    let hetero_cases = arg_value(&args, "--hetero-cases", DEFAULT_HETERO_CASES);
    let seed = arg_value(&args, "--seed", DEFAULT_SEED);
    let out_dir = arg_value(&args, "--out", repo_root().join("tests/fuzz_failures"));

    let matrix = corpus(cases, seed);
    eprintln!(
        "[fuzz_differential] {} cases, base seed {seed:#x}",
        matrix.len()
    );
    let start = Instant::now();
    let mut failures = 0usize;
    for (i, case) in matrix.iter().enumerate() {
        let why = match case.run() {
            Ok(tri) if tri.all_ok() => {
                if (i + 1) % 50 == 0 {
                    eprintln!(
                        "[fuzz_differential] {}/{} ok ({:.1}s)",
                        i + 1,
                        matrix.len(),
                        start.elapsed().as_secs_f64()
                    );
                }
                continue;
            }
            Ok(tri) => tri.summary(),
            Err(e) => format!("scheduler error: {e}"),
        };
        failures += 1;
        println!("FAIL {}: {why}", case.label());
        let fixture = shrink_case(case, &why);
        std::fs::create_dir_all(&out_dir).expect("cannot create witness dir");
        let path = out_dir.join(format!("{}.json", fixture.name));
        std::fs::write(&path, fixture.to_json()).expect("cannot write witness");
        println!(
            "  shrunk witness ({} tasks) written to {}",
            fixture.tasks.len(),
            path.display()
        );
    }

    // Multi-job pass: every scheduler's online path over seeded Poisson
    // streams, judged by the strengthened multi-job tri-check.
    let multi_matrix = multi_corpus(multi_cases, seed);
    eprintln!(
        "[fuzz_differential] {} multi-job cases, base seed {seed:#x}",
        multi_matrix.len()
    );
    for (i, case) in multi_matrix.iter().enumerate() {
        let why = match case.run() {
            Ok((tri, report)) if tri.all_ok() && report.unfinished() == 0 => {
                if (i + 1) % 20 == 0 {
                    eprintln!(
                        "[fuzz_differential] multi {}/{} ok ({:.1}s)",
                        i + 1,
                        multi_matrix.len(),
                        start.elapsed().as_secs_f64()
                    );
                }
                continue;
            }
            Ok((tri, report)) if tri.all_ok() => {
                format!(
                    "{} jobs unfinished in a complete episode",
                    report.unfinished()
                )
            }
            Ok((tri, _)) => tri.summary(),
            Err(e) => format!("scheduler error: {e}"),
        };
        failures += 1;
        println!("FAIL {}: {why}", case.label());
    }

    // Fault pass: fault-free plans executed under seeded fault plans,
    // judged by the fault-aware tri-check. `Ok(None)` is deterministic
    // retry exhaustion — legal, counted separately.
    let fault_matrix = fault_corpus(fault_cases, seed);
    eprintln!(
        "[fuzz_differential] {} fault cases, base seed {seed:#x}",
        fault_matrix.len()
    );
    let mut exhausted = 0usize;
    for (i, case) in fault_matrix.iter().enumerate() {
        let why = match case.run() {
            Ok(Some(tri)) if tri.all_ok() => {
                if (i + 1) % 20 == 0 {
                    eprintln!(
                        "[fuzz_differential] faults {}/{} ok ({:.1}s)",
                        i + 1,
                        fault_matrix.len(),
                        start.elapsed().as_secs_f64()
                    );
                }
                continue;
            }
            Ok(None) => {
                exhausted += 1;
                continue;
            }
            Ok(Some(tri)) => tri.summary(),
            Err(e) => format!("fault case error: {e}"),
        };
        failures += 1;
        println!("FAIL {}: {why}", case.label());
    }
    if exhausted > 0 {
        eprintln!(
            "[fuzz_differential] {exhausted} fault cases ended in deterministic retry \
             exhaustion (legal)"
        );
    }

    // Heterogeneous pass: the roster over seeded multi-machine clusters
    // with data-transfer-aware placement, judged by the same tri-check —
    // each judge re-derives the transfer delays on its own.
    let hetero_matrix = hetero_corpus(hetero_cases, seed);
    eprintln!(
        "[fuzz_differential] {} hetero cases, base seed {seed:#x}",
        hetero_matrix.len()
    );
    for (i, case) in hetero_matrix.iter().enumerate() {
        let why = match case.run() {
            Ok(tri) if tri.all_ok() => {
                if (i + 1) % 20 == 0 {
                    eprintln!(
                        "[fuzz_differential] hetero {}/{} ok ({:.1}s)",
                        i + 1,
                        hetero_matrix.len(),
                        start.elapsed().as_secs_f64()
                    );
                }
                continue;
            }
            Ok(tri) => tri.summary(),
            Err(e) => format!("scheduler error: {e}"),
        };
        failures += 1;
        println!("FAIL {}: {why}", case.label());
        let fixture = shrink_hetero_case(case, &why);
        std::fs::create_dir_all(&out_dir).expect("cannot create witness dir");
        let path = out_dir.join(format!("{}.json", fixture.name));
        std::fs::write(&path, fixture.to_json()).expect("cannot write witness");
        println!(
            "  shrunk witness ({} tasks) written to {}",
            fixture.tasks.len(),
            path.display()
        );
    }

    let total = matrix.len() + multi_matrix.len() + fault_matrix.len() + hetero_matrix.len();
    let elapsed = start.elapsed().as_secs_f64();
    if failures == 0 {
        println!("fuzz_differential: {total} cases, 0 disagreements ({elapsed:.1}s)");
        ExitCode::SUCCESS
    } else {
        println!("fuzz_differential: {failures} of {total} cases FAILED ({elapsed:.1}s)");
        ExitCode::FAILURE
    }
}
