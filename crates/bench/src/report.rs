//! Table rendering and artifact output.

use std::fmt::Write as _;
use std::path::PathBuf;

use serde::Serialize;

/// A simple text table: fixed-width columns, right-aligned numbers.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// The artifacts directory (`results/` under the workspace root),
/// created on demand.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("SPEAR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("cannot create results directory");
    dir
}

/// Writes a serializable artifact as pretty JSON into `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let file = std::fs::File::create(&path).expect("cannot create artifact file");
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), value)
        .expect("artifact serialization failed");
    path
}

/// Writes a text artifact (rendered table / CSV) into `results/`.
pub fn write_text(name: &str, content: &str) -> PathBuf {
    let path = results_dir().join(name);
    std::fs::write(&path, content).expect("cannot write artifact");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(10.0, 1), "10.0");
    }
}
