//! The experiment harness: regenerates every table and figure of the
//! Spear paper's evaluation section (§V).
//!
//! Each `fig*`/`table*` binary in `src/bin` is a thin wrapper around a
//! module of [`experiments`]; all of them accept `--paper` for the paper's
//! full parameters and default to `--quick`, a laptop-scale configuration
//! that preserves the qualitative shape (who wins, by roughly what factor)
//! at a fraction of the wall-clock. `run_all` regenerates everything and
//! writes machine-readable artifacts to `results/`.
//!
//! | experiment | binary | paper result reproduced |
//! |---|---|---|
//! | Fig. 6(a) | `fig6a` | per-DAG makespans, Spear vs 4 baselines |
//! | Fig. 6(b) | `fig6b` | scheduler runtime distributions |
//! | Fig. 7(a) | `fig7a` | pure-MCTS makespan vs budget |
//! | Fig. 7(b) | `fig7b` | % of jobs MCTS beats Tetris vs budget |
//! | Table I   | `table1` | MCTS runtime vs graph size × budget |
//! | Fig. 8(a) | `fig8a` | Spear@100 ≈ MCTS@1000 > Tetris/CP/SJF |
//! | Fig. 8(b) | `fig8b` | the DRL learning curve |
//! | Fig. 9(a,b) | `fig9ab` | trace task-count / runtime CDFs |
//! | Fig. 9(c) | `fig9c` | makespan reduction vs Graphene CDF |
//! | ablations | `ablations` | design-choice ablations (DESIGN.md §5) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod policy;
pub mod report;
pub mod workload;

/// Experiment scale selection, shared by all binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale defaults: minutes of wall-clock, same qualitative
    /// shapes.
    Quick,
    /// The paper's full parameters (hours on one core).
    Paper,
}

impl Scale {
    /// Parses the scale from process arguments: `--paper` selects
    /// [`Scale::Paper`], anything else (or nothing) stays quick.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// A short tag for artifact names.
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}
