//! Design-choice ablations (DESIGN.md §5): each isolates one of Spear's
//! adaptations and measures its effect at a fixed budget.

use serde::{Deserialize, Serialize};
use spear::{
    ClusterSpec, Dag, MctsConfig, MctsScheduler, PolicyNetwork, Scheduler, TetrisScheduler,
};
use spear_mcts::UniformPolicy;

use crate::report::{fmt_f, Table};
use crate::workload::{self, mean_f64, mean_u64};
use crate::Scale;

/// Shared ablation parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random DAGs.
    pub num_dags: usize,
    /// Tasks per DAG.
    pub tasks: usize,
    /// MCTS budget used by every variant.
    pub budget: (u64, u64),
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Config {
                num_dags: 8,
                tasks: 100,
                budget: (400, 50),
                seed: 77,
            },
            Scale::Quick => Config {
                num_dags: 5,
                tasks: 50,
                budget: (150, 25),
                seed: 77,
            },
        }
    }
}

/// One ablation variant's aggregate result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variant {
    /// Variant label.
    pub name: String,
    /// Mean makespan over the DAGs.
    pub mean_makespan: f64,
    /// Mean wall-clock seconds.
    pub mean_seconds: f64,
    /// Mean total iterations.
    pub mean_iterations: f64,
}

/// All ablation outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// Rollout-policy ablation: work-conserving vs fully uniform rollouts.
    pub rollout: Vec<Variant>,
    /// Backpropagation ablation: max-value (Eq. 5) vs mean-value UCB.
    pub backprop: Vec<Variant>,
    /// Budget ablation: hyperbolic decay (Eq. 4) vs flat.
    pub budget: Vec<Variant>,
    /// Guidance ablation: random vs heuristic vs DRL policies.
    pub guidance: Vec<Variant>,
    /// Training-level ablation: untrained vs trained network guidance at
    /// the Spear budget (filled by [`run_training_levels`]).
    #[serde(default)]
    pub training: Vec<Variant>,
    /// Tetris reference mean makespan.
    pub tetris_reference: f64,
}

/// Measures how much the *training* of the guidance network matters: the
/// same DRL-guided search with an untrained (randomly initialized)
/// network vs the trained one, at the Spear budget. The trained policy's
/// edge here is the value of §IV's training pipeline inside the search
/// (the networks differ in weights only, and the trained one was fitted
/// on 25-task examples — the evaluation DAGs are larger, so this also
/// demonstrates generalization across job sizes).
pub fn run_training_levels(
    config: &Config,
    trained: PolicyNetwork,
    untrained_seed: u64,
) -> Vec<Variant> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let spec = workload::cluster();
    let dags = workload::simulation_dags(config.num_dags, config.tasks, config.seed);
    let base = MctsConfig {
        initial_budget: config.budget.0,
        min_budget: config.budget.1,
        seed: config.seed,
        ..MctsConfig::default()
    };
    let untrained = PolicyNetwork::new(
        trained.feature_config().clone(),
        &mut StdRng::seed_from_u64(untrained_seed),
    );
    vec![
        measure(
            "untrained network",
            MctsScheduler::drl(base.clone(), untrained),
            &dags,
            &spec,
        ),
        measure(
            "trained network",
            MctsScheduler::drl(base, trained),
            &dags,
            &spec,
        ),
    ]
}

fn measure(name: &str, mut scheduler: MctsScheduler, dags: &[Dag], spec: &ClusterSpec) -> Variant {
    let mut makespans = Vec::new();
    let mut seconds = Vec::new();
    let mut iterations = Vec::new();
    for dag in dags {
        let (schedule, stats) = scheduler.schedule_with_stats(dag, spec).expect("fits");
        makespans.push(schedule.makespan());
        seconds.push(stats.elapsed_seconds);
        iterations.push(stats.iterations as f64);
    }
    let v = Variant {
        name: name.to_owned(),
        mean_makespan: mean_u64(&makespans),
        mean_seconds: mean_f64(&seconds),
        mean_iterations: mean_f64(&iterations),
    };
    eprintln!(
        "[ablation] {}: makespan {:.1}, {:.2}s, {:.0} iterations",
        v.name, v.mean_makespan, v.mean_seconds, v.mean_iterations
    );
    v
}

/// Runs all ablations.
pub fn run(config: &Config, trained: PolicyNetwork) -> Outcome {
    let spec = workload::cluster();
    let dags = workload::simulation_dags(config.num_dags, config.tasks, config.seed);
    let base = MctsConfig {
        initial_budget: config.budget.0,
        min_budget: config.budget.1,
        seed: config.seed,
        ..MctsConfig::default()
    };

    let rollout = vec![
        measure(
            "work-conserving rollout",
            MctsScheduler::pure(base.clone()),
            &dags,
            &spec,
        ),
        measure(
            "uniform rollout",
            MctsScheduler::with_policy(base.clone(), Box::new(UniformPolicy), "mcts-uniform"),
            &dags,
            &spec,
        ),
    ];

    let backprop = vec![
        measure(
            "max-value (Eq. 5)",
            MctsScheduler::pure(base.clone()),
            &dags,
            &spec,
        ),
        measure(
            "mean-value",
            MctsScheduler::pure(MctsConfig {
                max_value_backprop: false,
                ..base.clone()
            }),
            &dags,
            &spec,
        ),
    ];

    let budget = vec![
        measure(
            "decayed budget (Eq. 4)",
            MctsScheduler::pure(base.clone()),
            &dags,
            &spec,
        ),
        measure(
            "flat budget",
            MctsScheduler::pure(MctsConfig {
                decay_budget: false,
                ..base.clone()
            }),
            &dags,
            &spec,
        ),
    ];

    let guidance = vec![
        measure(
            "random guidance",
            MctsScheduler::pure(base.clone()),
            &dags,
            &spec,
        ),
        measure(
            "heuristic guidance",
            MctsScheduler::heuristic(base.clone()),
            &dags,
            &spec,
        ),
        measure(
            "drl guidance (Spear)",
            MctsScheduler::drl(base.clone(), trained),
            &dags,
            &spec,
        ),
    ];

    let tetris_reference = mean_u64(
        &dags
            .iter()
            .map(|d| {
                TetrisScheduler::new()
                    .schedule(d, &spec)
                    .expect("fits")
                    .makespan()
            })
            .collect::<Vec<_>>(),
    );

    Outcome {
        rollout,
        backprop,
        budget,
        guidance,
        training: Vec::new(),
        tetris_reference,
    }
}

/// Renders one ablation group.
pub fn group_table(title: &str, variants: &[Variant]) -> Table {
    let mut t = Table::new(title, &["variant", "mean makespan", "mean s", "iterations"]);
    for v in variants {
        t.row(&[
            v.name.clone(),
            fmt_f(v.mean_makespan, 1),
            fmt_f(v.mean_seconds, 2),
            fmt_f(v.mean_iterations, 0),
        ]);
    }
    t
}

/// Renders all ablation tables.
pub fn tables(outcome: &Outcome) -> Vec<Table> {
    let mut out = vec![
        group_table(
            &format!(
                "Ablation — rollout policy (tetris reference {:.1})",
                outcome.tetris_reference
            ),
            &outcome.rollout,
        ),
        group_table(
            "Ablation — backpropagation (paper Eq. 5)",
            &outcome.backprop,
        ),
        group_table("Ablation — budget schedule (paper Eq. 4)", &outcome.budget),
        group_table(
            "Ablation — search guidance at equal budget",
            &outcome.guidance,
        ),
    ];
    if !outcome.training.is_empty() {
        out.push(group_table(
            "Ablation — guidance network training level (Spear budget)",
            &outcome.training,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_ablations_run() {
        let config = Config {
            num_dags: 2,
            tasks: 10,
            budget: (15, 4),
            seed: 2,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let net = PolicyNetwork::with_hidden(crate::policy::feature_config(), &[12], &mut rng);
        let mut outcome = run(&config, net.clone());
        assert_eq!(outcome.rollout.len(), 2);
        assert_eq!(outcome.backprop.len(), 2);
        assert_eq!(outcome.budget.len(), 2);
        assert_eq!(outcome.guidance.len(), 3);
        assert!(outcome.tetris_reference > 0.0);
        assert_eq!(tables(&outcome).len(), 4);
        outcome.training = run_training_levels(&config, net, 7);
        assert_eq!(outcome.training.len(), 2);
        assert_eq!(tables(&outcome).len(), 5);
        // Flat budget must spend at least as many iterations as decayed.
        assert!(outcome.budget[1].mean_iterations >= outcome.budget[0].mean_iterations);
    }
}
