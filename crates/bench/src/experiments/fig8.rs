//! Fig. 8(a): Spear at a *tenth* of the budget matches pure MCTS, and
//! Fig. 8(b): the DRL learning curve.
//!
//! Paper Fig. 8(a): 10 DAGs × 100 tasks; MCTS budget 1000 vs Spear budget
//! 100; averages MCTS 810.8, Spear 816.7, Tetris 843.9, SJF 884.5,
//! CP 837.9; Spear's runtime ≈ MCTS's / 6.
//!
//! Paper Fig. 8(b): 144 examples × 25 tasks, 20 rollouts per example;
//! mean makespan falls with epochs and crosses Tetris/SJF around epoch
//! 900 (with the paper's 1e-4 learning rate; our scaled run crosses
//! earlier — see DESIGN.md §3).

use serde::{Deserialize, Serialize};
use spear::rl::TrainingCurvePoint;
use spear::{
    CpScheduler, Dag, MctsConfig, MctsScheduler, PolicyNetwork, Scheduler, SjfScheduler,
    TetrisScheduler,
};

use crate::report::{fmt_f, Table};
use crate::workload::{self, mean_f64, mean_u64};
use crate::{policy, Scale};

/// Fig. 8(a) parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random DAGs.
    pub num_dags: usize,
    /// Tasks per DAG.
    pub tasks: usize,
    /// Pure MCTS budget (paper: 1000/100).
    pub mcts_budget: (u64, u64),
    /// Spear budget (paper: 100/20) — a tenth of MCTS.
    pub spear_budget: (u64, u64),
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Config {
                num_dags: 10,
                tasks: 100,
                mcts_budget: (1000, 100),
                spear_budget: (100, 20),
                seed: 99,
            },
            Scale::Quick => Config {
                num_dags: 5,
                tasks: 60,
                mcts_budget: (400, 40),
                spear_budget: (40, 8),
                seed: 99,
            },
        }
    }
}

/// The Fig. 8(a) result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// Scheduler names in column order.
    pub schedulers: Vec<String>,
    /// Mean makespans.
    pub mean_makespan: Vec<f64>,
    /// Mean runtimes (seconds).
    pub mean_seconds: Vec<f64>,
    /// Spear's runtime advantage over MCTS (paper: ≈6×).
    pub mcts_over_spear_runtime: f64,
}

/// Runs Fig. 8(a): MCTS (full budget) vs Spear (tenth budget) vs the
/// greedy baselines.
pub fn run(config: &Config, trained: PolicyNetwork) -> Outcome {
    let spec = workload::cluster();
    let dags = workload::simulation_dags(config.num_dags, config.tasks, config.seed);

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MctsScheduler::pure(MctsConfig {
            initial_budget: config.mcts_budget.0,
            min_budget: config.mcts_budget.1,
            seed: config.seed,
            ..MctsConfig::default()
        })),
        Box::new(MctsScheduler::drl(
            MctsConfig {
                initial_budget: config.spear_budget.0,
                min_budget: config.spear_budget.1,
                seed: config.seed,
                ..MctsConfig::default()
            },
            trained,
        )),
        Box::new(TetrisScheduler::new()),
        Box::new(SjfScheduler::new()),
        Box::new(CpScheduler::new()),
    ];
    let names: Vec<String> = schedulers.iter().map(|s| s.name().to_owned()).collect();

    let mut makespans: Vec<Vec<u64>> = vec![Vec::new(); schedulers.len()];
    let mut seconds: Vec<Vec<f64>> = vec![Vec::new(); schedulers.len()];
    for (i, dag) in dags.iter().enumerate() {
        for (c, s) in schedulers.iter_mut().enumerate() {
            let start = std::time::Instant::now();
            let schedule = s.schedule(dag, &spec).expect("fits");
            seconds[c].push(start.elapsed().as_secs_f64());
            makespans[c].push(schedule.makespan());
        }
        eprintln!(
            "[fig8a] dag {i}: {}",
            names
                .iter()
                .zip(&makespans)
                .map(|(n, m)| format!("{n}={}", m[i]))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    let mean_makespan: Vec<f64> = makespans.iter().map(|m| mean_u64(m)).collect();
    let mean_seconds: Vec<f64> = seconds.iter().map(|s| mean_f64(s)).collect();
    let ratio = mean_seconds[0] / mean_seconds[1].max(1e-9);
    Outcome {
        schedulers: names,
        mean_makespan,
        mean_seconds,
        mcts_over_spear_runtime: ratio,
    }
}

/// Renders the Fig. 8(a) table.
pub fn table(outcome: &Outcome, config: &Config) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 8(a) — MCTS (budget {}) vs Spear (budget {}) vs baselines (paper avg: 810.8 / 816.7 / 843.9 / 884.5 / 837.9; Spear ≈6× faster than MCTS — here {:.1}×)",
            config.mcts_budget.0, config.spear_budget.0, outcome.mcts_over_spear_runtime
        ),
        &["scheduler", "mean makespan", "mean s"],
    );
    for (i, name) in outcome.schedulers.iter().enumerate() {
        t.row(&[
            name.clone(),
            fmt_f(outcome.mean_makespan[i], 1),
            fmt_f(outcome.mean_seconds[i], 3),
        ]);
    }
    t
}

/// Fig. 8(b): the learning curve plus the Tetris/SJF reference lines
/// computed on the training examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurveOutcome {
    /// Epoch-by-epoch mean makespan / entropy.
    pub curve: Vec<TrainingCurvePoint>,
    /// Tetris's mean makespan on the training examples.
    pub tetris_reference: f64,
    /// SJF's mean makespan on the training examples.
    pub sjf_reference: f64,
    /// CP's (the pre-training expert's) mean makespan.
    pub cp_reference: f64,
    /// First epoch whose mean makespan beats Tetris, if any.
    pub crosses_tetris_at: Option<usize>,
}

/// Runs Fig. 8(b): the curve pipeline (minimal pre-training so the
/// descent across the references is visible) with baseline references on
/// the same examples.
pub fn run_curve(scale: Scale) -> CurveOutcome {
    let spec = workload::cluster();
    let trained = policy::train_curve(scale, &spec);
    curve_outcome(trained.curve, &trained.examples)
}

/// Assembles the curve outcome from a training curve and its examples.
pub fn curve_outcome(curve: Vec<TrainingCurvePoint>, examples: &[Dag]) -> CurveOutcome {
    let spec = workload::cluster();
    let reference = |s: &mut dyn Scheduler| {
        mean_u64(
            &examples
                .iter()
                .map(|d| s.schedule(d, &spec).expect("fits").makespan())
                .collect::<Vec<_>>(),
        )
    };
    let tetris_reference = reference(&mut TetrisScheduler::new());
    let sjf_reference = reference(&mut SjfScheduler::new());
    let cp_reference = reference(&mut CpScheduler::new());
    let crosses_tetris_at = curve
        .iter()
        .find(|p| p.mean_makespan < tetris_reference)
        .map(|p| p.epoch);
    CurveOutcome {
        curve,
        tetris_reference,
        sjf_reference,
        cp_reference,
        crosses_tetris_at,
    }
}

/// Renders the Fig. 8(b) learning-curve table (subsampled).
pub fn curve_table(outcome: &CurveOutcome) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 8(b) — DRL learning curve (references: tetris {:.1}, sjf {:.1}, cp {:.1}; crosses tetris at epoch {:?})",
            outcome.tetris_reference, outcome.sjf_reference, outcome.cp_reference,
            outcome.crosses_tetris_at
        ),
        &["epoch", "mean makespan", "entropy"],
    );
    let stride = (outcome.curve.len() / 20).max(1);
    for p in outcome.curve.iter().step_by(stride) {
        t.row(&[
            p.epoch.to_string(),
            fmt_f(p.mean_makespan, 1),
            fmt_f(p.mean_entropy, 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_fig8a_runs() {
        let config = Config {
            num_dags: 2,
            tasks: 12,
            mcts_budget: (30, 6),
            spear_budget: (10, 3),
            seed: 5,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let net = PolicyNetwork::with_hidden(policy::feature_config(), &[12], &mut rng);
        let outcome = run(&config, net);
        assert_eq!(outcome.schedulers, ["mcts", "spear", "tetris", "sjf", "cp"]);
        assert!(outcome.mcts_over_spear_runtime > 0.0);
        assert_eq!(table(&outcome, &config).len(), 5);
    }

    #[test]
    fn curve_outcome_references() {
        use spear::dag::generator::LayeredDagSpec;
        let dags: Vec<Dag> = (0..2)
            .map(|s| {
                LayeredDagSpec {
                    num_tasks: 10,
                    ..LayeredDagSpec::paper_training()
                }
                .generate(&mut StdRng::seed_from_u64(s))
            })
            .collect();
        let curve = vec![
            TrainingCurvePoint {
                epoch: 0,
                mean_makespan: 1000.0,
                mean_entropy: 1.0,
            },
            TrainingCurvePoint {
                epoch: 1,
                mean_makespan: 1.0,
                mean_entropy: 0.5,
            },
        ];
        let outcome = curve_outcome(curve, &dags);
        assert!(outcome.tetris_reference > 0.0);
        assert_eq!(outcome.crosses_tetris_at, Some(1));
        assert_eq!(curve_table(&outcome).len(), 2);
    }
}
