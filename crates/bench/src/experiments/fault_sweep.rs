//! Fault sweep: the full scheduler roster under seeded failure/straggler
//! injection at execution time (EXPERIMENTS.md fault matrix).
//!
//! Every scheduler plans the same seeded multi-job arrival stream
//! **fault-free** — the fault model never touches the planner, so all ten
//! roster members run unchanged — then the one plan is executed under
//! deterministic fault plans at rates 0–20% (failure *and* straggler
//! probability, 1.5× slowdown, 3-retry budget). Reported per
//! (scheduler, rate): the realized makespan, the slowdown over the
//! fault-free execution of the same plan, fault counters, and the
//! realized mean JCT. A task exhausting its retry budget is recorded as
//! such — it is deterministic in the seeds, like every other cell.

use serde::{Deserialize, Serialize};
use spear::dag::generator::LayeredDagSpec;
use spear::diffcheck::SchedulerKind;
use spear::{
    execute_multi_under_faults, ArrivalProcess, ArrivalStreamSpec, ClusterError, FaultProfile,
    JobQueue, JobSource, Scheduler, SpearError,
};

use crate::report::{fmt_f, Table};
use crate::workload;
use crate::Scale;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Jobs in the arrival stream.
    pub jobs: usize,
    /// Tasks per job DAG.
    pub tasks_per_job: usize,
    /// Mean Poisson inter-arrival gap.
    pub mean_gap: f64,
    /// Fault rates swept (0.0 first — it is the slowdown baseline).
    pub rates: Vec<f64>,
    /// Straggler occupancy multiplier.
    pub straggler_factor: f64,
    /// Retry budget per task.
    pub max_retries: u32,
    /// Seed for the stream, the schedulers, and the fault plans.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults; both scales sweep the same rates.
    pub fn for_scale(scale: Scale) -> Self {
        let base = Config {
            jobs: 6,
            tasks_per_job: 8,
            mean_gap: 6.0,
            rates: vec![0.0, 0.01, 0.05, 0.10, 0.20],
            straggler_factor: 1.5,
            max_retries: 3,
            seed: 17,
        };
        match scale {
            Scale::Quick => base,
            Scale::Paper => Config {
                jobs: 20,
                tasks_per_job: 14,
                mean_gap: 8.0,
                ..base
            },
        }
    }
}

/// One (scheduler, rate) cell. A `None` realized makespan means the
/// rate's plan exhausted a task's retry budget — the episode failed
/// fast, deterministically in the seeds — and `exhausted_task` names the
/// culprit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Scheduler name ([`SchedulerKind::name`]).
    pub scheduler: String,
    /// Fault rate of this cell.
    pub rate: f64,
    /// Makespan of the fault-free *plan* (identical across the row).
    pub planned_makespan: u64,
    /// Realized makespan of the faulty execution (`None` on exhaustion).
    pub realized_makespan: Option<u64>,
    /// Realized over the fault-free realized makespan of the same plan
    /// (1.0 at rate 0 by construction; `None` on exhaustion).
    pub slowdown: Option<f64>,
    /// Failed attempts injected before completion or exhaustion.
    pub failures: u64,
    /// Straggling attempts injected.
    pub straggles: u64,
    /// Realized mean JCT (`None` if no job completed or on exhaustion).
    pub mean_jct: Option<f64>,
    /// Jobs left unfinished (0 for a completed horizon-free episode).
    pub unfinished: usize,
    /// Union-DAG index of the task that exhausted its retry budget.
    pub exhausted_task: Option<usize>,
}

/// The sweep, row-major (scheduler-major, rates inner).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Runs the sweep: one fault-free plan per scheduler, executed under
/// every rate's plan.
///
/// # Panics
///
/// Panics if a roster scheduler fails to plan the stream or execution
/// fails with anything but deterministic retry exhaustion.
pub fn run(config: &Config) -> Outcome {
    let spec = workload::cluster();
    let stream = ArrivalStreamSpec {
        jobs: config.jobs,
        process: ArrivalProcess::Poisson {
            mean_gap: config.mean_gap,
        },
        source: JobSource::Layered(LayeredDagSpec {
            num_tasks: config.tasks_per_job,
            ..LayeredDagSpec::paper_simulation()
        }),
    }
    .generate(config.seed)
    .expect("layered job source is total");
    let queue = JobQueue::new(stream).expect("generated stream forms a valid queue");
    let mut cells = Vec::new();
    for kind in SchedulerKind::ALL {
        let mut scheduler: Box<dyn Scheduler> = kind.build(config.seed, spec.dims());
        let planned = scheduler
            .schedule_multi(&queue, &spec)
            .expect("roster scheduler plans the stream");
        let mut baseline: Option<u64> = None;
        for &rate in &config.rates {
            let profile = if rate == 0.0 {
                FaultProfile::none()
            } else {
                FaultProfile {
                    straggler_factor: config.straggler_factor,
                    max_retries: config.max_retries,
                    ..FaultProfile::with_rate(rate)
                }
            };
            let plan = profile.plan(config.seed);
            let mut cell = Cell {
                scheduler: kind.name().to_owned(),
                rate,
                planned_makespan: planned.makespan(),
                realized_makespan: None,
                slowdown: None,
                failures: 0,
                straggles: 0,
                mean_jct: None,
                unfinished: 0,
                exhausted_task: None,
            };
            match execute_multi_under_faults(&queue, &spec, &planned, &plan, None) {
                Ok(faulty) => {
                    let realized = faulty.run.makespan;
                    if rate == 0.0 {
                        baseline = Some(realized);
                    }
                    cell.realized_makespan = Some(realized);
                    cell.slowdown =
                        Some(realized as f64 / baseline.unwrap_or(realized).max(1) as f64);
                    cell.failures = faulty.run.failures;
                    cell.straggles = faulty.run.straggles;
                    cell.mean_jct = faulty.report.mean_jct();
                    cell.unfinished = faulty.report.unfinished();
                }
                Err(SpearError::Cluster(ClusterError::RetriesExhausted { task, .. })) => {
                    cell.exhausted_task = Some(task.index());
                }
                Err(e) => panic!("fault execution failed for {}: {e}", kind.name()),
            }
            cells.push(cell);
        }
        eprintln!("[fault_sweep] {} done", kind.name());
    }
    Outcome { cells }
}

/// Renders the sweep: one row per scheduler, realized makespan per rate,
/// and the slowdown at the highest rate.
pub fn table(outcome: &Outcome, config: &Config) -> Table {
    let mut headers: Vec<String> = vec!["scheduler".into(), "planned".into()];
    for &rate in &config.rates {
        headers.push(format!("{:.0}%", 100.0 * rate));
    }
    let top = config.rates.last().copied().unwrap_or(0.0);
    headers.push(format!("slowdown@{:.0}%", 100.0 * top));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "Fault sweep — realized makespan, {} jobs x {} tasks, straggler {:.1}x, {} retries",
            config.jobs, config.tasks_per_job, config.straggler_factor, config.max_retries
        ),
        &header_refs,
    );
    for kind in SchedulerKind::ALL {
        let row_cells: Vec<&Cell> = outcome
            .cells
            .iter()
            .filter(|c| c.scheduler == kind.name())
            .collect();
        if row_cells.is_empty() {
            continue;
        }
        let mut row = vec![
            kind.name().to_owned(),
            row_cells[0].planned_makespan.to_string(),
        ];
        let mut top_slowdown = "n/a".to_owned();
        for cell in &row_cells {
            match (cell.realized_makespan, cell.exhausted_task) {
                (Some(realized), _) => {
                    row.push(realized.to_string());
                    if cell.rate == top {
                        top_slowdown = cell.slowdown.map_or("n/a".into(), |s| fmt_f(s, 2));
                    }
                }
                (None, Some(task)) => row.push(format!("exh(t{task})")),
                (None, None) => row.push("n/a".into()),
            }
        }
        row.push(top_slowdown);
        table.row(&row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_rate_zero_is_the_baseline() {
        let config = Config {
            jobs: 3,
            tasks_per_job: 5,
            rates: vec![0.0, 0.2],
            ..Config::for_scale(Scale::Quick)
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(
            serde_json::to_string(&a.cells).unwrap(),
            serde_json::to_string(&b.cells).unwrap()
        );
        for cell in a.cells.iter().filter(|c| c.rate == 0.0) {
            assert_eq!(cell.slowdown, Some(1.0), "{}", cell.scheduler);
            assert_eq!(
                (cell.failures, cell.straggles),
                (0, 0),
                "{}",
                cell.scheduler
            );
            assert_eq!(cell.exhausted_task, None, "{}", cell.scheduler);
        }
        let table = table(&a, &config);
        assert_eq!(table.len(), SchedulerKind::ALL.len());
    }
}
