//! Fig. 9: the trace-driven experiment. (a)/(b) characterize the trace
//! (task-count and runtime CDFs), (c) is the headline: the distribution
//! of makespan reduction of Spear over Graphene across the 99 jobs.
//!
//! Paper: Spear (budget 100, min 50) performs no worse than Graphene on
//! 90% of jobs and reduces the makespan by up to ≈20%.

use serde::{Deserialize, Serialize};
use spear::{
    Graphene, MctsConfig, MctsScheduler, PolicyNetwork, Scheduler, SyntheticTraceSpec, Trace,
    TraceStats,
};

use crate::report::{fmt_f, Table};
use crate::workload;
use crate::Scale;

/// Fig. 9(c) parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Jobs to schedule (paper: all 99).
    pub num_jobs: usize,
    /// Spear budget (paper: 100 / 50).
    pub spear_budget: (u64, u64),
    /// Trace generator seed.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Config {
                num_jobs: 99,
                spear_budget: (100, 50),
                seed: 2019,
            },
            Scale::Quick => Config {
                num_jobs: 30,
                spear_budget: (60, 20),
                seed: 2019,
            },
        }
    }
}

/// The trace used by all Fig. 9 parts for a given seed.
pub fn trace(seed: u64) -> Trace {
    SyntheticTraceSpec::paper().generate(seed)
}

/// Renders the Fig. 9(a) table: task-count CDF quantiles.
pub fn task_count_table(trace: &Trace) -> Table {
    let stats = TraceStats::compute(trace);
    let mut t = Table::new(
        format!(
            "Fig. 9(a) — tasks per stage over {} jobs (paper medians: 14 map / 17 reduce; maxima 29 / 38)",
            stats.jobs
        ),
        &["percentile", "map tasks", "reduce tasks"],
    );
    let map_cdf = TraceStats::map_count_cdf(trace);
    let reduce_cdf = TraceStats::reduce_count_cdf(trace);
    for pct in [10, 25, 50, 75, 90, 100] {
        let pick = |cdf: &[(f64, f64)]| {
            let idx = ((pct as f64 / 100.0) * cdf.len() as f64).ceil() as usize;
            cdf[idx.clamp(1, cdf.len()) - 1].0
        };
        t.row(&[
            format!("p{pct}"),
            fmt_f(pick(&map_cdf), 0),
            fmt_f(pick(&reduce_cdf), 0),
        ]);
    }
    t
}

/// Renders the Fig. 9(b) table: per-job mean runtime CDF quantiles.
pub fn runtime_table(trace: &Trace) -> Table {
    let stats = TraceStats::compute(trace);
    let mut t = Table::new(
        format!(
            "Fig. 9(b) — mean task runtimes (paper medians: map 73 s / reduce 32 s; here {:.0} / {:.0})",
            stats.median_map_runtime, stats.median_reduce_runtime
        ),
        &["percentile", "map runtime", "reduce runtime"],
    );
    let map_cdf = TraceStats::map_runtime_cdf(trace);
    let reduce_cdf = TraceStats::reduce_runtime_cdf(trace);
    for pct in [10, 25, 50, 75, 90, 100] {
        let pick = |cdf: &[(f64, f64)]| {
            let idx = ((pct as f64 / 100.0) * cdf.len() as f64).ceil() as usize;
            cdf[idx.clamp(1, cdf.len()) - 1].0
        };
        t.row(&[
            format!("p{pct}"),
            fmt_f(pick(&map_cdf), 1),
            fmt_f(pick(&reduce_cdf), 1),
        ]);
    }
    t
}

/// The Fig. 9(c) result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReductionOutcome {
    /// Per-job `(job id, graphene makespan, spear makespan, reduction)`.
    pub rows: Vec<(String, u64, u64, f64)>,
    /// Fraction of jobs where Spear is no worse than Graphene.
    pub no_worse: f64,
    /// Maximum reduction achieved.
    pub max_reduction: f64,
    /// Mean reduction.
    pub mean_reduction: f64,
}

/// Runs Fig. 9(c): Graphene vs Spear on every trace job, reporting the
/// relative makespan reduction `(graphene − spear) / graphene`.
pub fn run_reduction(config: &Config, policy: PolicyNetwork) -> ReductionOutcome {
    let spec = workload::cluster();
    let trace = trace(config.seed);
    let mut graphene = Graphene::new();
    let mut spear = MctsScheduler::drl(
        MctsConfig {
            initial_budget: config.spear_budget.0,
            min_budget: config.spear_budget.1,
            seed: config.seed,
            ..MctsConfig::default()
        },
        policy,
    );
    let mut rows = Vec::new();
    for (i, job) in trace.jobs.iter().take(config.num_jobs).enumerate() {
        let dag = job.to_dag().expect("trace job builds a DAG");
        let g = graphene.schedule(&dag, &spec).expect("fits").makespan();
        let s = spear.schedule(&dag, &spec).expect("fits").makespan();
        let reduction = (g as f64 - s as f64) / g as f64;
        if i % 10 == 0 {
            eprintln!(
                "[fig9c] job {i}: graphene {g} spear {s} ({:+.1}%)",
                100.0 * reduction
            );
        }
        rows.push((job.id.clone(), g, s, reduction));
    }
    let n = rows.len().max(1) as f64;
    let no_worse = rows.iter().filter(|r| r.3 >= 0.0).count() as f64 / n;
    let max_reduction = rows.iter().map(|r| r.3).fold(f64::NEG_INFINITY, f64::max);
    let mean_reduction = rows.iter().map(|r| r.3).sum::<f64>() / n;
    ReductionOutcome {
        rows,
        no_worse,
        max_reduction,
        mean_reduction,
    }
}

/// Renders the Fig. 9(c) table: the reduction distribution.
pub fn reduction_table(outcome: &ReductionOutcome) -> Table {
    let mut reductions: Vec<f64> = outcome.rows.iter().map(|r| r.3).collect();
    reductions.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut t = Table::new(
        format!(
            "Fig. 9(c) — reduction in job duration vs Graphene over {} jobs (no worse on {:.0}%, max {:.1}%, mean {:.1}%; paper: ≥0 on 90%, up to ≈20%)",
            outcome.rows.len(),
            100.0 * outcome.no_worse,
            100.0 * outcome.max_reduction,
            100.0 * outcome.mean_reduction,
        ),
        &["percentile", "reduction"],
    );
    for pct in [5, 10, 25, 50, 75, 90, 95, 100] {
        let idx = ((pct as f64 / 100.0) * reductions.len() as f64).ceil() as usize;
        let v = reductions[idx.clamp(1, reductions.len()) - 1];
        t.row(&[format!("p{pct}"), format!("{:+.1}%", 100.0 * v)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_tables_render() {
        let trace = trace(1);
        assert_eq!(task_count_table(&trace).len(), 6);
        assert_eq!(runtime_table(&trace).len(), 6);
    }

    #[test]
    fn tiny_reduction_runs() {
        let config = Config {
            num_jobs: 2,
            spear_budget: (10, 3),
            seed: 8,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let net = PolicyNetwork::with_hidden(policy::feature_config(), &[12], &mut rng);
        let outcome = run_reduction(&config, net);
        assert_eq!(outcome.rows.len(), 2);
        assert!((0.0..=1.0).contains(&outcome.no_worse));
        assert!(outcome.max_reduction <= 1.0);
        assert_eq!(reduction_table(&outcome).len(), 8);
    }
}
