//! The value-network extension experiment (beyond the paper; DESIGN.md):
//! does truncating Spear's rollouts with a learned value function recover
//! the wall-clock without giving up the quality?
//!
//! Variants at the same budget: full-rollout Spear (the paper), Spear
//! with value-truncated rollouts at several truncation depths, and a
//! no-learning control that truncates onto the analytic critical-path
//! bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use spear::rl::{train_value_network, ValueNetwork, ValueTrainConfig};
use spear::{MctsConfig, MctsScheduler, PolicyNetwork, Scheduler, TetrisScheduler};
use spear_mcts::{BoundEvaluator, DrlPolicy};

use crate::report::{fmt_f, Table};
use crate::workload::{self, mean_f64, mean_u64};
use crate::Scale;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of evaluation DAGs.
    pub num_dags: usize,
    /// Tasks per DAG.
    pub tasks: usize,
    /// Search budget for every variant.
    pub budget: (u64, u64),
    /// Rollout truncation depths to test.
    pub truncations: Vec<u64>,
    /// Value-network training jobs (generated separately from evaluation).
    pub train_dags: usize,
    /// Value-network training settings.
    pub train: ValueTrainConfig,
    /// Seed.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Config {
                num_dags: 6,
                tasks: 100,
                budget: (100, 20),
                truncations: vec![5, 15, 40],
                train_dags: 16,
                train: ValueTrainConfig {
                    episodes_per_dag: 6,
                    epochs: 25,
                    batch_size: 128,
                    learning_rate: 1e-3,
                },
                seed: 31,
            },
            Scale::Quick => Config {
                num_dags: 4,
                tasks: 50,
                budget: (60, 12),
                truncations: vec![4, 10],
                train_dags: 6,
                train: ValueTrainConfig {
                    episodes_per_dag: 4,
                    epochs: 15,
                    batch_size: 128,
                    learning_rate: 1e-3,
                },
                seed: 31,
            },
        }
    }
}

/// One variant's aggregate outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variant {
    /// Variant label.
    pub name: String,
    /// Mean makespan.
    pub mean_makespan: f64,
    /// Mean wall-clock seconds.
    pub mean_seconds: f64,
    /// Mean simulated rollout steps per job.
    pub mean_rollout_steps: f64,
}

/// The experiment outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// All variants, full-rollout Spear first.
    pub variants: Vec<Variant>,
    /// Tetris reference.
    pub tetris_reference: f64,
    /// Final value-regression loss.
    pub value_loss: f64,
}

fn measure(name: &str, mut s: MctsScheduler, dags: &[spear::Dag]) -> Variant {
    let spec = workload::cluster();
    let mut makespans = Vec::new();
    let mut seconds = Vec::new();
    let mut steps = Vec::new();
    for dag in dags {
        let (schedule, stats) = s.schedule_with_stats(dag, &spec).expect("fits");
        makespans.push(schedule.makespan());
        seconds.push(stats.elapsed_seconds);
        steps.push(stats.rollout_steps as f64);
    }
    let v = Variant {
        name: name.to_owned(),
        mean_makespan: mean_u64(&makespans),
        mean_seconds: mean_f64(&seconds),
        mean_rollout_steps: mean_f64(&steps),
    };
    eprintln!(
        "[value-ext] {}: makespan {:.1}, {:.2}s, {:.0} rollout steps",
        v.name, v.mean_makespan, v.mean_seconds, v.mean_rollout_steps
    );
    v
}

/// Runs the experiment: trains the value network against the given policy,
/// then compares truncated against full rollouts.
pub fn run(config: &Config, trained: PolicyNetwork) -> Outcome {
    let spec = workload::cluster();
    let eval_dags = workload::simulation_dags(config.num_dags, config.tasks, config.seed);
    // Train the value function on *different* jobs of the training size.
    let train_dags = workload::simulation_dags(config.train_dags, 25, config.seed ^ 0xabcd);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut value = ValueNetwork::new(trained.feature_config().clone(), &[64, 32], &mut rng);
    let mut policy_for_rollouts = trained.clone();
    let loss = train_value_network(
        &mut value,
        &mut policy_for_rollouts,
        &train_dags,
        &spec,
        &config.train,
        &mut rng,
    )
    .expect("value training");
    eprintln!(
        "[value-ext] value regression loss {:.4} -> {:.4}",
        loss.first().copied().unwrap_or(f64::NAN),
        loss.last().copied().unwrap_or(f64::NAN)
    );

    let base = MctsConfig {
        initial_budget: config.budget.0,
        min_budget: config.budget.1,
        seed: config.seed,
        ..MctsConfig::default()
    };
    let mut variants = vec![measure(
        "spear (full rollouts)",
        MctsScheduler::drl(base.clone(), trained.clone()),
        &eval_dags,
    )];
    for &k in &config.truncations {
        variants.push(measure(
            &format!("spear-value (truncate {k})"),
            MctsScheduler::drl_with_value(base.clone(), trained.clone(), value.clone(), k),
            &eval_dags,
        ));
    }
    // No-learning control: truncate onto the analytic bound.
    variants.push(measure(
        "spear-bound (truncate, analytic)",
        MctsScheduler::with_policy_and_evaluator(
            base.clone(),
            Box::new(DrlPolicy::new(trained)),
            Box::new(BoundEvaluator),
            *config.truncations.first().unwrap_or(&5),
            "spear-bound",
        ),
        &eval_dags,
    ));

    let tetris_reference = mean_u64(
        &eval_dags
            .iter()
            .map(|d| {
                TetrisScheduler::new()
                    .schedule(d, &spec)
                    .expect("fits")
                    .makespan()
            })
            .collect::<Vec<_>>(),
    );
    Outcome {
        variants,
        tetris_reference,
        value_loss: loss.last().copied().unwrap_or(f64::NAN),
    }
}

/// Renders the comparison table.
pub fn table(outcome: &Outcome) -> Table {
    let mut t = Table::new(
        format!(
            "Extension — value-truncated rollouts (tetris reference {:.1}, value loss {:.4})",
            outcome.tetris_reference, outcome.value_loss
        ),
        &["variant", "mean makespan", "mean s", "rollout steps"],
    );
    for v in &outcome.variants {
        t.row(&[
            v.name.clone(),
            fmt_f(v.mean_makespan, 1),
            fmt_f(v.mean_seconds, 2),
            fmt_f(v.mean_rollout_steps, 0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_value_extension_runs() {
        let config = Config {
            num_dags: 2,
            tasks: 10,
            budget: (12, 4),
            truncations: vec![3],
            train_dags: 2,
            train: ValueTrainConfig {
                episodes_per_dag: 2,
                epochs: 3,
                batch_size: 64,
                learning_rate: 1e-2,
            },
            seed: 5,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let net = PolicyNetwork::with_hidden(crate::policy::feature_config(), &[12], &mut rng);
        let outcome = run(&config, net);
        // full + 1 truncation + bound control.
        assert_eq!(outcome.variants.len(), 3);
        assert!(outcome.tetris_reference > 0.0);
        // Truncation reduces simulated steps.
        assert!(outcome.variants[1].mean_rollout_steps < outcome.variants[0].mean_rollout_steps);
        assert_eq!(table(&outcome).len(), 3);
    }
}
