//! Fig. 6(a): per-DAG makespans of Spear vs Graphene/Tetris/SJF/CP, and
//! Fig. 6(b): the corresponding scheduler runtimes.
//!
//! Paper setting: 10 random DAGs × 100 tasks, Spear budget 1000 (min
//! 100). Reported averages: Spear 820.1, Graphene 869.8, Tetris 890.2,
//! CP 849.0, SJF 896.6; Spear beats Graphene on 90% of DAGs; Spear's
//! median runtime ≈ Graphene's, Graphene's mean ≈ 2× Spear's.

use serde::{Deserialize, Serialize};
use spear::{
    CpScheduler, Graphene, MctsConfig, MctsScheduler, PolicyNetwork, Scheduler, SjfScheduler,
    TetrisScheduler,
};

use crate::report::{fmt_f, Table};
use crate::workload::{self, mean_f64, mean_u64, median_f64};
use crate::Scale;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random DAGs.
    pub num_dags: usize,
    /// Tasks per DAG.
    pub tasks: usize,
    /// Spear's initial / minimum budget.
    pub spear_budget: (u64, u64),
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults (paper: 10 × 100 tasks, budget 1000/100).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Config {
                num_dags: 10,
                tasks: 100,
                spear_budget: (1000, 100),
                seed: 42,
            },
            Scale::Quick => Config {
                num_dags: 6,
                tasks: 60,
                spear_budget: (200, 40),
                seed: 42,
            },
        }
    }
}

/// One DAG's outcomes: makespan and wall-clock per scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// DAG index.
    pub dag: usize,
    /// `(makespan, seconds)` per scheduler name.
    pub outcomes: Vec<(String, u64, f64)>,
}

/// The full experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// Per-DAG rows.
    pub rows: Vec<Row>,
    /// Scheduler names in column order.
    pub schedulers: Vec<String>,
    /// Mean makespan per scheduler.
    pub mean_makespan: Vec<f64>,
    /// Mean / median wall-clock seconds per scheduler.
    pub mean_seconds: Vec<f64>,
    /// Median wall-clock seconds per scheduler.
    pub median_seconds: Vec<f64>,
    /// Fraction of DAGs where Spear's makespan ≤ Graphene's.
    pub spear_beats_graphene: f64,
}

/// Runs Fig. 6: schedules every DAG with Spear (DRL-guided MCTS) and the
/// four baselines, recording makespans and wall-clock.
pub fn run(config: &Config, policy: PolicyNetwork) -> Outcome {
    let spec = workload::cluster();
    let dags = workload::simulation_dags(config.num_dags, config.tasks, config.seed);

    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MctsScheduler::drl(
            MctsConfig {
                initial_budget: config.spear_budget.0,
                min_budget: config.spear_budget.1,
                seed: config.seed,
                ..MctsConfig::default()
            },
            policy,
        )),
        Box::new(Graphene::new()),
        Box::new(TetrisScheduler::new()),
        Box::new(SjfScheduler::new()),
        Box::new(CpScheduler::new()),
    ];
    let names: Vec<String> = schedulers.iter().map(|s| s.name().to_owned()).collect();

    let mut rows = Vec::with_capacity(dags.len());
    for (i, dag) in dags.iter().enumerate() {
        let mut outcomes = Vec::with_capacity(schedulers.len());
        for s in &mut schedulers {
            let start = std::time::Instant::now();
            let schedule = s.schedule(dag, &spec).expect("workload fits the cluster");
            let secs = start.elapsed().as_secs_f64();
            schedule.validate(dag, &spec).expect("invalid schedule");
            outcomes.push((s.name().to_owned(), schedule.makespan(), secs));
        }
        eprintln!(
            "[fig6] dag {i}: {}",
            outcomes
                .iter()
                .map(|(n, m, _)| format!("{n}={m}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        rows.push(Row { dag: i, outcomes });
    }

    let mean_makespan: Vec<f64> = (0..names.len())
        .map(|c| mean_u64(&rows.iter().map(|r| r.outcomes[c].1).collect::<Vec<_>>()))
        .collect();
    let mean_seconds: Vec<f64> = (0..names.len())
        .map(|c| mean_f64(&rows.iter().map(|r| r.outcomes[c].2).collect::<Vec<_>>()))
        .collect();
    let median_seconds: Vec<f64> = (0..names.len())
        .map(|c| median_f64(&rows.iter().map(|r| r.outcomes[c].2).collect::<Vec<_>>()))
        .collect();
    let beats = rows
        .iter()
        .filter(|r| r.outcomes[0].1 <= r.outcomes[1].1)
        .count() as f64
        / rows.len().max(1) as f64;

    Outcome {
        rows,
        schedulers: names,
        mean_makespan,
        mean_seconds,
        median_seconds,
        spear_beats_graphene: beats,
    }
}

/// Renders the Fig. 6(a) makespan table.
pub fn makespan_table(outcome: &Outcome) -> Table {
    let mut headers: Vec<&str> = vec!["dag"];
    headers.extend(outcome.schedulers.iter().map(String::as_str));
    let mut t = Table::new(
        "Fig. 6(a) — makespans per DAG (paper avg: spear 820.1, graphene 869.8, tetris 890.2, cp 849.0, sjf 896.6)",
        &headers,
    );
    for row in &outcome.rows {
        let mut cells = vec![row.dag.to_string()];
        cells.extend(row.outcomes.iter().map(|(_, m, _)| m.to_string()));
        t.row(&cells);
    }
    let mut cells = vec!["mean".to_owned()];
    cells.extend(outcome.mean_makespan.iter().map(|m| fmt_f(*m, 1)));
    t.row(&cells);
    t
}

/// Renders the Fig. 6(b) runtime table.
pub fn runtime_table(outcome: &Outcome) -> Table {
    let mut t = Table::new(
        "Fig. 6(b) — scheduler runtime (paper: spear median ≈ graphene median; graphene mean ≈ 2× spear)",
        &["scheduler", "mean s", "median s"],
    );
    for (i, name) in outcome.schedulers.iter().enumerate() {
        t.row(&[
            name.clone(),
            fmt_f(outcome.mean_seconds[i], 3),
            fmt_f(outcome.median_seconds[i], 3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_fig6_runs() {
        let config = Config {
            num_dags: 2,
            tasks: 15,
            spear_budget: (20, 5),
            seed: 1,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let net = PolicyNetwork::with_hidden(policy::feature_config(), &[16], &mut rng);
        let outcome = run(&config, net);
        assert_eq!(outcome.rows.len(), 2);
        assert_eq!(outcome.schedulers[0], "spear");
        assert_eq!(outcome.schedulers.len(), 5);
        assert!(outcome.mean_makespan.iter().all(|&m| m > 0.0));
        assert!((0.0..=1.0).contains(&outcome.spear_beats_graphene));
        let t = makespan_table(&outcome);
        assert_eq!(t.len(), 3); // 2 dags + mean
        assert_eq!(runtime_table(&outcome).len(), 5);
    }
}
