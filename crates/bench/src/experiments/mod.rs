//! One module per paper table/figure, plus the design ablations.

pub mod ablations;
pub mod fault_sweep;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod value_ext;
