//! Table I: runtime of the MCTS-only approach across graph sizes and
//! budgets.
//!
//! Paper grid: graph sizes {50, 100} × budgets {500, 1000}, runtimes in
//! seconds on a 24-core GCE VM. Absolute numbers differ on this host;
//! the reproduced *shape* is the growth with both axes.

use serde::{Deserialize, Serialize};
use spear::{MctsConfig, MctsScheduler};

use crate::report::{fmt_f, Table};
use crate::workload::{self, mean_f64};
use crate::Scale;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Graph sizes (rows of the paper table: 50, 100).
    pub sizes: Vec<usize>,
    /// Initial budgets (columns: 500, 1000).
    pub budgets: Vec<u64>,
    /// DAGs averaged per cell.
    pub dags_per_cell: usize,
    /// Budget floor (paper's Fig. 7 setting: 5).
    pub min_budget: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Config {
                sizes: vec![50, 100],
                budgets: vec![500, 1000],
                dags_per_cell: 5,
                min_budget: 5,
                seed: 11,
            },
            Scale::Quick => Config {
                // Pure MCTS is cheap enough in Rust to keep the paper's
                // grid even at quick scale (fewer DAGs per cell).
                sizes: vec![50, 100],
                budgets: vec![500, 1000],
                dags_per_cell: 3,
                min_budget: 5,
                seed: 11,
            },
        }
    }
}

/// One grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Graph size (tasks).
    pub size: usize,
    /// Initial budget.
    pub budget: u64,
    /// Mean wall-clock seconds per job.
    pub seconds: f64,
    /// Mean MCTS iterations per job.
    pub iterations: f64,
}

/// The grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// All cells, row-major (size-major).
    pub cells: Vec<Cell>,
}

/// Runs the grid.
pub fn run(config: &Config) -> Outcome {
    let spec = workload::cluster();
    let mut cells = Vec::new();
    for &size in &config.sizes {
        let dags = workload::simulation_dags(config.dags_per_cell, size, config.seed);
        for &budget in &config.budgets {
            let mut seconds = Vec::new();
            let mut iterations = Vec::new();
            for (i, dag) in dags.iter().enumerate() {
                let (_, stats) = MctsScheduler::pure(MctsConfig {
                    initial_budget: budget,
                    min_budget: config.min_budget,
                    seed: i as u64,
                    ..MctsConfig::default()
                })
                .schedule_with_stats(dag, &spec)
                .expect("fits");
                seconds.push(stats.elapsed_seconds);
                iterations.push(stats.iterations as f64);
            }
            let cell = Cell {
                size,
                budget,
                seconds: mean_f64(&seconds),
                iterations: mean_f64(&iterations),
            };
            eprintln!(
                "[table1] size {} budget {}: {:.2}s, {:.0} iterations",
                cell.size, cell.budget, cell.seconds, cell.iterations
            );
            cells.push(cell);
        }
    }
    Outcome { cells }
}

/// Renders Table I.
pub fn table(outcome: &Outcome, config: &Config) -> Table {
    let mut headers = vec!["graph size".to_owned()];
    headers.extend(config.budgets.iter().map(|b| format!("budget {b} (s)")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table I — runtime of the MCTS-only approach (s); grows with both graph size and budget",
        &header_refs,
    );
    for &size in &config.sizes {
        let mut cells = vec![size.to_string()];
        for &budget in &config.budgets {
            let c = outcome
                .cells
                .iter()
                .find(|c| c.size == size && c.budget == budget)
                .expect("grid is complete");
            cells.push(fmt_f(c.seconds, 3));
        }
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_with_size_and_budget() {
        let config = Config {
            sizes: vec![10, 30],
            budgets: vec![20, 80],
            dags_per_cell: 2,
            min_budget: 4,
            seed: 0,
        };
        let outcome = run(&config);
        assert_eq!(outcome.cells.len(), 4);
        let get = |size, budget| {
            outcome
                .cells
                .iter()
                .find(|c| c.size == size && c.budget == budget)
                .unwrap()
        };
        // Iterations grow with budget at fixed size…
        assert!(get(30, 80).iterations > get(30, 20).iterations);
        // …and wall-clock grows with size at fixed budget.
        assert!(get(30, 80).seconds >= get(10, 80).seconds);
        assert_eq!(table(&outcome, &config).len(), 2);
    }
}
