//! Fig. 7(a): pure-MCTS makespan vs iteration budget, and Fig. 7(b): the
//! fraction of jobs where MCTS beats Tetris vs budget.
//!
//! Paper setting: 100 DAGs × 100 tasks, minimum budget 5; MCTS beats
//! Tetris on ≈56% of jobs at budget 600, 67% at 1000, 84% at 2200, and
//! loses the majority below budget 500.

use serde::{Deserialize, Serialize};
use spear::{MctsConfig, MctsScheduler, Scheduler, TetrisScheduler};

use crate::report::{fmt_f, Table};
use crate::workload::{self, mean_u64};
use crate::Scale;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random DAGs.
    pub num_dags: usize,
    /// Tasks per DAG.
    pub tasks: usize,
    /// Initial budgets to sweep.
    pub budgets: Vec<u64>,
    /// Budget floor (paper: 5).
    pub min_budget: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Config {
    /// Scale-dependent defaults (paper: 100 DAGs, budgets up to 2200).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Config {
                num_dags: 100,
                tasks: 100,
                budgets: vec![100, 300, 500, 600, 1000, 1500, 2200],
                min_budget: 5,
                seed: 7,
            },
            Scale::Quick => Config {
                num_dags: 10,
                tasks: 60,
                budgets: vec![25, 50, 100, 200, 400],
                min_budget: 5,
                seed: 7,
            },
        }
    }
}

/// One budget's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetPoint {
    /// Initial budget of the sweep point.
    pub budget: u64,
    /// Mean makespan over the DAGs (Fig. 7(a)).
    pub mean_makespan: f64,
    /// Fraction of DAGs where MCTS's makespan < Tetris's (Fig. 7(b)).
    pub beats_tetris: f64,
}

/// The sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Outcome {
    /// One point per budget.
    pub points: Vec<BudgetPoint>,
    /// Tetris's mean makespan on the same DAGs (the Fig. 7(a) reference).
    pub tetris_mean: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Outcome {
    let spec = workload::cluster();
    let dags = workload::simulation_dags(config.num_dags, config.tasks, config.seed);
    let tetris: Vec<u64> = dags
        .iter()
        .map(|d| {
            TetrisScheduler::new()
                .schedule(d, &spec)
                .expect("fits")
                .makespan()
        })
        .collect();

    let mut points = Vec::with_capacity(config.budgets.len());
    for &budget in &config.budgets {
        let mut makespans = Vec::with_capacity(dags.len());
        let mut wins = 0usize;
        for (i, dag) in dags.iter().enumerate() {
            let ms = MctsScheduler::pure(MctsConfig {
                initial_budget: budget,
                min_budget: config.min_budget,
                seed: config.seed ^ i as u64,
                ..MctsConfig::default()
            })
            .schedule(dag, &spec)
            .expect("fits")
            .makespan();
            if ms < tetris[i] {
                wins += 1;
            }
            makespans.push(ms);
        }
        let point = BudgetPoint {
            budget,
            mean_makespan: mean_u64(&makespans),
            beats_tetris: wins as f64 / dags.len() as f64,
        };
        eprintln!(
            "[fig7] budget {}: mean {:.1}, beats tetris {:.0}%",
            point.budget,
            point.mean_makespan,
            100.0 * point.beats_tetris
        );
        points.push(point);
    }
    Outcome {
        points,
        tetris_mean: mean_u64(&tetris),
    }
}

/// Renders Fig. 7(a): mean makespan vs budget.
pub fn makespan_table(outcome: &Outcome) -> Table {
    let mut t = Table::new(
        format!(
            "Fig. 7(a) — pure-MCTS mean makespan vs budget (tetris reference {:.1})",
            outcome.tetris_mean
        ),
        &["budget", "mean makespan"],
    );
    for p in &outcome.points {
        t.row(&[p.budget.to_string(), fmt_f(p.mean_makespan, 1)]);
    }
    t
}

/// Renders Fig. 7(b): % of jobs where MCTS beats Tetris.
pub fn winrate_table(outcome: &Outcome) -> Table {
    let mut t = Table::new(
        "Fig. 7(b) — % of jobs where MCTS beats Tetris (paper: 56% @600, 67% @1000, 84% @2200)",
        &["budget", "beats tetris"],
    );
    for p in &outcome.points {
        t.row(&[
            p.budget.to_string(),
            format!("{:.0}%", 100.0 * p.beats_tetris),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_and_points_are_ordered() {
        let outcome = run(&Config {
            num_dags: 3,
            tasks: 12,
            budgets: vec![10, 40],
            min_budget: 3,
            seed: 3,
        });
        assert_eq!(outcome.points.len(), 2);
        assert!(outcome.tetris_mean > 0.0);
        for p in &outcome.points {
            assert!((0.0..=1.0).contains(&p.beats_tetris));
            assert!(p.mean_makespan > 0.0);
        }
        assert_eq!(makespan_table(&outcome).len(), 2);
        assert_eq!(winrate_table(&outcome).len(), 2);
    }
}
