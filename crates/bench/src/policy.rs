//! Trained-policy management for the experiments.
//!
//! Several experiments need the trained DRL policy (Fig. 6(a), Fig. 8(a),
//! Fig. 9(c), ablations). Training is the most expensive step, so the
//! result is cached under `results/policy_<scale>.json` and reused across
//! binaries; delete the file to force retraining.

use spear::{
    train_policy, ClusterSpec, FeatureConfig, PolicyNetwork, TrainedPolicy, TrainingPipelineConfig,
};

use crate::{report, Scale};

/// The feature configuration every benchmark policy uses (the paper's).
pub fn feature_config() -> FeatureConfig {
    FeatureConfig::paper(2)
}

/// The training pipeline used at each scale. `Quick` trains a smaller
/// network on fewer examples/epochs (minutes); `Paper` uses the paper's
/// example counts with a reduced epoch count that converges under our
/// larger learning rate (see DESIGN.md §3 on the RMSProp substitution).
pub fn pipeline_config(scale: Scale) -> TrainingPipelineConfig {
    let mut config = match scale {
        Scale::Quick => TrainingPipelineConfig::fast(),
        Scale::Paper => {
            let mut c = TrainingPipelineConfig::paper();
            // 7000 epochs × 144 examples × 20 rollouts is ~10⁹ forward
            // passes — days on one core. The larger learning rate below
            // reaches the same Tetris/SJF crossover in ~2 orders of
            // magnitude fewer epochs (recorded in EXPERIMENTS.md).
            c.reinforce.epochs = 60;
            c.reinforce_alpha = 1e-3;
            c.num_examples = 48;
            c.hidden = Some(vec![128, 32, 32]);
            c
        }
    };
    config.features = feature_config();
    config
}

/// Returns the cached trained policy for `scale`, training and caching it
/// on first use.
pub fn obtain(scale: Scale, spec: &ClusterSpec) -> PolicyNetwork {
    let path = report::results_dir().join(format!("policy_{}.json", scale.tag()));
    if let Ok(file) = std::fs::File::open(&path) {
        if let Ok(net) = spear::nn::Mlp::load(std::io::BufReader::new(file)) {
            let cfg = feature_config();
            if net.config().input == cfg.input_dim() && net.config().output == cfg.action_dim() {
                eprintln!("[policy] reusing cached {}", path.display());
                return PolicyNetwork::from_parts(cfg, net);
            }
            eprintln!("[policy] cached network shape mismatch; retraining");
        }
    }
    eprintln!("[policy] training ({} scale)…", scale.tag());
    let trained = train(scale, spec);
    trained
        .policy
        .net()
        .save_to_path(&path)
        .expect("cannot cache trained policy");
    eprintln!("[policy] cached to {}", path.display());
    trained.policy
}

/// Runs the training pipeline for `scale` (no caching) and returns all
/// artifacts.
pub fn train(scale: Scale, spec: &ClusterSpec) -> TrainedPolicy {
    train_policy(&pipeline_config(scale), spec).expect("training pipeline failed")
}

/// The Fig. 8(b) variant of the pipeline: *minimal* pre-training, so the
/// plotted REINFORCE curve starts above the Tetris/SJF references and
/// visibly descends across them — the paper's Fig. 8(b) likewise starts
/// from a barely-initialized policy and crosses Tetris around epoch 900.
pub fn pipeline_config_curve(scale: Scale) -> TrainingPipelineConfig {
    let mut config = pipeline_config(scale);
    // No supervised warm-up for the *plotted* curve: the paper pretrains
    // because a random Theano policy yields "extremely long and
    // meaningless trajectories", but our masked action space guarantees
    // every rollout is a valid (work-conserving-or-better) schedule, so
    // REINFORCE can start from scratch — and the curve then starts at
    // random-policy quality, well above the Tetris reference, and its
    // descent across Tetris/SJF is visible as in the paper's figure.
    config.pretrain.epochs = 0;
    config.reinforce.epochs = match scale {
        Scale::Quick => 80,
        Scale::Paper => 250,
    };
    // A gentler learning rate than the cached-policy pipeline: with one
    // update per example per epoch, 1e-3 converges inside the first epoch
    // and the plotted descent collapses to a point; 2e-4 spreads it over
    // the first tenth of training (the paper's 1e-4 takes ~900 of 7000
    // epochs for the same crossing).
    config.reinforce_alpha = 2e-4;
    config
}

/// Runs the Fig. 8(b) curve pipeline (no caching).
pub fn train_curve(scale: Scale, spec: &ClusterSpec) -> TrainedPolicy {
    train_policy(&pipeline_config_curve(scale), spec).expect("training pipeline failed")
}
