//! Shared workload generation for the experiments.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::dag::generator::LayeredDagSpec;
use spear::{ClusterSpec, Dag};

/// The paper's simulation workload: `n` random DAGs of `tasks` tasks each
/// (width 2–5, normal runtimes/demands), deterministically from `seed`.
pub fn simulation_dags(n: usize, tasks: usize, seed: u64) -> Vec<Dag> {
    let spec = LayeredDagSpec {
        num_tasks: tasks,
        ..LayeredDagSpec::paper_simulation()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| spec.generate(&mut rng)).collect()
}

/// The evaluation cluster: unit CPU + memory, as in the motivating
/// example and the simulation section.
pub fn cluster() -> ClusterSpec {
    ClusterSpec::unit(2)
}

/// The degenerate heterogeneous cluster: one machine with exactly the
/// capacity of [`cluster`]. Schedules on it must be placement-for-
/// placement identical to the single-box spec (with machine column 0) —
/// the quick bench asserts its makespans against the same goldens.
pub fn degenerate_hetero_cluster() -> ClusterSpec {
    use spear::dag::ResourceVec;
    use spear::{MachineSet, TransferMode};
    let machines =
        MachineSet::uniform(1, ResourceVec::splat(2, 1.0), 1, TransferMode::Direct, 0, 1)
            .expect("a unit machine is a valid set");
    ClusterSpec::hetero(machines).expect("one unit machine is a valid cluster")
}

/// Mean of a slice of u64 makespans.
pub fn mean_u64(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<u64>() as f64 / values.len() as f64
}

/// Mean of a slice of f64 values.
pub fn mean_f64(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median of f64 values.
pub fn median_f64(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dags_are_deterministic_and_sized() {
        let a = simulation_dags(3, 40, 1);
        let b = simulation_dags(3, 40, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|d| d.len() == 40));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean_u64(&[2, 4]), 3.0);
        assert_eq!(mean_u64(&[]), 0.0);
        assert_eq!(mean_f64(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median_f64(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_f64(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
