//! Property tests for the environment layer: [`EpisodeDriver`] must be
//! bit-identical to the hand-rolled `legal_actions`/`apply` stepping loop
//! it replaced, for any DAG, any policy seed, and both checked and
//! trusted stepping.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spear::env::{DecisionPolicy, EnvContext, EpisodeDriver, SimEnv};
use spear::{Action, ClusterSpec, Dag, Schedule, SimState};
use spear_dag::generator::LayeredDagSpec;

fn random_dag(num_tasks: usize, seed: u64) -> Dag {
    LayeredDagSpec {
        num_tasks,
        min_width: 1,
        max_width: 4,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

/// Uniformly random over the legal actions — consumes exactly one RNG
/// draw per decision, so the driver and the hand-rolled loop see the same
/// stream when seeded identically.
struct UniformPolicy;

impl DecisionPolicy<StdRng> for UniformPolicy {
    fn decide(
        &mut self,
        _ctx: &EnvContext<'_>,
        _state: &SimState,
        legal: &[Action],
        rng: &mut StdRng,
    ) -> Action {
        legal[rng.gen_range(0..legal.len())]
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

/// The pre-Env stepping loop, verbatim: enumerate, decide, apply.
fn hand_rolled(dag: &Dag, spec: &ClusterSpec, seed: u64) -> Schedule {
    let mut state = SimState::new(dag, spec).expect("dag fits cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut legal = Vec::new();
    while !state.is_terminal(dag) {
        state.legal_actions_into(dag, &mut legal);
        let action = legal[rng.gen_range(0..legal.len())];
        state.apply(dag, action).expect("legal actions never fail");
    }
    state.into_schedule(dag)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `EpisodeDriver::run` (checked stepping) produces the bit-identical
    /// schedule of the hand-rolled loop.
    #[test]
    fn driver_matches_hand_rolled_loop(
        num_tasks in 1usize..40,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let driven = EpisodeDriver::new(UniformPolicy)
            .run(&dag, &spec, &mut StdRng::seed_from_u64(policy_seed))
            .expect("driver completes the episode");
        let manual = hand_rolled(&dag, &spec, policy_seed);
        prop_assert_eq!(driven, manual);
    }

    /// Trusted stepping (the MCTS hot path) agrees with checked stepping
    /// action for action.
    #[test]
    fn trusted_stepping_matches_checked(
        num_tasks in 1usize..30,
        dag_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut env = SimEnv::new(&dag, &spec).expect("dag fits cluster");
        let mut driver = EpisodeDriver::new(UniformPolicy);
        let outcome = driver.drive_trusted(
            &mut env,
            &mut StdRng::seed_from_u64(policy_seed),
            u64::MAX,
        );
        prop_assert!(outcome.is_terminal());
        let trusted = env.into_schedule().expect("terminal episode");
        let manual = hand_rolled(&dag, &spec, policy_seed);
        prop_assert_eq!(trusted, manual);
    }
}
