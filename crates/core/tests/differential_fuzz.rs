//! Differential schedule fuzzing (tier-1 slice).
//!
//! Runs a seeded `LayeredDagSpec` × scheduler-roster corpus through the
//! three-way checker of [`spear::diffcheck`] and verifies every committed
//! regression fixture under `tests/fixtures/`. The CI fuzz job
//! (`fuzz_differential` in `spear-bench`) runs the same harness over a
//! much larger corpus in release; this debug slice keeps the harness
//! itself honest on every `cargo test` — with the invariant auditor on,
//! since debug builds audit all `EpisodeDriver` episodes.

use std::fs;
use std::path::PathBuf;

use spear::diffcheck::{corpus, shrink_dag, CaseSpec, Fixture, SchedulerKind};
use spear::Scheduler;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

/// The tier-1 corpus: small but crossing the full roster, both plain and
/// epsilon-jittered. The CI job runs ≥ 200 cases; this slice must stay
/// fast enough for debug builds.
#[test]
fn seeded_corpus_has_no_three_way_disagreements() {
    let mut failures = Vec::new();
    for case in corpus(32, 0xD1FF) {
        match case.run() {
            Ok(tri) if tri.all_ok() => {}
            Ok(tri) => failures.push(format!("{}: {}", case.label(), tri.summary())),
            Err(e) => failures.push(format!("{}: {e}", case.label())),
        }
    }
    assert!(
        failures.is_empty(),
        "differential failures:\n{}",
        failures.join("\n")
    );
}

/// Every committed fixture must (a) parse, (b) re-run its scheduler, and
/// (c) now pass all three judges — a fixture that fails again means a
/// fixed bug regressed.
#[test]
fn committed_fixtures_all_pass_three_ways() {
    let dir = fixtures_dir();
    let mut seen = 0;
    for entry in fs::read_dir(&dir).expect("tests/fixtures must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        seen += 1;
        let raw = fs::read_to_string(&path).unwrap();
        let fixture =
            Fixture::from_json(&raw).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let tri = fixture.verify();
        assert!(
            tri.all_ok(),
            "fixture {} regressed: {}",
            fixture.name,
            tri.summary()
        );
    }
    assert!(seen >= 1, "no fixtures found in {}", dir.display());
}

/// The epsilon-admission region specifically: jittered demands across many
/// seeds on the cheap schedulers, where the drift bug used to live.
#[test]
fn epsilon_boundary_sweep_stays_consistent() {
    let mut failures = Vec::new();
    for seed in 0..12u64 {
        for scheduler in [SchedulerKind::Tetris, SchedulerKind::Sjf, SchedulerKind::Cp] {
            let case = CaseSpec {
                seed,
                num_tasks: 14,
                dims: 1,
                scheduler,
                epsilon_jitter: true,
            };
            match case.run() {
                Ok(tri) if tri.all_ok() => {}
                Ok(tri) => failures.push(format!("{}: {}", case.label(), tri.summary())),
                Err(e) => failures.push(format!("{}: {e}", case.label())),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "epsilon sweep failures:\n{}",
        failures.join("\n")
    );
}

/// The MCTS sub-matrix (pure + DRL, cache on/off): every variant must
/// pass all three judges, and the inference cache must be a pure
/// optimization — cache-on and cache-off schedules are bit-identical.
#[test]
fn mcts_matrix_passes_three_ways_and_cache_is_transparent() {
    let pairs = [
        (SchedulerKind::MctsPure, SchedulerKind::MctsPureNoCache),
        (SchedulerKind::MctsDrl, SchedulerKind::MctsDrlNoCache),
    ];
    for (cached, uncached) in pairs {
        for seed in [3u64, 19] {
            let mk = |scheduler| CaseSpec {
                seed,
                num_tasks: 12,
                dims: 2,
                scheduler,
                epsilon_jitter: false,
            };
            for case in [mk(cached), mk(uncached)] {
                let tri = case.run().unwrap();
                assert!(tri.all_ok(), "{}: {}", case.label(), tri.summary());
            }
            let case = mk(cached);
            let (dag, spec) = (case.dag(), case.cluster());
            let on = cached.build(seed, 2).schedule(&dag, &spec).unwrap();
            let off = uncached.build(seed, 2).schedule(&dag, &spec).unwrap();
            assert_eq!(
                on,
                off,
                "cache changed the {} schedule at seed {seed}",
                cached.name()
            );
        }
    }
}

/// End-to-end shrink: a synthetic failure predicate minimizes to a small
/// witness that still round-trips through the fixture format.
#[test]
fn shrunk_witness_round_trips_as_fixture() {
    let case = CaseSpec {
        seed: 5,
        num_tasks: 20,
        dims: 2,
        scheduler: SchedulerKind::Tetris,
        epsilon_jitter: false,
    };
    let dag = case.dag();
    // Synthetic "bug": the DAG contains an edge (shrinks to 2 tasks).
    let small = shrink_dag(&dag, |d| !d.edges().is_empty());
    assert!(small.len() <= 3, "shrunk to {} tasks", small.len());
    assert!(!small.edges().is_empty());
    let fixture = Fixture::from_parts(
        "shrunk-witness",
        "synthetic shrink round-trip",
        case.scheduler,
        case.seed,
        &small,
        &case.cluster(),
    );
    let parsed = Fixture::from_json(&fixture.to_json()).unwrap();
    assert_eq!(parsed.dag().len(), small.len());
    assert_eq!(parsed.dag().edges(), small.edges());
}
