//! Corpus-level schedule-quality bound for fast-precision inference.
//!
//! The `f32` inference engine is validated at the kernel level by
//! tolerance proptests in `spear-nn`; this suite closes the loop at the
//! *schedule* level: over a seeded DAG corpus, a DRL-guided search run
//! in `Precision::Fast` must (a) produce schedules that pass all three
//! differential judges, and (b) land within a documented makespan band
//! of the `Precision::Exact` run of the same search.
//!
//! The band is deliberately symmetric — an untrained policy gives
//! neither mode a quality edge, so a fast-mode makespan either much
//! better *or* much worse than exact would equally signal a numerics
//! bug. The full benchmark corpus (`bench_hotpath`) currently measures
//! a ratio of exactly 1.0; the bound here leaves headroom for argmax
//! flips inside the `f32` tolerance band.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear::diffcheck::{check_schedule, CaseSpec, SchedulerKind};
use spear::nn::Precision;
use spear::{FeatureConfig, MctsConfig, MctsScheduler, PolicyNetwork, Scheduler};

/// Documented makespan-quality band: fast and exact makespans must stay
/// within 5% of each other on every corpus case.
const MAKESPAN_BAND: f64 = 1.05;

fn drl_case(seed: u64, num_tasks: usize) -> CaseSpec {
    CaseSpec {
        seed,
        num_tasks,
        dims: 2,
        scheduler: SchedulerKind::MctsDrl,
        epsilon_jitter: false,
    }
}

/// A DRL scheduler at the requested precision. Everything except
/// `nn_precision` — policy weights, search seed, budgets — is identical
/// across the two modes, so makespan differences isolate the numerics.
fn scheduler(
    seed: u64,
    cfg: FeatureConfig,
    hidden: &[usize],
    precision: Precision,
) -> MctsScheduler {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let policy = PolicyNetwork::with_hidden(cfg, hidden, &mut rng);
    MctsScheduler::drl(
        MctsConfig {
            initial_budget: 16,
            min_budget: 4,
            seed,
            nn_precision: precision,
            ..MctsConfig::default()
        },
        policy,
    )
}

fn run_case(case: CaseSpec, cfg: FeatureConfig, hidden: &[usize], failures: &mut Vec<String>) {
    let dag = case.dag();
    let spec = case.cluster();
    let mut pair = Vec::new();
    for precision in [Precision::Exact, Precision::Fast] {
        let mut sched = scheduler(case.seed, cfg.clone(), hidden, precision);
        match sched.schedule(&dag, &spec) {
            Ok(schedule) => {
                let tri = check_schedule(&dag, &spec, &schedule);
                if !tri.all_ok() {
                    failures.push(format!(
                        "{} [{precision}]: judges rejected: {}",
                        case.label(),
                        tri.summary()
                    ));
                }
                pair.push(schedule.makespan());
            }
            Err(e) => failures.push(format!("{} [{precision}]: {e}", case.label())),
        }
    }
    if let [exact, fast] = pair[..] {
        let ratio = fast as f64 / exact as f64;
        if !(1.0 / MAKESPAN_BAND..=MAKESPAN_BAND).contains(&ratio) {
            failures.push(format!(
                "{}: fast makespan {fast} vs exact {exact} (ratio {ratio:.3}) outside band",
                case.label()
            ));
        }
    }
}

/// The corpus slice: small paper-training DAGs across seeds, judged and
/// band-checked in both precisions. Small nets keep the debug-build
/// slice fast; the paper-shaped case below covers the real layer widths.
#[test]
fn fast_precision_corpus_stays_within_quality_band() {
    let mut failures = Vec::new();
    for seed in 0..8u64 {
        let num_tasks = 10 + (seed as usize % 3) * 3;
        run_case(
            drl_case(seed, num_tasks),
            FeatureConfig::small(2),
            &[16],
            &mut failures,
        );
    }
    assert!(
        failures.is_empty(),
        "fast-precision quality failures:\n{}",
        failures.join("\n")
    );
}

/// One case at the full paper architecture (163 → 256 → 32 → 32 → 16),
/// exercising both the wide generic kernel and the register-resident
/// fixed-width kernels end to end.
#[test]
fn fast_precision_paper_architecture_case() {
    let mut failures = Vec::new();
    run_case(
        drl_case(42, 12),
        FeatureConfig::paper(2),
        &[256, 32, 32],
        &mut failures,
    );
    assert!(
        failures.is_empty(),
        "paper-architecture fast-precision failures:\n{}",
        failures.join("\n")
    );
}
