//! # Spear — dependency-aware task scheduling with MCTS + deep RL
//!
//! A from-scratch Rust reproduction of *"Spear: Optimized Dependency-Aware
//! Task Scheduling with Deep Reinforcement Learning"* (Hu, Tu, Li — ICDCS
//! 2019).
//!
//! Spear schedules the tasks of a DAG-structured job onto a cluster with
//! multi-dimensional resource capacities, minimizing the makespan. It runs
//! Monte Carlo Tree Search over the scheduling decisions and guides both
//! the expansion and the rollout steps with a trained deep-reinforcement-
//! learning policy, instead of the random policies of classic MCTS.
//!
//! This crate is the facade over the workspace:
//!
//! | concern | crate |
//! |---|---|
//! | DAG model, analyses, generators | [`spear_dag`] |
//! | cluster simulator + environment layer | [`spear_cluster`] |
//! | baselines (Tetris/SJF/CP/Graphene) | [`spear_sched`] |
//! | neural network | [`spear_nn`] |
//! | DRL agent + training | [`spear_rl`] |
//! | MCTS | [`spear_mcts`] |
//! | trace substrate | [`spear_trace`] |
//! | observability (metrics, exporters) | [`spear_obs`] |
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use spear::{SpearBuilder, Scheduler, ClusterSpec};
//! use spear::dag::generator::LayeredDagSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A random 25-task job with CPU+memory demands.
//! let dag = LayeredDagSpec::paper_training()
//!     .generate(&mut rand::rngs::StdRng::seed_from_u64(1));
//! let spec = ClusterSpec::unit(2);
//!
//! // Budget-100 Spear with an untrained policy (see `SpearBuilder::train`
//! // for the full pipeline).
//! let mut spear = SpearBuilder::new()
//!     .initial_budget(100)
//!     .min_budget(20)
//!     .seed(7)
//!     .build_untrained();
//! let schedule = spear.schedule(&dag, &spec)?;
//! schedule.validate(&dag, &spec)?;
//! assert!(schedule.makespan() >= dag.critical_path_length());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diffcheck;
pub mod fixtures;
mod pipeline;
mod spear;

pub use crate::spear::{SpearBuilder, SpearScheduler};
pub use pipeline::{train_policy, train_policy_observed, TrainedPolicy, TrainingPipelineConfig};

// Re-export the workspace crates under short names.
pub use spear_cluster as cluster;
pub use spear_dag as dag;
pub use spear_mcts as mcts;
pub use spear_nn as nn;
pub use spear_obs as obs;
pub use spear_rl as rl;
pub use spear_sched as sched;
pub use spear_trace as trace;

// The environment layer: unified episode stepping for every consumer.
pub use spear_cluster::env;

// The simulation invariant auditor (on by default in debug builds; the
// `audit` feature keeps it on in release).
pub use spear_cluster::audit;

// The most-used types at the top level.
pub use spear_cluster::env::{DecisionPolicy, Env, EnvContext, EpisodeDriver, MultiJobEnv, SimEnv};
pub use spear_cluster::{
    execute_multi_under_faults, execute_under_faults, execute_under_faults_audited, Action,
    AuditViolation, ClusterError, ClusterSpec, ErrorContext, FailedRun, FaultOutcome, FaultPlan,
    FaultyRun, InvariantAuditor, JctReport, JobCompletion, JobQueue, JobSpan, MachineSet,
    MultiFaultyRun, Placement, Schedule, SimState, SpearError, TransferMode,
};
pub use spear_dag::{Dag, DagBuilder, DagError, ResourceVec, Task, TaskId};
pub use spear_mcts::{MctsConfig, MctsScheduler, RootParallelMcts, SearchStats, TreeParallelMcts};
pub use spear_obs::{MetricsRegistry, MetricsSnapshot, Obs};
pub use spear_rl::{FeatureConfig, PolicyNetwork};
pub use spear_sched::{
    CpScheduler, Graphene, ObservedScheduler, RandomScheduler, Scheduler, SjfScheduler,
    TetrisScheduler,
};
pub use spear_trace::{
    ArrivalProcess, ArrivalStreamSpec, FaultProfile, JobSource, MachineProfile, SyntheticTraceSpec,
    Trace, TraceJob, TraceStats,
};
