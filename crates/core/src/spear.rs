//! The Spear scheduler and its builder.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear_cluster::{ClusterSpec, JobQueue, Schedule, SpearError};
use spear_dag::Dag;
use spear_mcts::{MctsConfig, MctsScheduler, SearchStats};
use spear_rl::{FeatureConfig, PolicyNetwork};
use spear_sched::Scheduler;

/// Builder for [`SpearScheduler`] (C-BUILDER): configures the MCTS budget,
/// exploration, and the policy network.
///
/// ```
/// use spear::SpearBuilder;
/// let spear = SpearBuilder::new()
///     .initial_budget(100)
///     .min_budget(50)
///     .exploration_coeff(0.5)
///     .seed(42)
///     .build_untrained();
/// ```
#[derive(Debug, Clone)]
pub struct SpearBuilder {
    mcts: MctsConfig,
    features: FeatureConfig,
    hidden: Option<Vec<usize>>,
}

impl SpearBuilder {
    /// Starts from the paper's Spear defaults: budget 100 (min 50) — the
    /// headline result is that DRL guidance needs only 10% of pure MCTS's
    /// budget — and the 20-slot / 15-ready-task featurization.
    pub fn new() -> Self {
        SpearBuilder {
            mcts: MctsConfig {
                initial_budget: 100,
                min_budget: 50,
                ..MctsConfig::default()
            },
            features: FeatureConfig::paper(2),
            hidden: None,
        }
    }

    /// Sets the iteration budget at the first decision.
    pub fn initial_budget(mut self, budget: u64) -> Self {
        self.mcts.initial_budget = budget;
        self
    }

    /// Sets the budget floor for deep decisions.
    pub fn min_budget(mut self, budget: u64) -> Self {
        self.mcts.min_budget = budget;
        self
    }

    /// Sets the exploration coefficient (multiplied by a greedy makespan
    /// estimate to form the UCB constant).
    pub fn exploration_coeff(mut self, coeff: f64) -> Self {
        self.mcts.exploration_coeff = coeff;
        self
    }

    /// Disables the per-depth budget decay (ablation).
    pub fn flat_budget(mut self) -> Self {
        self.mcts.decay_budget = false;
        self
    }

    /// Sets the RNG seed used by rollouts and network initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.mcts.seed = seed;
        self
    }

    /// Overrides the featurization shape (defaults to the paper's).
    pub fn feature_config(mut self, config: FeatureConfig) -> Self {
        self.features = config;
        self
    }

    /// Overrides the hidden-layer widths (defaults to the paper's
    /// 256/32/32).
    pub fn hidden_layers(mut self, hidden: &[usize]) -> Self {
        self.hidden = Some(hidden.to_vec());
        self
    }

    /// The configured MCTS parameters.
    pub fn mcts_config(&self) -> &MctsConfig {
        &self.mcts
    }

    /// Builds Spear around an already-trained policy network.
    ///
    /// # Panics
    ///
    /// Panics if the policy's feature configuration disagrees with the
    /// builder's.
    pub fn build_with_policy(self, policy: PolicyNetwork) -> SpearScheduler {
        assert_eq!(
            policy.feature_config(),
            &self.features,
            "policy featurization disagrees with the builder"
        );
        SpearScheduler {
            inner: MctsScheduler::drl(self.mcts, policy),
        }
    }

    /// Builds Spear with a freshly initialized (untrained) policy — useful
    /// for smoke tests and as the starting point of the training pipeline.
    pub fn build_untrained(self) -> SpearScheduler {
        let mut rng = StdRng::seed_from_u64(self.mcts.seed);
        let policy = match &self.hidden {
            Some(h) => PolicyNetwork::with_hidden(self.features.clone(), h, &mut rng),
            None => PolicyNetwork::new(self.features.clone(), &mut rng),
        };
        SpearScheduler {
            inner: MctsScheduler::drl(self.mcts, policy),
        }
    }

    /// Builds the pure-MCTS baseline (random expansion/rollout) with the
    /// same budget settings — the paper's "MCTS" comparator.
    pub fn build_pure_mcts(self) -> MctsScheduler {
        MctsScheduler::pure(self.mcts)
    }
}

impl Default for SpearBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The Spear scheduler: MCTS with DRL-guided expansion and rollout.
///
/// Construct via [`SpearBuilder`]. Implements
/// [`Scheduler`](spear_sched::Scheduler) like every baseline, plus
/// [`SpearScheduler::schedule_with_stats`] for the runtime experiments.
#[derive(Debug)]
pub struct SpearScheduler {
    inner: MctsScheduler,
}

impl SpearScheduler {
    /// Schedules and reports search statistics (tree size, iterations,
    /// wall-clock).
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if the DAG cannot run on the cluster.
    pub fn schedule_with_stats(
        &mut self,
        dag: &Dag,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        self.inner.schedule_with_stats(dag, spec)
    }

    /// Schedules a continuous-arrival job stream and reports search
    /// statistics (see
    /// [`MctsScheduler::schedule_multi_with_stats`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpearError`] if any job cannot run on the cluster.
    pub fn schedule_multi_with_stats(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<(Schedule, SearchStats), SpearError> {
        self.inner.schedule_multi_with_stats(queue, spec)
    }

    /// The MCTS configuration in use.
    pub fn config(&self) -> &MctsConfig {
        self.inner.config()
    }
}

impl Scheduler for SpearScheduler {
    fn name(&self) -> &str {
        "spear"
    }

    fn schedule(&mut self, dag: &Dag, spec: &ClusterSpec) -> Result<Schedule, SpearError> {
        self.inner.schedule(dag, spec)
    }

    fn schedule_multi(
        &mut self,
        queue: &JobQueue,
        spec: &ClusterSpec,
    ) -> Result<Schedule, SpearError> {
        self.inner.schedule_multi(queue, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_dag::generator::LayeredDagSpec;

    fn tiny_spear() -> SpearScheduler {
        SpearBuilder::new()
            .initial_budget(30)
            .min_budget(5)
            .feature_config(FeatureConfig::small(2))
            .hidden_layers(&[16])
            .seed(3)
            .build_untrained()
    }

    #[test]
    fn untrained_spear_schedules_validly() {
        let dag = LayeredDagSpec {
            num_tasks: 12,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(0));
        let spec = ClusterSpec::unit(2);
        let mut spear = tiny_spear();
        let (schedule, stats) = spear.schedule_with_stats(&dag, &spec).unwrap();
        schedule.validate(&dag, &spec).unwrap();
        assert!(stats.iterations > 0);
        assert_eq!(spear.name(), "spear");
    }

    #[test]
    fn builder_settings_propagate() {
        let b = SpearBuilder::new()
            .initial_budget(77)
            .min_budget(11)
            .exploration_coeff(0.25)
            .seed(9);
        assert_eq!(b.mcts_config().initial_budget, 77);
        assert_eq!(b.mcts_config().min_budget, 11);
        assert_eq!(b.mcts_config().exploration_coeff, 0.25);
        assert_eq!(b.mcts_config().seed, 9);
        let spear = b.build_untrained();
        assert_eq!(spear.config().initial_budget, 77);
    }

    #[test]
    fn pure_mcts_builder_matches_budget() {
        let mcts = SpearBuilder::new().initial_budget(50).build_pure_mcts();
        assert_eq!(mcts.config().initial_budget, 50);
        assert_eq!(mcts.name(), "mcts");
    }

    #[test]
    #[should_panic(expected = "policy featurization disagrees")]
    fn mismatched_policy_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let policy = PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut rng);
        // Builder defaults to the paper featurization: mismatch.
        let _ = SpearBuilder::new().build_with_policy(policy);
    }
}
