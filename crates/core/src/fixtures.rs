//! Hand-built example jobs, including a reconstruction of the paper's
//! motivating example (Fig. 3).

use spear_cluster::ClusterSpec;
use spear_dag::{Dag, DagBuilder, ResourceVec, Task, TaskId};

/// The task ids of [`motivating_dag`], named per the figure's roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotivatingTasks {
    /// The small gate task that must finish before the memory-heavy task
    /// becomes ready.
    pub gate: TaskId,
    /// The CPU-dominant long task.
    pub cpu_heavy: TaskId,
    /// The memory-dominant long task (child of `gate`).
    pub mem_heavy: TaskId,
    /// Two balanced long tasks that only pack with each other.
    pub balanced: [TaskId; 2],
    /// Three small filler tasks.
    pub fillers: [TaskId; 3],
}

/// A reconstruction of the paper's Fig. 3 motivating example: an 8-task
/// job on a unit `[CPU, memory]` cluster where only a scheduler that
/// *searches* (instead of committing greedily) reaches the optimal
/// makespan.
///
/// Construction (T = 10 time slots):
///
/// * `cpu_heavy` (runtime T, demand `[0.90, 0.05]`) and `mem_heavy`
///   (T, `[0.05, 0.90]`) fit **together** but not with the balanced tasks;
/// * `balanced[0..2]` (T, `[0.45, 0.45]` each) fit **only with each
///   other**;
/// * `mem_heavy` is gated behind `gate` (runtime T/2), so at time 0 a
///   greedy packer sees only `cpu_heavy` and the balanced pair — and the
///   alignment score (Tetris), runtime (SJF) and b-level (CP) all point at
///   the *wrong* choice;
/// * three tiny `fillers` pad the task count to the figure's eight.
///
/// The optimal schedule runs the balanced pair plus the gate first, then
/// the cpu/mem pair: makespan `2T`. Greedy baselines start `cpu_heavy` at
/// time 0, strand the balanced pair, and finish at `2.5T` — Spear's ≈20%
/// improvement.
///
/// ```
/// use spear::fixtures;
/// let (dag, spec, _) = fixtures::motivating_example();
/// assert_eq!(dag.len(), 8);
/// assert_eq!(fixtures::motivating_optimal_makespan(), 20);
/// ```
pub fn motivating_dag() -> (Dag, MotivatingTasks) {
    let mut b = DagBuilder::new(2);
    let tiny = ResourceVec::from_slice(&[0.02, 0.02]);
    let gate = b.add_task(Task::new(5, tiny.clone()).with_name("gate"));
    let cpu_heavy =
        b.add_task(Task::new(10, ResourceVec::from_slice(&[0.90, 0.05])).with_name("cpu-heavy"));
    let mem_heavy =
        b.add_task(Task::new(10, ResourceVec::from_slice(&[0.05, 0.90])).with_name("mem-heavy"));
    let balanced0 =
        b.add_task(Task::new(10, ResourceVec::from_slice(&[0.45, 0.45])).with_name("balanced-0"));
    let balanced1 =
        b.add_task(Task::new(10, ResourceVec::from_slice(&[0.45, 0.45])).with_name("balanced-1"));
    let fillers = [
        b.add_task(Task::new(5, tiny.clone()).with_name("filler-0")),
        b.add_task(Task::new(5, tiny.clone()).with_name("filler-1")),
        b.add_task(Task::new(5, tiny).with_name("filler-2")),
    ];
    b.add_edge(gate, mem_heavy)
        .expect("gate and mem_heavy exist");
    let dag = b.build().expect("fixture is a valid DAG");
    (
        dag,
        MotivatingTasks {
            gate,
            cpu_heavy,
            mem_heavy,
            balanced: [balanced0, balanced1],
            fillers,
        },
    )
}

/// The motivating DAG together with its unit cluster.
pub fn motivating_example() -> (Dag, ClusterSpec, MotivatingTasks) {
    let (dag, tasks) = motivating_dag();
    (dag, ClusterSpec::unit(2), tasks)
}

/// The optimal makespan of [`motivating_dag`] on the unit cluster: `2T`
/// (= 20 slots). Proof sketch: total CPU load ≥ 1.9·T, so 2T is a lower
/// bound given the pairing constraints; the schedule *balanced pair +
/// gate + fillers at 0, cpu/mem pair at T* achieves it.
pub fn motivating_optimal_makespan() -> u64 {
    20
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_cluster::{Action, SimState};

    #[test]
    fn fixture_shape() {
        let (dag, tasks) = motivating_dag();
        assert_eq!(dag.len(), 8);
        assert_eq!(dag.edges().len(), 1);
        assert_eq!(dag.parents(tasks.mem_heavy), &[tasks.gate]);
        assert_eq!(dag.task(tasks.cpu_heavy).runtime(), 10);
    }

    #[test]
    fn pairing_constraints_hold() {
        let (dag, tasks) = motivating_dag();
        let cap = ResourceVec::from_slice(&[1.0, 1.0]);
        let cpu = dag.task(tasks.cpu_heavy).demand();
        let mem = dag.task(tasks.mem_heavy).demand();
        let bal = dag.task(tasks.balanced[0]).demand();
        // cpu+mem fit; bal+bal fit; cpu+bal and mem+bal do not.
        assert!(cpu.add(mem).fits_within(&cap));
        assert!(bal.add(bal).fits_within(&cap));
        assert!(!cpu.add(bal).fits_within(&cap));
        assert!(!mem.add(bal).fits_within(&cap));
    }

    /// Manually drive the optimal schedule to verify the claimed optimum
    /// is achievable.
    #[test]
    fn optimal_schedule_is_achievable() {
        let (dag, spec, tasks) = motivating_example();
        let mut sim = SimState::new(&dag, &spec).unwrap();
        // t=0: balanced pair + gate + fillers.
        for t in [
            tasks.balanced[0],
            tasks.balanced[1],
            tasks.gate,
            tasks.fillers[0],
            tasks.fillers[1],
            tasks.fillers[2],
        ] {
            sim.apply(&dag, Action::Schedule(t)).unwrap();
        }
        // Process to t=5 (gate/fillers done), then to t=10 (balanced done).
        sim.apply(&dag, Action::Process).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.clock(), 10);
        // t=10: the cpu/mem pair co-runs.
        sim.apply(&dag, Action::Schedule(tasks.cpu_heavy)).unwrap();
        sim.apply(&dag, Action::Schedule(tasks.mem_heavy)).unwrap();
        sim.apply(&dag, Action::Process).unwrap();
        assert_eq!(sim.makespan(), Some(motivating_optimal_makespan()));
    }
}
