//! The end-to-end training pipeline: supervised pre-training on the CP
//! expert, then REINFORCE (paper §IV).

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear_cluster::{ClusterSpec, SpearError};
use spear_dag::generator::LayeredDagSpec;
use spear_dag::Dag;
use spear_nn::RmsProp;
use spear_rl::pretrain::{self, PretrainConfig};
use spear_rl::{
    FeatureConfig, PolicyNetwork, ReinforceConfig, ReinforceTrainer, TrainingCurvePoint,
};

/// Configuration of [`train_policy`].
#[derive(Debug, Clone)]
pub struct TrainingPipelineConfig {
    /// Featurization shape (paper: 20-slot horizon, 15 ready slots).
    pub features: FeatureConfig,
    /// Hidden widths (`None` = the paper's 256/32/32).
    pub hidden: Option<Vec<usize>>,
    /// Training examples: random DAGs from this spec (paper: 144 examples
    /// of 25 tasks).
    pub example_spec: LayeredDagSpec,
    /// Number of training examples.
    pub num_examples: usize,
    /// Supervised phase settings.
    pub pretrain: PretrainConfig,
    /// Learning rate of the supervised phase (larger than REINFORCE's).
    pub pretrain_alpha: f64,
    /// REINFORCE phase settings.
    pub reinforce: ReinforceConfig,
    /// REINFORCE learning rate (paper: 1e-4).
    pub reinforce_alpha: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl TrainingPipelineConfig {
    /// The paper's configuration: 144 examples × 25 tasks, 20 rollouts,
    /// 7000 epochs. **Heavy** — hours of CPU; use
    /// [`TrainingPipelineConfig::fast`] for interactive runs.
    pub fn paper() -> Self {
        TrainingPipelineConfig {
            features: FeatureConfig::paper(2),
            hidden: None,
            example_spec: LayeredDagSpec::paper_training(),
            num_examples: 144,
            pretrain: PretrainConfig {
                epochs: 50,
                batch_size: 64,
            },
            pretrain_alpha: 1e-3,
            reinforce: ReinforceConfig {
                epochs: 7000,
                rollouts: 20,
                max_grad_norm: Some(10.0),
                normalize_returns: true,
            },
            reinforce_alpha: 1e-4,
            seed: 0,
        }
    }

    /// A scaled-down pipeline that trains in minutes on one core while
    /// preserving the paper's structure (pretrain → REINFORCE). Used by
    /// the examples and the Fig. 8(b) regeneration.
    pub fn fast() -> Self {
        TrainingPipelineConfig {
            features: FeatureConfig::paper(2),
            hidden: Some(vec![64, 32]),
            example_spec: LayeredDagSpec::paper_training(),
            num_examples: 12,
            pretrain: PretrainConfig {
                epochs: 15,
                batch_size: 64,
            },
            pretrain_alpha: 1e-3,
            reinforce: ReinforceConfig {
                epochs: 40,
                rollouts: 8,
                max_grad_norm: Some(10.0),
                normalize_returns: true,
            },
            reinforce_alpha: 1e-3,
            seed: 0,
        }
    }

    /// A minimal pipeline for unit tests (seconds).
    pub fn tiny() -> Self {
        TrainingPipelineConfig {
            features: FeatureConfig::small(2),
            hidden: Some(vec![24]),
            example_spec: LayeredDagSpec {
                num_tasks: 8,
                ..LayeredDagSpec::paper_training()
            },
            num_examples: 3,
            pretrain: PretrainConfig {
                epochs: 5,
                batch_size: 32,
            },
            pretrain_alpha: 1e-3,
            reinforce: ReinforceConfig {
                epochs: 3,
                rollouts: 4,
                max_grad_norm: Some(5.0),
                normalize_returns: true,
            },
            reinforce_alpha: 1e-3,
            seed: 0,
        }
    }
}

/// A trained policy plus its training artifacts.
#[derive(Debug)]
pub struct TrainedPolicy {
    /// The trained network, ready for
    /// [`SpearBuilder::build_with_policy`](crate::SpearBuilder::build_with_policy).
    pub policy: PolicyNetwork,
    /// Mean supervised loss per pre-training epoch.
    pub pretrain_loss: Vec<f64>,
    /// Imitation accuracy after pre-training.
    pub pretrain_accuracy: f64,
    /// The REINFORCE learning curve (Fig. 8(b)).
    pub curve: Vec<TrainingCurvePoint>,
    /// The training example DAGs (for evaluation reuse).
    pub examples: Vec<Dag>,
}

/// Runs the full pipeline: generate examples → collect the CP-expert
/// dataset → supervised pre-training → REINFORCE. Deterministic given
/// `config.seed`.
///
/// # Errors
///
/// Propagates simulator errors (only possible if the example spec emits
/// tasks larger than the cluster).
pub fn train_policy(
    config: &TrainingPipelineConfig,
    spec: &ClusterSpec,
) -> Result<TrainedPolicy, SpearError> {
    train_policy_observed(config, spec, &spear_obs::Obs::noop())
}

/// [`train_policy`] with a metric sink: both phases record the `rl.*`
/// family (pre-training loss, per-epoch makespan/entropy/grad-norm, and
/// episode returns). The trained policy is identical to [`train_policy`]'s.
///
/// # Errors
///
/// Propagates simulator errors (only possible if the example spec emits
/// tasks larger than the cluster).
pub fn train_policy_observed(
    config: &TrainingPipelineConfig,
    spec: &ClusterSpec,
    obs: &spear_obs::Obs,
) -> Result<TrainedPolicy, SpearError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let examples: Vec<Dag> = (0..config.num_examples)
        .map(|_| config.example_spec.generate(&mut rng))
        .collect();

    let mut policy = match &config.hidden {
        Some(h) => PolicyNetwork::with_hidden(config.features.clone(), h, &mut rng),
        None => PolicyNetwork::new(config.features.clone(), &mut rng),
    };

    // Phase 1: imitate the critical-path expert (§IV).
    let dataset = pretrain::build_dataset(&policy, &examples, spec)?;
    let mut opt = RmsProp::new(config.pretrain_alpha, 0.9, 1e-9);
    let pretrain_loss = pretrain::train_observed(
        &mut policy,
        &dataset,
        &mut opt,
        &config.pretrain,
        &mut rng,
        obs,
    );
    let pretrain_accuracy = pretrain::accuracy(&policy, &dataset);

    // Phase 2: REINFORCE with the averaged baseline.
    let mut trainer =
        ReinforceTrainer::with_learning_rate(config.reinforce.clone(), config.reinforce_alpha)
            .with_obs(obs);
    let curve = trainer.train(&mut policy, &examples, spec, &mut rng)?;

    Ok(TrainedPolicy {
        policy,
        pretrain_loss,
        pretrain_accuracy,
        curve,
        examples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_runs_end_to_end() {
        let spec = ClusterSpec::unit(2);
        let trained = train_policy(&TrainingPipelineConfig::tiny(), &spec).unwrap();
        assert_eq!(trained.examples.len(), 3);
        assert_eq!(trained.curve.len(), 3);
        assert!(!trained.pretrain_loss.is_empty());
        assert!(trained.pretrain_accuracy > 0.0);
        // The trained policy plugs into Spear.
        let mut spear = crate::SpearBuilder::new()
            .initial_budget(10)
            .min_budget(2)
            .feature_config(FeatureConfig::small(2))
            .build_with_policy(trained.policy);
        let dag = trained.examples[0].clone();
        let s = spear_sched::Scheduler::schedule(&mut spear, &dag, &spec).unwrap();
        s.validate(&dag, &spec).unwrap();
    }

    #[test]
    fn pipeline_is_deterministic() {
        let spec = ClusterSpec::unit(2);
        let a = train_policy(&TrainingPipelineConfig::tiny(), &spec).unwrap();
        let b = train_policy(&TrainingPipelineConfig::tiny(), &spec).unwrap();
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.pretrain_loss, b.pretrain_loss);
    }

    #[test]
    fn paper_config_matches_paper_numbers() {
        let cfg = TrainingPipelineConfig::paper();
        assert_eq!(cfg.num_examples, 144);
        assert_eq!(cfg.reinforce.epochs, 7000);
        assert_eq!(cfg.reinforce.rollouts, 20);
        assert_eq!(cfg.example_spec.num_tasks, 25);
        assert_eq!(cfg.reinforce_alpha, 1e-4);
    }
}
