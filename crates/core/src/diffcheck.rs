//! Differential schedule checking: one schedule, three independent judges.
//!
//! Every scheduler in this reproduction emits a [`Schedule`], and every
//! paper comparison trusts that those schedules are feasible. This module
//! re-verifies each schedule **three independent ways** and flags any
//! disagreement:
//!
//! 1. [`Schedule::validate`] — the declarative checker (completeness,
//!    precedence, capacity event sweep);
//! 2. replay through a fresh [`SimState`] — the operational semantics the
//!    schedule was produced under, step by step;
//! 3. replay onto a [`ResourceTimeline`] — the slot-by-slot occupancy
//!    grid, the third accounting of the same capacity constraint.
//!
//! A schedule all three accept is near-certainly feasible; a schedule they
//! *disagree* on exposes a bookkeeping bug in one of the three cores (the
//! epsilon-drift fixture under `tests/fixtures/` is exactly such a case,
//! found by this harness). The seeded fuzz corpus ([`corpus`]) crosses
//! [`LayeredDagSpec`] workloads with every scheduler in the workspace —
//! including an epsilon-jitter mode that places demands within one
//! [`FIT_EPSILON`] of the capacity boundary, where
//! the accounting bugs live. Failing cases shrink to minimized committed
//! fixtures ([`Fixture`]).
//!
//! Fault-injected executions get their own tri-judge ([`check_faulty_run`]
//! over a [`FaultyRun`]): the declarative judge re-derives every attempt
//! from the plan's pure draws, the operational judge re-executes the plan
//! under the auditor and demands a bit-identical run, and the occupancy
//! judge replays failed *and* final attempts onto the grid. The
//! [`fault_corpus`] crosses the roster with the EXPERIMENTS.md fault
//! rates; deterministic retry exhaustion is a legal outcome, but any
//! nondeterminism in it is a finding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spear_cluster::{
    execute_under_faults, execute_under_faults_audited, Action, ClusterError, ClusterSpec,
    FaultOutcome, FaultPlan, FaultyRun, InvariantAuditor, JctReport, JobQueue, MachineSet,
    ResourceTimeline, Schedule, SimState, SpearError, TransferMode,
};
use spear_dag::generator::LayeredDagSpec;
use spear_dag::{Dag, DagBuilder, ResourceVec, Task, TaskId, FIT_EPSILON};
use spear_mcts::{MctsConfig, MctsScheduler};
use spear_rl::{FeatureConfig, PolicyNetwork};
use spear_sched::{
    BnBConfig, BnBScheduler, CpScheduler, Graphene, RandomScheduler, Scheduler, SjfScheduler,
    TetrisScheduler,
};
use spear_trace::{ArrivalProcess, ArrivalStreamSpec, FaultProfile, JobSource};

/// Every scheduler the differential fuzzer exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SchedulerKind {
    /// Tetris-style packing-score list scheduler.
    Tetris,
    /// Shortest-job-first list scheduler.
    Sjf,
    /// Critical-path list scheduler.
    Cp,
    /// Seeded random list scheduler.
    Random,
    /// Graphene-style troublesome-task packing.
    Graphene,
    /// Branch-and-bound exact search (node-capped).
    BnB,
    /// Pure MCTS with random rollouts.
    MctsPure,
    /// Pure MCTS with the transposition cache disabled.
    MctsPureNoCache,
    /// MCTS guided by an (untrained) DRL policy — the Spear configuration.
    MctsDrl,
    /// DRL-guided MCTS with the inference cache disabled, so the fuzzer
    /// exercises the uncached inference path (which must produce the same
    /// feasible schedules as the cached one).
    MctsDrlNoCache,
}

impl SchedulerKind {
    /// The full roster, in fuzzing order.
    pub const ALL: [SchedulerKind; 10] = [
        SchedulerKind::Tetris,
        SchedulerKind::Sjf,
        SchedulerKind::Cp,
        SchedulerKind::Random,
        SchedulerKind::Graphene,
        SchedulerKind::BnB,
        SchedulerKind::MctsPure,
        SchedulerKind::MctsPureNoCache,
        SchedulerKind::MctsDrl,
        SchedulerKind::MctsDrlNoCache,
    ];

    /// Stable name, used in fixture files and reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Tetris => "tetris",
            SchedulerKind::Sjf => "sjf",
            SchedulerKind::Cp => "cp",
            SchedulerKind::Random => "random",
            SchedulerKind::Graphene => "graphene",
            SchedulerKind::BnB => "bnb",
            SchedulerKind::MctsPure => "mcts-pure",
            SchedulerKind::MctsPureNoCache => "mcts-pure-nocache",
            SchedulerKind::MctsDrl => "mcts-drl",
            SchedulerKind::MctsDrlNoCache => "mcts-drl-nocache",
        }
    }

    /// Inverse of [`SchedulerKind::name`].
    pub fn from_name(name: &str) -> Option<SchedulerKind> {
        SchedulerKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds a fresh, deterministic instance. Search budgets are kept
    /// small: the fuzzer cares about schedule *feasibility*, not quality,
    /// and small budgets buy more cases per CI second.
    pub fn build(self, seed: u64, dims: usize) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Tetris => Box::new(TetrisScheduler::new()),
            SchedulerKind::Sjf => Box::new(SjfScheduler::new()),
            SchedulerKind::Cp => Box::new(CpScheduler::new()),
            SchedulerKind::Random => Box::new(RandomScheduler::seeded(seed)),
            SchedulerKind::Graphene => Box::new(Graphene::new()),
            SchedulerKind::BnB => {
                Box::new(BnBScheduler::with_config(BnBConfig { max_nodes: 20_000 }))
            }
            SchedulerKind::MctsPure | SchedulerKind::MctsPureNoCache => {
                Box::new(MctsScheduler::pure(MctsConfig {
                    initial_budget: 32,
                    min_budget: 8,
                    seed,
                    eval_cache: self != SchedulerKind::MctsPureNoCache,
                    ..MctsConfig::default()
                }))
            }
            SchedulerKind::MctsDrl | SchedulerKind::MctsDrlNoCache => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
                let policy =
                    PolicyNetwork::with_hidden(FeatureConfig::small(dims), &[16], &mut rng);
                Box::new(MctsScheduler::drl(
                    MctsConfig {
                        initial_budget: 16,
                        min_budget: 4,
                        seed,
                        eval_cache: self != SchedulerKind::MctsDrlNoCache,
                        ..MctsConfig::default()
                    },
                    policy,
                ))
            }
        }
    }
}

/// The three independent verdicts on one schedule. `Ok(())` means the
/// judge accepts; `Err` carries a human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct TriCheck {
    /// Verdict of [`Schedule::validate`].
    pub validate: Result<(), String>,
    /// Verdict of the step-by-step [`SimState`] replay.
    pub sim_replay: Result<(), String>,
    /// Verdict of the slot-by-slot [`ResourceTimeline`] replay.
    pub timeline_replay: Result<(), String>,
}

impl TriCheck {
    /// All three judges accept the schedule.
    pub fn all_ok(&self) -> bool {
        self.validate.is_ok() && self.sim_replay.is_ok() && self.timeline_replay.is_ok()
    }

    /// The judges disagree — the interesting case: at least one accepts
    /// what another rejects, so one of the three accounting cores is
    /// wrong.
    pub fn is_disagreement(&self) -> bool {
        let oks = [
            self.validate.is_ok(),
            self.sim_replay.is_ok(),
            self.timeline_replay.is_ok(),
        ];
        oks.iter().any(|&o| o) && oks.iter().any(|&o| !o)
    }

    /// One-line verdict summary, e.g. `validate=ok sim=ok timeline=ok`.
    pub fn summary(&self) -> String {
        let v = |r: &Result<(), String>| match r {
            Ok(()) => "ok".to_owned(),
            Err(e) => format!("FAIL({e})"),
        };
        format!(
            "validate={} sim={} timeline={}",
            v(&self.validate),
            v(&self.sim_replay),
            v(&self.timeline_replay)
        )
    }
}

/// Runs all three judges on `schedule`.
pub fn check_schedule(dag: &Dag, spec: &ClusterSpec, schedule: &Schedule) -> TriCheck {
    TriCheck {
        validate: schedule.validate(dag, spec).map_err(|e| e.to_string()),
        sim_replay: replay_sim(dag, spec, schedule),
        timeline_replay: replay_timeline(dag, spec, schedule),
    }
}

/// Replays `schedule` action-by-action through a fresh [`SimState`]: each
/// task is scheduled exactly when its recorded start equals the clock, and
/// `Process` advances between starts. Rejects schedules the operational
/// semantics cannot realize (unreachable start times, capacity refusals,
/// precedence refusals, makespan mismatch).
///
/// On a heterogeneous cluster the replay issues [`Action::Place`] on the
/// recorded machine — the simulator's own per-machine admission and
/// transfer gate then re-derive every cross-machine delay independently
/// of the declarative judge — and the [`InvariantAuditor`] runs after
/// every action.
fn replay_sim(dag: &Dag, spec: &ClusterSpec, schedule: &Schedule) -> Result<(), String> {
    let hetero = spec.machines().is_some();
    let mut sim = SimState::new(dag, spec).map_err(|e| format!("initial state: {e}"))?;
    let mut auditor = hetero.then(InvariantAuditor::new);
    let mut order: Vec<usize> = (0..schedule.placements().len()).collect();
    order.sort_by_key(|&i| {
        let p = &schedule.placements()[i];
        (p.start, p.task)
    });
    for &i in &order {
        let p = &schedule.placements()[i];
        while sim.clock() < p.start {
            sim.apply(dag, Action::Process)
                .map_err(|e| format!("advancing to start {} of task {}: {e}", p.start, p.task))?;
        }
        if sim.clock() != p.start {
            return Err(format!(
                "task {} starts at {} but the clock can only reach {}",
                p.task,
                p.start,
                sim.clock()
            ));
        }
        let action = if hetero {
            Action::Place(p.task, p.machine)
        } else {
            Action::Schedule(p.task)
        };
        sim.apply(dag, action)
            .map_err(|e| format!("scheduling task {} at {}: {e}", p.task, p.start))?;
        if let Some(auditor) = auditor.as_mut() {
            auditor
                .check(dag, &sim)
                .map_err(|v| format!("auditor after placing task {}: {v}", p.task))?;
        }
    }
    while !sim.is_terminal(dag) {
        sim.apply(dag, Action::Process)
            .map_err(|e| format!("draining the cluster: {e}"))?;
        if let Some(auditor) = auditor.as_mut() {
            auditor
                .check(dag, &sim)
                .map_err(|v| format!("auditor while draining: {v}"))?;
        }
    }
    match sim.makespan() {
        Some(m) if m == schedule.makespan() => Ok(()),
        Some(m) => Err(format!(
            "replayed makespan {m} != recorded makespan {}",
            schedule.makespan()
        )),
        None => Err("terminal state reports no makespan".to_owned()),
    }
}

/// Replays `schedule` onto a [`ResourceTimeline`]: every placement must
/// fit the already-placed occupancy slot-by-slot, and durations must match
/// runtimes. (Precedence is out of scope here — the timeline is the
/// capacity judge.)
///
/// On a heterogeneous cluster the judge keeps **one occupancy grid per
/// machine** (each with that machine's own capacity) and additionally
/// re-derives every cross-machine transfer delay from the
/// [`MachineSet`] alone — seeded edge bytes divided by link bandwidth —
/// and rejects any child that starts inside its transfer window. That
/// derivation shares no code with [`Schedule::validate`]'s edge loop or
/// the simulator's gate, so a bug in either shows up as a judge
/// disagreement rather than a silent agreement.
fn replay_timeline(dag: &Dag, spec: &ClusterSpec, schedule: &Schedule) -> Result<(), String> {
    let mut grids: Vec<ResourceTimeline> = match spec.machines() {
        Some(m) => (0..m.len())
            .map(|i| ResourceTimeline::new(m.capacity(i as u32).clone()))
            .collect(),
        None => vec![ResourceTimeline::new(spec.capacity().clone())],
    };
    let mut latest = 0u64;
    for p in schedule.placements() {
        let runtime = dag.task(p.task).runtime();
        if p.finish.checked_sub(p.start) != Some(runtime) {
            return Err(format!(
                "task {} spans [{}, {}) but its runtime is {runtime}",
                p.task, p.start, p.finish
            ));
        }
        let tl = grids.get_mut(p.machine as usize).ok_or_else(|| {
            format!(
                "task {} is placed on machine {} of a {}-machine cluster",
                p.task,
                p.machine,
                spec.num_machines()
            )
        })?;
        if !tl.fits(dag.task(p.task).demand(), p.start, runtime) {
            return Err(format!(
                "task {} does not fit machine {}'s occupancy grid at [{}, {})",
                p.task, p.machine, p.start, p.finish
            ));
        }
        tl.place(dag.task(p.task).demand(), p.start, runtime);
        latest = latest.max(p.finish);
    }
    if let Some(machines) = spec.machines() {
        for e in dag.edges() {
            let (parent, child) = match (schedule.placement_of(e.from), schedule.placement_of(e.to))
            {
                (Some(p), Some(c)) => (p, c),
                // Completeness is the declarative judge's concern.
                _ => continue,
            };
            let bytes = machines.edge_bytes(e.from.index(), e.to.index());
            let delay = machines.transfer_delay(bytes, parent.machine, child.machine);
            if child.start < parent.finish.saturating_add(delay) {
                return Err(format!(
                    "task {} starts at {} inside the transfer window of its parent {} \
                     (finish {} + {bytes} bytes over the m{}->m{} link = {delay} slots)",
                    e.to, child.start, e.from, parent.finish, parent.machine, child.machine
                ));
            }
        }
    }
    if latest != schedule.makespan() && !schedule.placements().is_empty() {
        return Err(format!(
            "latest finish {latest} != recorded makespan {}",
            schedule.makespan()
        ));
    }
    Ok(())
}

/// One fuzz case: a seeded workload crossed with a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseSpec {
    /// Seed for both the workload generator and the scheduler.
    pub seed: u64,
    /// Number of tasks in the generated DAG.
    pub num_tasks: usize,
    /// Resource dimensions.
    pub dims: usize,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// Snap demands next to the capacity boundary (within one
    /// `FIT_EPSILON`) to probe the epsilon-admission region.
    pub epsilon_jitter: bool,
}

impl CaseSpec {
    /// Generates the case's DAG deterministically from its seed.
    pub fn dag(&self) -> Dag {
        let spec = LayeredDagSpec {
            num_tasks: self.num_tasks,
            dims: self.dims,
            ..LayeredDagSpec::paper_training()
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dag = spec.generate(&mut rng);
        if self.epsilon_jitter {
            jitter_demands(&dag, &mut rng)
        } else {
            dag
        }
    }

    /// The (unit-capacity) cluster the case runs on.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::unit(self.dims)
    }

    /// Runs the scheduler and judges its schedule three ways. `Err` means
    /// the scheduler itself failed — also a finding.
    pub fn run(&self) -> Result<TriCheck, String> {
        let dag = self.dag();
        let spec = self.cluster();
        let mut scheduler = self.scheduler.build(self.seed, self.dims);
        let schedule = scheduler
            .schedule(&dag, &spec)
            .map_err(|e| format!("{} failed to schedule: {e}", self.scheduler.name()))?;
        Ok(check_schedule(&dag, &spec, &schedule))
    }

    /// Short label for reports, e.g. `tetris/n25/seed42/jitter`.
    pub fn label(&self) -> String {
        format!(
            "{}/n{}/seed{}{}",
            self.scheduler.name(),
            self.num_tasks,
            self.seed,
            if self.epsilon_jitter { "/jitter" } else { "" }
        )
    }
}

/// Rebuilds `dag` with every demand snapped to a multiple of 1/8 of unit
/// capacity plus a few ±3e-10 steps of jitter — right up against the
/// `FIT_EPSILON` admission boundary where the accounting bugs live, yet
/// never *on* it: sums of jitter offsets are integer multiples of 3e-10,
/// and no such multiple equals `FIT_EPSILON` (1e-9), so every feasibility
/// comparison has at least 1e-10 of margin — far above f64 rounding error
/// at magnitude 1 — and the three judges' different summation orders
/// cannot produce spurious knife-edge disagreements.
fn jitter_demands<R: Rng + ?Sized>(dag: &Dag, rng: &mut R) -> Dag {
    let mut b = DagBuilder::new(dag.dims());
    for t in dag.tasks() {
        let demand: Vec<f64> = t
            .demand()
            .as_slice()
            .iter()
            .map(|&d| {
                let snapped = ((d * 8.0).round() / 8.0).clamp(0.125, 1.0);
                let steps = rng.gen_range(0u32..6) as f64 - 2.0;
                // Cap below capacity + FIT_EPSILON (at 3 steps exactly) so
                // the task stays admissible on a unit cluster.
                (snapped + steps * 3e-10).min(1.0 + 0.9 * FIT_EPSILON)
            })
            .collect();
        b.add_task(Task::new(t.runtime(), ResourceVec::from_slice(&demand)));
    }
    for e in dag.edges() {
        b.add_edge(e.from, e.to).expect("edges of a valid dag");
    }
    b.build().expect("jittering preserves the dag structure")
}

/// The seeded fuzz corpus: `count` cases cycling the full scheduler roster
/// over mixed job sizes, alternating plain and epsilon-jittered demands.
/// Deterministic in `base_seed`, so CI replays the exact same matrix.
pub fn corpus(count: usize, base_seed: u64) -> Vec<CaseSpec> {
    let sizes = [8usize, 14, 25];
    (0..count)
        .map(|i| CaseSpec {
            seed: base_seed.wrapping_add(i as u64),
            num_tasks: sizes[i % sizes.len()],
            dims: 1 + (i / sizes.len()) % 2,
            scheduler: SchedulerKind::ALL[i % SchedulerKind::ALL.len()],
            epsilon_jitter: i % 2 == 1,
        })
        .collect()
}

/// Runs the three judges on a multi-job union schedule, strengthened for
/// the online regime:
///
/// 1. **validate** — [`Schedule::validate`] on the union DAG, plus arrival
///    gating (no task starts before its job arrives), plus every per-job
///    sub-schedule re-validated against its own job DAG, plus the per-job
///    JCTs of [`JobQueue::jct_report`] cross-checked against the
///    placements;
/// 2. **sim replay** — the schedule replayed action-by-action through a
///    fresh multi-job [`SimState`], with the [`InvariantAuditor`] run
///    after every action and [`JobQueue::jct_report_partial`] at the
///    terminal state compared to the placement-derived report;
/// 3. **timeline replay** — the union schedule and every per-job
///    sub-schedule replayed onto [`ResourceTimeline`] occupancy grids.
pub fn check_multi_schedule(queue: &JobQueue, spec: &ClusterSpec, schedule: &Schedule) -> TriCheck {
    TriCheck {
        validate: validate_multi(queue, spec, schedule),
        sim_replay: replay_sim_multi(queue, spec, schedule),
        timeline_replay: replay_timeline_multi(queue, spec, schedule),
    }
}

/// The declarative multi-job judge: union validity, arrival gating,
/// per-job sub-schedule validity, and per-job JCT accounting.
fn validate_multi(queue: &JobQueue, spec: &ClusterSpec, schedule: &Schedule) -> Result<(), String> {
    schedule
        .validate(queue.union_dag(), spec)
        .map_err(|e| format!("union schedule: {e}"))?;
    for span in queue.spans() {
        for local in 0..span.tasks {
            let task = TaskId::new(span.first_task + local);
            let p = schedule
                .placement_of(task)
                .ok_or_else(|| format!("job {}: task {task} is unplaced", span.job))?;
            if p.start < span.arrival {
                return Err(format!(
                    "job {}: task {task} starts at {} before the job arrives at {}",
                    span.job, p.start, span.arrival
                ));
            }
        }
    }
    let subs = queue.per_job_schedules(schedule);
    let report = queue.jct_report(schedule);
    if report.unfinished() != 0 {
        return Err(format!(
            "{} jobs unfinished in a complete schedule",
            report.unfinished()
        ));
    }
    if report.completions().len() != queue.jobs() {
        return Err(format!(
            "report covers {} of {} jobs",
            report.completions().len(),
            queue.jobs()
        ));
    }
    for (span, sub) in queue.spans().iter().zip(&subs) {
        sub.validate(queue.job_dag(span.job), spec)
            .map_err(|e| format!("job {} sub-schedule: {e}", span.job))?;
        let c = &report.completions()[span.job];
        let jct = sub.makespan() - span.arrival;
        if c.jct != jct {
            return Err(format!(
                "job {}: report says jct {} but the placements span {}",
                span.job, c.jct, jct
            ));
        }
    }
    Ok(())
}

/// The operational multi-job judge: replay through a fresh multi-job
/// [`SimState`] (which enforces arrival gating natively), auditing every
/// step, then cross-check the terminal state's JCT report.
fn replay_sim_multi(
    queue: &JobQueue,
    spec: &ClusterSpec,
    schedule: &Schedule,
) -> Result<(), String> {
    let dag = queue.union_dag();
    let mut sim = SimState::new_multi(queue, spec).map_err(|e| format!("initial state: {e}"))?;
    let mut auditor = InvariantAuditor::new();
    let mut order: Vec<usize> = (0..schedule.placements().len()).collect();
    order.sort_by_key(|&i| {
        let p = &schedule.placements()[i];
        (p.start, p.task)
    });
    for &i in &order {
        let p = &schedule.placements()[i];
        while sim.clock() < p.start {
            sim.apply(dag, Action::Process)
                .map_err(|e| format!("advancing to start {} of task {}: {e}", p.start, p.task))?;
        }
        if sim.clock() != p.start {
            return Err(format!(
                "task {} starts at {} but the clock can only reach {}",
                p.task,
                p.start,
                sim.clock()
            ));
        }
        sim.apply(dag, Action::Schedule(p.task))
            .map_err(|e| format!("scheduling task {} at {}: {e}", p.task, p.start))?;
        auditor
            .check(dag, &sim)
            .map_err(|v| format!("auditor after scheduling task {}: {v}", p.task))?;
    }
    while !sim.is_terminal(dag) {
        sim.apply(dag, Action::Process)
            .map_err(|e| format!("draining the cluster: {e}"))?;
        auditor
            .check(dag, &sim)
            .map_err(|v| format!("auditor while draining: {v}"))?;
    }
    match sim.makespan() {
        Some(m) if m == schedule.makespan() => {}
        Some(m) => {
            return Err(format!(
                "replayed makespan {m} != recorded makespan {}",
                schedule.makespan()
            ))
        }
        None => return Err("terminal state reports no makespan".to_owned()),
    }
    let from_state = queue.jct_report_partial(&sim);
    let from_schedule = queue.jct_report(schedule);
    if from_state != from_schedule {
        return Err(format!(
            "state-derived JCT report {from_state:?} != placement-derived {from_schedule:?}"
        ));
    }
    Ok(())
}

/// The occupancy multi-job judge: the union schedule and each per-job
/// sub-schedule must fit their resource grids independently.
fn replay_timeline_multi(
    queue: &JobQueue,
    spec: &ClusterSpec,
    schedule: &Schedule,
) -> Result<(), String> {
    replay_timeline(queue.union_dag(), spec, schedule).map_err(|e| format!("union: {e}"))?;
    for (span, sub) in queue.spans().iter().zip(queue.per_job_schedules(schedule)) {
        replay_timeline(queue.job_dag(span.job), spec, &sub)
            .map_err(|e| format!("job {}: {e}", span.job))?;
    }
    Ok(())
}

/// One multi-job fuzz case: a seeded Poisson arrival stream crossed with a
/// scheduler's [`Scheduler::schedule_multi`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiCaseSpec {
    /// Seed for the arrival stream, the job DAGs, and the scheduler.
    pub seed: u64,
    /// Number of jobs in the stream.
    pub jobs: usize,
    /// Tasks per job DAG.
    pub tasks_per_job: usize,
    /// Resource dimensions.
    pub dims: usize,
    /// Mean Poisson inter-arrival gap in time slots.
    pub mean_gap: f64,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
}

impl MultiCaseSpec {
    /// Generates the case's job queue deterministically from its seed.
    ///
    /// # Panics
    ///
    /// Panics if the case parameters are degenerate (zero jobs/tasks).
    pub fn queue(&self) -> JobQueue {
        let stream = ArrivalStreamSpec {
            jobs: self.jobs,
            process: ArrivalProcess::Poisson {
                mean_gap: self.mean_gap,
            },
            source: JobSource::Layered(LayeredDagSpec {
                num_tasks: self.tasks_per_job,
                dims: self.dims,
                ..LayeredDagSpec::paper_training()
            }),
        };
        let jobs = stream.generate(self.seed).expect("layered source is total");
        JobQueue::new(jobs).expect("generated stream forms a valid queue")
    }

    /// The (unit-capacity) cluster the case runs on.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::unit(self.dims)
    }

    /// Runs the scheduler's multi-job path and judges the union schedule
    /// three ways; also returns the per-job JCT report the judges vetted.
    /// `Err` means the scheduler itself failed — also a finding.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's own failure as a string.
    pub fn run(&self) -> Result<(TriCheck, JctReport), String> {
        let queue = self.queue();
        let spec = self.cluster();
        let mut scheduler = self.scheduler.build(self.seed, self.dims);
        let schedule = scheduler
            .schedule_multi(&queue, &spec)
            .map_err(|e| format!("{} failed to schedule: {e}", self.scheduler.name()))?;
        let report = queue.jct_report(&schedule);
        Ok((check_multi_schedule(&queue, &spec, &schedule), report))
    }

    /// Short label for reports, e.g. `tetris/j20xn8/seed42`.
    pub fn label(&self) -> String {
        format!(
            "{}/j{}xn{}/seed{}",
            self.scheduler.name(),
            self.jobs,
            self.tasks_per_job,
            self.seed
        )
    }
}

/// The seeded multi-job corpus: `count` cases cycling the full roster over
/// Poisson streams of mixed load. Deterministic in `base_seed`.
pub fn multi_corpus(count: usize, base_seed: u64) -> Vec<MultiCaseSpec> {
    let gaps = [2.0, 6.0, 12.0];
    (0..count)
        .map(|i| MultiCaseSpec {
            seed: base_seed.wrapping_add(i as u64),
            jobs: 3 + i % 3,
            tasks_per_job: 6 + 2 * (i % 2),
            dims: 1 + (i / 3) % 2,
            mean_gap: gaps[i % gaps.len()],
            scheduler: SchedulerKind::ALL[i % SchedulerKind::ALL.len()],
        })
        .collect()
}

/// Runs the three fault-aware judges on a realized run: `run` must be the
/// outcome of executing the fault-free `planned` schedule to completion
/// under `plan` (no horizon — every task placed).
///
/// 1. **validate** — declarative re-derivation of the whole run from the
///    plan's pure draws: completeness, per-attempt durations, every failed
///    attempt matching a `Fail` draw exactly, the retry budget, re-queue
///    ordering, precedence on realized times, a capacity event sweep over
///    final *and* failed occupancy intervals, and the fault counters;
/// 2. **sim replay** — a fresh audited re-execution
///    ([`execute_under_faults_audited`]) compared bit-for-bit against the
///    recorded run;
/// 3. **timeline replay** — failed and final attempts placed onto a
///    [`ResourceTimeline`] occupancy grid with their realized durations.
pub fn check_faulty_run(
    dag: &Dag,
    spec: &ClusterSpec,
    planned: &Schedule,
    plan: &FaultPlan,
    run: &FaultyRun,
) -> TriCheck {
    TriCheck {
        validate: validate_faulty(dag, spec, plan, run),
        sim_replay: replay_sim_faulty(dag, spec, planned, plan, run),
        timeline_replay: replay_timeline_faulty(dag, spec, plan, run),
    }
}

/// The declarative fault judge: re-derives the entire run from the plan's
/// pure per-(task, attempt) draws and checks the recorded intervals and
/// counters against that derivation.
fn validate_faulty(
    dag: &Dag,
    spec: &ClusterSpec,
    plan: &FaultPlan,
    run: &FaultyRun,
) -> Result<(), String> {
    if run.attempts.len() != dag.len() {
        return Err(format!(
            "attempts vector covers {} of {} tasks",
            run.attempts.len(),
            dag.len()
        ));
    }
    // 1. Completeness, the retry budget, and per-placement durations
    // against the final attempt's draw.
    let mut seen = vec![false; dag.len()];
    for p in run.schedule.placements() {
        let i = p.task.index();
        if i >= dag.len() || seen[i] {
            return Err(format!(
                "duplicate or out-of-range placement for task {}",
                p.task
            ));
        }
        seen[i] = true;
        let attempts = run.attempts[i];
        if attempts == 0 {
            return Err(format!("task {} is placed but started no attempt", p.task));
        }
        if attempts > plan.max_attempts() {
            return Err(format!(
                "task {} started {attempts} attempts over the budget of {}",
                p.task,
                plan.max_attempts()
            ));
        }
        let runtime = dag.task(p.task).runtime();
        let last = attempts - 1;
        if matches!(
            plan.outcome(p.task, last, runtime),
            FaultOutcome::Fail { .. }
        ) {
            return Err(format!(
                "task {}: final attempt {last} is a failure draw yet the run completed it",
                p.task
            ));
        }
        let slots = plan.run_slots(p.task, last, runtime);
        if p.finish.checked_sub(p.start) != Some(slots) {
            return Err(format!(
                "task {} spans [{}, {}) but attempt {last} occupies {slots} slots",
                p.task, p.start, p.finish
            ));
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(format!("task {missing} never completed in a full run"));
    }
    // 2. Failed attempts: every non-final attempt of every task, exactly
    // once, each interval matching its `Fail` draw, and the re-queue
    // ordering (an attempt begins only after the previous one frees its
    // slots; the final attempt begins after the last failure).
    let mut failed: Vec<Vec<(u32, u64, u64)>> = vec![Vec::new(); dag.len()];
    for f in &run.failed_runs {
        if f.task.index() >= dag.len() {
            return Err(format!("failed run of out-of-range task {}", f.task));
        }
        failed[f.task.index()].push((f.attempt, f.start, f.end));
    }
    for (i, mut runs) in failed.into_iter().enumerate() {
        let task = TaskId::new(i);
        let runtime = dag.task(task).runtime();
        let attempts = run.attempts[i];
        runs.sort_unstable_by_key(|&(a, _, _)| a);
        if runs.len() as u32 != attempts - 1 {
            return Err(format!(
                "task {task}: {} failed attempts recorded for {attempts} started attempts",
                runs.len()
            ));
        }
        let mut prev_end = 0u64;
        for (k, &(attempt, start, end)) in runs.iter().enumerate() {
            if attempt as usize != k {
                return Err(format!("task {task}: failed attempts skip index {k}"));
            }
            let after = match plan.outcome(task, attempt, runtime) {
                FaultOutcome::Fail { after } => after,
                _ => {
                    return Err(format!(
                        "task {task}: attempt {attempt} is recorded failed but draws no failure"
                    ))
                }
            };
            if end.checked_sub(start) != Some(after) {
                return Err(format!(
                    "task {task}: failed attempt {attempt} spans [{start}, {end}) \
                     but aborts after {after} slots"
                ));
            }
            if start < prev_end {
                return Err(format!(
                    "task {task}: attempt {attempt} starts at {start} \
                     before the previous attempt frees at {prev_end}"
                ));
            }
            prev_end = end;
        }
        let p = run
            .schedule
            .placement_of(task)
            .expect("completeness checked above");
        if p.start < prev_end {
            return Err(format!(
                "task {task}: final attempt starts at {} before the last failure frees at \
                 {prev_end}",
                p.start
            ));
        }
    }
    // 3. Precedence on realized times: no attempt of a child (failed or
    // final) may begin before the parent's completing attempt finishes.
    for e in dag.edges() {
        let parent = run
            .schedule
            .placement_of(e.from)
            .expect("completeness checked above");
        let child_first = run
            .failed_runs
            .iter()
            .filter(|f| f.task == e.to)
            .map(|f| f.start)
            .chain(run.schedule.placement_of(e.to).map(|p| p.start))
            .min()
            .expect("completeness checked above");
        if child_first < parent.finish {
            return Err(format!(
                "task {} begins at {child_first} before its parent {} finishes at {}",
                e.to, e.from, parent.finish
            ));
        }
    }
    // 4. Capacity, via an event sweep over final *and* failed occupancy
    // intervals — failed attempts hold resources until they abort, so
    // they are part of the same constraint. Ends sort before starts at
    // the same instant, exactly as in `Schedule::validate`.
    let mut events: Vec<(u64, bool, TaskId)> =
        Vec::with_capacity(2 * (run.schedule.placements().len() + run.failed_runs.len()));
    for p in run.schedule.placements() {
        if p.finish > p.start {
            events.push((p.start, false, p.task));
            events.push((p.finish, true, p.task));
        }
    }
    for f in &run.failed_runs {
        events.push((f.start, false, f.task));
        events.push((f.end, true, f.task));
    }
    events.sort_by_key(|&(t, is_end, _)| (t, !is_end));
    let mut used = ResourceVec::zeros(spec.dims());
    for (time, is_end, task) in events {
        let demand = dag.task(task).demand();
        if is_end {
            used.saturating_sub_assign(demand);
        } else {
            used.add_assign(demand);
            if !used.fits_within(spec.capacity()) {
                return Err(format!(
                    "capacity exceeded at t={time} when task {task} starts"
                ));
            }
        }
    }
    // 5. Fault accounting and the makespan.
    if run.failures != run.failed_runs.len() as u64 {
        return Err(format!(
            "failure counter {} != {} recorded failed runs",
            run.failures,
            run.failed_runs.len()
        ));
    }
    let straggles = run
        .schedule
        .placements()
        .iter()
        .filter(|p| {
            let last = run.attempts[p.task.index()] - 1;
            matches!(
                plan.outcome(p.task, last, dag.task(p.task).runtime()),
                FaultOutcome::Straggle { .. }
            )
        })
        .count() as u64;
    if run.straggles != straggles {
        return Err(format!(
            "straggle counter {} != {straggles} re-derived straggling attempts",
            run.straggles
        ));
    }
    let latest = run
        .schedule
        .placements()
        .iter()
        .map(|p| p.finish)
        .max()
        .unwrap_or(0);
    if run.makespan != latest || run.schedule.makespan() != latest {
        return Err(format!(
            "makespan {} (schedule {}) != latest finish {latest}",
            run.makespan,
            run.schedule.makespan()
        ));
    }
    Ok(())
}

/// The operational fault judge: re-execute the planned schedule under the
/// same plan with the invariant auditor on, and demand a bit-identical
/// realized run.
fn replay_sim_faulty(
    dag: &Dag,
    spec: &ClusterSpec,
    planned: &Schedule,
    plan: &FaultPlan,
    run: &FaultyRun,
) -> Result<(), String> {
    let reexec = execute_under_faults_audited(dag, spec, planned, plan)
        .map_err(|e| format!("audited re-execution: {e}"))?;
    if &reexec == run {
        return Ok(());
    }
    if reexec.schedule != run.schedule {
        return Err("re-executed placements diverge from the recorded run".to_owned());
    }
    Err(format!(
        "re-executed accounting diverges: makespan {} vs {}, failures {} vs {}, \
         straggles {} vs {}, {} vs {} failed runs",
        reexec.makespan,
        run.makespan,
        reexec.failures,
        run.failures,
        reexec.straggles,
        run.straggles,
        reexec.failed_runs.len(),
        run.failed_runs.len()
    ))
}

/// The occupancy fault judge: every failed and final attempt must fit the
/// grid slot-by-slot with its realized duration (`Fail` draws for aborted
/// attempts, [`FaultPlan::run_slots`] for completing ones).
fn replay_timeline_faulty(
    dag: &Dag,
    spec: &ClusterSpec,
    plan: &FaultPlan,
    run: &FaultyRun,
) -> Result<(), String> {
    let mut tl = ResourceTimeline::new(spec.capacity().clone());
    for f in &run.failed_runs {
        let dur = f.end.checked_sub(f.start).ok_or_else(|| {
            format!(
                "failed attempt {} of task {} ends before it starts",
                f.attempt, f.task
            )
        })?;
        if !tl.fits(dag.task(f.task).demand(), f.start, dur) {
            return Err(format!(
                "failed attempt {} of task {} does not fit the grid at [{}, {})",
                f.attempt, f.task, f.start, f.end
            ));
        }
        tl.place(dag.task(f.task).demand(), f.start, dur);
    }
    let mut latest = 0u64;
    for p in run.schedule.placements() {
        let attempts = run
            .attempts
            .get(p.task.index())
            .copied()
            .filter(|&a| a > 0)
            .ok_or_else(|| format!("task {} is placed without a started attempt", p.task))?;
        let slots = plan.run_slots(p.task, attempts - 1, dag.task(p.task).runtime());
        if p.finish.checked_sub(p.start) != Some(slots) {
            return Err(format!(
                "task {} spans [{}, {}) but its final attempt occupies {slots} slots",
                p.task, p.start, p.finish
            ));
        }
        if !tl.fits(dag.task(p.task).demand(), p.start, slots) {
            return Err(format!(
                "task {} does not fit the occupancy grid at [{}, {})",
                p.task, p.start, p.finish
            ));
        }
        tl.place(dag.task(p.task).demand(), p.start, slots);
        latest = latest.max(p.finish);
    }
    if latest != run.makespan && !run.schedule.placements().is_empty() {
        return Err(format!(
            "latest finish {latest} != recorded makespan {}",
            run.makespan
        ));
    }
    Ok(())
}

/// One fault-injection fuzz case: a seeded workload crossed with a
/// scheduler and an unreliable-cluster [`FaultProfile`]. The scheduler
/// always plans against the fault-free DAG — faults bite at execution
/// time — so every roster member runs unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCaseSpec {
    /// Seed for the workload, the scheduler *and* the fault plan.
    pub seed: u64,
    /// Number of tasks in the generated DAG.
    pub num_tasks: usize,
    /// Resource dimensions.
    pub dims: usize,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
    /// The unreliable-cluster knobs; frozen to a plan via the case seed.
    pub profile: FaultProfile,
}

impl FaultCaseSpec {
    /// Generates the case's DAG deterministically from its seed.
    pub fn dag(&self) -> Dag {
        LayeredDagSpec {
            num_tasks: self.num_tasks,
            dims: self.dims,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(self.seed))
    }

    /// The (unit-capacity) cluster the case runs on.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::unit(self.dims)
    }

    /// The frozen fault plan of this case.
    pub fn plan(&self) -> FaultPlan {
        self.profile.plan(self.seed)
    }

    /// Plans on the fault-free DAG, executes the plan under the case's
    /// fault plan, and judges the realized run three ways.
    ///
    /// `Ok(None)` means the execution exhausted a task's retry budget — a
    /// legal outcome, but only a *deterministic* one: the case re-executes
    /// and demands the identical typed error, reporting any divergence as
    /// a finding.
    ///
    /// # Errors
    ///
    /// The scheduler's own failure, a non-exhaustion execution error, or
    /// nondeterministic exhaustion — all findings.
    pub fn run(&self) -> Result<Option<TriCheck>, String> {
        let dag = self.dag();
        let spec = self.cluster();
        let mut scheduler = self.scheduler.build(self.seed, self.dims);
        let planned = scheduler
            .schedule(&dag, &spec)
            .map_err(|e| format!("{} failed to schedule: {e}", self.scheduler.name()))?;
        let plan = self.plan();
        match execute_under_faults(&dag, &spec, &planned, &plan) {
            Ok(run) => Ok(Some(check_faulty_run(&dag, &spec, &planned, &plan, &run))),
            Err(SpearError::Cluster(ClusterError::RetriesExhausted { task, attempts })) => {
                match execute_under_faults(&dag, &spec, &planned, &plan) {
                    Err(SpearError::Cluster(ClusterError::RetriesExhausted {
                        task: t2,
                        attempts: a2,
                    })) if t2 == task && a2 == attempts => Ok(None),
                    other => Err(format!(
                        "retry exhaustion is nondeterministic: task {task} after {attempts} \
                         attempts, then {other:?}"
                    )),
                }
            }
            Err(e) => Err(format!("execution under faults failed: {e}")),
        }
    }

    /// Short label for reports, e.g. `tetris/n25/seed42/f0.10`.
    pub fn label(&self) -> String {
        format!(
            "{}/n{}/seed{}/f{:.2}",
            self.scheduler.name(),
            self.num_tasks,
            self.seed,
            self.profile.fail_rate
        )
    }
}

/// The seeded fault-injection corpus: `count` cases cycling the full
/// roster over mixed job sizes and the EXPERIMENTS.md fault rates.
/// Deterministic in `base_seed`.
pub fn fault_corpus(count: usize, base_seed: u64) -> Vec<FaultCaseSpec> {
    let sizes = [8usize, 14, 25];
    let rates = [0.05, 0.10, 0.20];
    (0..count)
        .map(|i| FaultCaseSpec {
            seed: base_seed.wrapping_add(i as u64),
            num_tasks: sizes[i % sizes.len()],
            dims: 1 + (i / sizes.len()) % 2,
            scheduler: SchedulerKind::ALL[i % SchedulerKind::ALL.len()],
            profile: FaultProfile::with_rate(rates[i % rates.len()]),
        })
        .collect()
}

/// One heterogeneous-cluster fuzz case: a seeded workload crossed with a
/// scheduler on a multi-machine [`ClusterSpec`] with data-transfer-aware
/// placement. Machine capacities taper (machine 0 is always full-size, so
/// every task admissible on a unit cluster stays admissible here) and the
/// bandwidth matrix is deterministically non-uniform in the case seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeteroCaseSpec {
    /// Seed for the workload generator, the scheduler, and the network.
    pub seed: u64,
    /// Number of tasks in the generated DAG.
    pub num_tasks: usize,
    /// Resource dimensions.
    pub dims: usize,
    /// Number of machines (≥ 1).
    pub machines: usize,
    /// Base link bandwidth in bytes per slot.
    pub bandwidth: u64,
    /// How cross-machine transfers are routed.
    pub mode: TransferMode,
    /// The scheduler under test.
    pub scheduler: SchedulerKind,
}

impl HeteroCaseSpec {
    /// Generates the case's DAG deterministically from its seed.
    pub fn dag(&self) -> Dag {
        LayeredDagSpec {
            num_tasks: self.num_tasks,
            dims: self.dims,
            ..LayeredDagSpec::paper_training()
        }
        .generate(&mut StdRng::seed_from_u64(self.seed))
    }

    /// The seeded heterogeneous machine set of this case.
    ///
    /// # Panics
    ///
    /// Panics only on degenerate parameters (zero machines/bandwidth).
    pub fn machine_set(&self) -> MachineSet {
        let n = self.machines;
        // Capacities taper: 1.0, 0.75, 0.5, 0.75, 1.0, ... per dimension.
        let tapers = [1.0, 0.75, 0.5, 0.75];
        let capacities: Vec<ResourceVec> = (0..n)
            .map(|i| {
                let scale = tapers[i % tapers.len()];
                ResourceVec::from_slice(&vec![scale; self.dims])
            })
            .collect();
        // Non-uniform links: the (i, j) link gets 1x or 2x the base
        // bandwidth, deterministically in (seed, i, j).
        let bandwidth: Vec<u64> = (0..n * n)
            .map(|ij| self.bandwidth * (1 + (self.seed.wrapping_add(ij as u64)) % 2))
            .collect();
        MachineSet::new(capacities, bandwidth, self.mode, self.seed, 8)
            .expect("case parameters form a valid machine set")
    }

    /// The heterogeneous cluster the case runs on.
    ///
    /// # Panics
    ///
    /// Panics only on degenerate parameters.
    pub fn cluster(&self) -> ClusterSpec {
        ClusterSpec::hetero(self.machine_set()).expect("machine set is valid")
    }

    /// Runs the scheduler on the heterogeneous cluster and judges its
    /// schedule three ways. `Err` means the scheduler itself failed —
    /// also a finding.
    ///
    /// # Errors
    ///
    /// Returns the scheduler's own failure as a string.
    pub fn run(&self) -> Result<TriCheck, String> {
        let dag = self.dag();
        let spec = self.cluster();
        let mut scheduler = self.scheduler.build(self.seed, self.dims);
        let schedule = scheduler
            .schedule(&dag, &spec)
            .map_err(|e| format!("{} failed to schedule: {e}", self.scheduler.name()))?;
        Ok(check_schedule(&dag, &spec, &schedule))
    }

    /// Short label for reports, e.g. `tetris/n14/m3/bw4/direct/seed42`.
    pub fn label(&self) -> String {
        format!(
            "{}/n{}/m{}/bw{}/{}/seed{}",
            self.scheduler.name(),
            self.num_tasks,
            self.machines,
            self.bandwidth,
            match self.mode {
                TransferMode::Direct => "direct",
                TransferMode::ViaMaster => "via-master",
            },
            self.seed
        )
    }
}

/// The seeded heterogeneous corpus: `count` cases cycling the full roster
/// over 2–3 machine clusters, both transfer modes, and mixed bandwidths.
/// Deterministic in `base_seed`.
pub fn hetero_corpus(count: usize, base_seed: u64) -> Vec<HeteroCaseSpec> {
    let sizes = [6usize, 10, 14];
    let bandwidths = [1u64, 4, 16];
    (0..count)
        .map(|i| HeteroCaseSpec {
            seed: base_seed.wrapping_add(i as u64),
            num_tasks: sizes[i % sizes.len()],
            dims: 1 + (i / sizes.len()) % 2,
            machines: 2 + i % 2,
            bandwidth: bandwidths[i % bandwidths.len()],
            mode: if (i / 2) % 2 == 0 {
                TransferMode::Direct
            } else {
                TransferMode::ViaMaster
            },
            scheduler: SchedulerKind::ALL[i % SchedulerKind::ALL.len()],
        })
        .collect()
}

/// A task of a committed regression [`Fixture`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixtureTask {
    /// Runtime in time slots.
    pub runtime: u64,
    /// Per-dimension resource demand.
    pub demand: Vec<f64>,
}

/// An edge of a committed regression [`Fixture`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixtureEdge {
    /// Parent task index.
    pub from: usize,
    /// Child task index.
    pub to: usize,
}

/// A minimized, self-contained regression case committed under
/// `tests/fixtures/`: the exact DAG (tasks + edges), the cluster capacity,
/// and which scheduler (with which seed) exposes the disagreement.
/// [`Fixture::verify`] re-runs the scheduler — not a stored schedule — so
/// a fixture keeps guarding the code path after the underlying bug is
/// fixed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fixture {
    /// Stable fixture name (also the file stem).
    pub name: String,
    /// What bug the fixture pins, in one or two sentences.
    pub description: String,
    /// [`SchedulerKind::name`] of the scheduler under test.
    pub scheduler: String,
    /// Seed handed to the scheduler.
    pub seed: u64,
    /// Cluster capacity per dimension.
    pub capacity: Vec<f64>,
    /// The tasks, in id order.
    pub tasks: Vec<FixtureTask>,
    /// The precedence edges.
    pub edges: Vec<FixtureEdge>,
    /// Heterogeneous machine set, when the fixture pins a multi-machine
    /// case; `None` (the default, so legacy fixtures parse) means the
    /// single-box cluster described by `capacity`.
    #[serde(default)]
    pub machines: Option<MachineSet>,
}

impl Fixture {
    /// Reconstructs the DAG.
    ///
    /// # Panics
    ///
    /// Panics if the fixture encodes an invalid graph (hand-edited file).
    pub fn dag(&self) -> Dag {
        let dims = self.capacity.len();
        let mut b = DagBuilder::new(dims);
        for t in &self.tasks {
            b.add_task(Task::new(t.runtime, ResourceVec::from_slice(&t.demand)));
        }
        for e in &self.edges {
            b.add_edge(TaskId::new(e.from), TaskId::new(e.to))
                .expect("fixture edge must be valid");
        }
        b.build().expect("fixture must encode a valid dag")
    }

    /// Reconstructs the cluster spec (heterogeneous when the fixture
    /// stores a machine set).
    ///
    /// # Panics
    ///
    /// Panics if the stored capacity or machine set is invalid.
    pub fn cluster(&self) -> ClusterSpec {
        match &self.machines {
            Some(m) => {
                ClusterSpec::hetero(m.clone()).expect("fixture must encode a valid machine set")
            }
            None => ClusterSpec::new(ResourceVec::from_slice(&self.capacity))
                .expect("fixture must encode a valid capacity"),
        }
    }

    /// Re-runs the named scheduler on the fixture's workload and judges
    /// the schedule three ways.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler name is unknown or the scheduler fails.
    pub fn verify(&self) -> TriCheck {
        let kind = SchedulerKind::from_name(&self.scheduler)
            .unwrap_or_else(|| panic!("unknown scheduler {:?} in fixture", self.scheduler));
        let dag = self.dag();
        let spec = self.cluster();
        let schedule = kind
            .build(self.seed, spec.dims())
            .schedule(&dag, &spec)
            .unwrap_or_else(|e| panic!("fixture scheduler {} failed: {e}", self.scheduler));
        check_schedule(&dag, &spec, &schedule)
    }

    /// Captures a concrete (dag, scheduler, seed) triple as a fixture.
    pub fn from_parts(
        name: &str,
        description: &str,
        scheduler: SchedulerKind,
        seed: u64,
        dag: &Dag,
        spec: &ClusterSpec,
    ) -> Fixture {
        Fixture {
            name: name.to_owned(),
            description: description.to_owned(),
            scheduler: scheduler.name().to_owned(),
            seed,
            capacity: spec.capacity().as_slice().to_vec(),
            tasks: dag
                .tasks()
                .iter()
                .map(|t| FixtureTask {
                    runtime: t.runtime(),
                    demand: t.demand().as_slice().to_vec(),
                })
                .collect(),
            edges: dag
                .edges()
                .iter()
                .map(|e| FixtureEdge {
                    from: e.from.index(),
                    to: e.to.index(),
                })
                .collect(),
            machines: spec.machines().cloned(),
        }
    }

    /// Serializes to pretty JSON (the committed fixture format; f64
    /// demands round-trip exactly through shortest-float formatting).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (it cannot for this type).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fixture serialization cannot fail")
    }

    /// Parses a fixture file.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error as a string.
    pub fn from_json(s: &str) -> Result<Fixture, String> {
        serde_json::from_str(s).map_err(|e| format!("{e:?}"))
    }
}

/// Shrinks a failing case to a locally-minimal DAG: repeatedly try
/// removing one task (dropping its edges), keeping any removal after
/// which `fails` still holds, until a full pass removes nothing. The
/// predicate receives the candidate DAG and must return `true` while the
/// bug still reproduces.
pub fn shrink_dag<F>(dag: &Dag, mut fails: F) -> Dag
where
    F: FnMut(&Dag) -> bool,
{
    let mut current = dag.clone();
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < current.len() {
            if current.len() <= 1 {
                break;
            }
            let candidate = remove_task(&current, i);
            if fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Indices shifted; re-test the same position.
            } else {
                i += 1;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

/// Rebuilds `dag` without task `removed` (edges touching it are dropped;
/// later task ids shift down by one).
fn remove_task(dag: &Dag, removed: usize) -> Dag {
    let mut b = DagBuilder::new(dag.dims());
    for (i, t) in dag.tasks().iter().enumerate() {
        if i != removed {
            b.add_task(t.clone());
        }
    }
    let shift = |i: usize| if i > removed { i - 1 } else { i };
    for e in dag.edges() {
        let (f, t) = (e.from.index(), e.to.index());
        if f != removed && t != removed {
            b.add_edge(TaskId::new(shift(f)), TaskId::new(shift(t)))
                .expect("surviving edges stay acyclic");
        }
    }
    b.build().expect("removing a task preserves acyclicity")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_names_round_trip() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::from_name("nope"), None);
    }

    #[test]
    fn a_clean_tetris_case_passes_three_ways() {
        let case = CaseSpec {
            seed: 7,
            num_tasks: 10,
            dims: 2,
            scheduler: SchedulerKind::Tetris,
            epsilon_jitter: false,
        };
        let tri = case.run().unwrap();
        assert!(tri.all_ok(), "{}", tri.summary());
        assert!(!tri.is_disagreement());
    }

    #[test]
    fn a_corrupted_schedule_is_rejected_coherently() {
        // Two 0.6-demand tasks forced to overlap on a unit cluster: all
        // three judges must reject (capacity), i.e. no disagreement.
        let mut b = DagBuilder::new(1);
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        b.add_task(Task::new(2, ResourceVec::from_slice(&[0.6])));
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(1);
        let schedule = Schedule::from_placements(
            vec![
                spear_cluster::Placement::new(TaskId::new(0), 0, 2),
                spear_cluster::Placement::new(TaskId::new(1), 0, 2),
            ],
            2,
        );
        let tri = check_schedule(&dag, &spec, &schedule);
        assert!(tri.validate.is_err());
        assert!(tri.sim_replay.is_err());
        assert!(tri.timeline_replay.is_err());
        assert!(!tri.is_disagreement());
    }

    #[test]
    fn a_clean_multi_job_case_passes_three_ways() {
        let case = MultiCaseSpec {
            seed: 5,
            jobs: 3,
            tasks_per_job: 6,
            dims: 2,
            mean_gap: 4.0,
            scheduler: SchedulerKind::Tetris,
        };
        let (tri, report) = case.run().unwrap();
        assert!(tri.all_ok(), "{}", tri.summary());
        assert_eq!(report.completions().len(), 3);
        assert_eq!(report.unfinished(), 0);
    }

    #[test]
    fn an_early_start_multi_schedule_is_rejected() {
        // Schedule a job's task before the job arrives: the declarative
        // judge must flag arrival gating and the sim replay must refuse
        // (the multi-job state never exposes the task as ready early).
        let case = MultiCaseSpec {
            seed: 9,
            jobs: 2,
            tasks_per_job: 4,
            dims: 1,
            mean_gap: 20.0,
            scheduler: SchedulerKind::Sjf,
        };
        let queue = case.queue();
        let spec = case.cluster();
        let late = queue.span(1);
        assert!(late.arrival > 0, "seed must produce a staggered stream");
        let schedule = SjfScheduler::new().schedule_multi(&queue, &spec).unwrap();
        let mut placements = schedule.placements().to_vec();
        // Pull every late-job task forward by its arrival offset.
        for p in &mut placements {
            if p.task.index() >= late.first_task {
                p.start = p.start.saturating_sub(late.arrival);
                p.finish = p.finish.saturating_sub(late.arrival);
            }
        }
        let makespan = placements.iter().map(|p| p.finish).max().unwrap();
        let corrupted = Schedule::from_placements(placements, makespan);
        let tri = check_multi_schedule(&queue, &spec, &corrupted);
        assert!(tri.validate.is_err(), "{}", tri.summary());
        assert!(tri.sim_replay.is_err(), "{}", tri.summary());
    }

    #[test]
    fn multi_corpus_is_deterministic_and_covers_the_roster() {
        let a = multi_corpus(30, 3);
        let b = multi_corpus(30, 3);
        assert_eq!(a, b);
        for kind in SchedulerKind::ALL {
            assert!(
                a.iter().any(|c| c.scheduler == kind),
                "{} missing",
                kind.name()
            );
        }
    }

    #[test]
    fn corpus_is_deterministic_and_covers_the_roster() {
        let a = corpus(64, 1);
        let b = corpus(64, 1);
        assert_eq!(a, b);
        for kind in SchedulerKind::ALL {
            assert!(
                a.iter().any(|c| c.scheduler == kind),
                "{} missing",
                kind.name()
            );
        }
        assert!(a.iter().any(|c| c.epsilon_jitter));
        assert!(a.iter().any(|c| !c.epsilon_jitter));
    }

    #[test]
    fn a_clean_hetero_case_passes_three_ways() {
        let case = HeteroCaseSpec {
            seed: 7,
            num_tasks: 10,
            dims: 2,
            machines: 3,
            bandwidth: 2,
            mode: TransferMode::Direct,
            scheduler: SchedulerKind::Tetris,
        };
        let tri = case.run().unwrap();
        assert!(tri.all_ok(), "{}", tri.summary());
        assert!(!tri.is_disagreement());
    }

    #[test]
    fn a_transfer_violating_hetero_schedule_is_rejected_coherently() {
        // A two-task chain split across machines, with the child starting
        // the instant its parent finishes — ignoring the transfer window.
        // All three judges must re-derive the delay and reject.
        let mut b = DagBuilder::new(1);
        let parent = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        let child = b.add_task(Task::new(2, ResourceVec::from_slice(&[0.5])));
        b.add_edge(parent, child).unwrap();
        let dag = b.build().unwrap();
        let machines = MachineSet::uniform(
            2,
            ResourceVec::from_slice(&[1.0]),
            1,
            TransferMode::Direct,
            3,
            8,
        )
        .unwrap();
        assert!(machines.edge_delay(0, 1, 0, 1) > 0);
        let spec = ClusterSpec::hetero(machines).unwrap();
        let schedule = Schedule::from_placements(
            vec![
                spear_cluster::Placement {
                    task: parent,
                    start: 0,
                    finish: 2,
                    machine: 0,
                },
                spear_cluster::Placement {
                    task: child,
                    start: 2,
                    finish: 4,
                    machine: 1,
                },
            ],
            4,
        );
        let tri = check_schedule(&dag, &spec, &schedule);
        assert!(tri.validate.is_err(), "{}", tri.summary());
        assert!(tri.sim_replay.is_err(), "{}", tri.summary());
        assert!(tri.timeline_replay.is_err(), "{}", tri.summary());
        assert!(!tri.is_disagreement());
    }

    #[test]
    fn hetero_corpus_is_deterministic_and_covers_the_roster() {
        let a = hetero_corpus(40, 4);
        assert_eq!(a, hetero_corpus(40, 4));
        for kind in SchedulerKind::ALL {
            assert!(
                a.iter().any(|c| c.scheduler == kind),
                "{} missing",
                kind.name()
            );
        }
        assert!(a.iter().any(|c| c.mode == TransferMode::Direct));
        assert!(a.iter().any(|c| c.mode == TransferMode::ViaMaster));
        assert!(a.iter().any(|c| c.machines == 2));
        assert!(a.iter().any(|c| c.machines == 3));
    }

    #[test]
    fn hetero_fixture_round_trips_the_machine_set() {
        let case = HeteroCaseSpec {
            seed: 11,
            num_tasks: 6,
            dims: 1,
            machines: 2,
            bandwidth: 4,
            mode: TransferMode::ViaMaster,
            scheduler: SchedulerKind::Sjf,
        };
        let dag = case.dag();
        let spec = case.cluster();
        let fixture = Fixture::from_parts(
            "hetero-round-trip",
            "serialization test",
            case.scheduler,
            case.seed,
            &dag,
            &spec,
        );
        let parsed = Fixture::from_json(&fixture.to_json()).unwrap();
        assert_eq!(parsed, fixture);
        assert_eq!(parsed.cluster().num_machines(), 2);
        let tri = parsed.verify();
        assert!(tri.all_ok(), "{}", tri.summary());
    }

    fn faulty_case(seed: u64, profile: FaultProfile) -> FaultCaseSpec {
        FaultCaseSpec {
            seed,
            num_tasks: 12,
            dims: 2,
            scheduler: SchedulerKind::Tetris,
            profile,
        }
    }

    #[test]
    fn a_run_with_real_failures_and_stragglers_passes_three_ways() {
        let case = faulty_case(
            7,
            FaultProfile {
                fail_rate: 0.3,
                straggler_rate: 0.3,
                straggler_factor: 2.0,
                max_retries: 5,
            },
        );
        let dag = case.dag();
        let spec = case.cluster();
        let planned = case
            .scheduler
            .build(case.seed, case.dims)
            .schedule(&dag, &spec)
            .unwrap();
        let plan = case.plan();
        let run = execute_under_faults(&dag, &spec, &planned, &plan).unwrap();
        assert!(
            run.failures > 0 && run.straggles > 0,
            "seed must actually inject faults (got {} failures, {} straggles)",
            run.failures,
            run.straggles
        );
        let tri = check_faulty_run(&dag, &spec, &planned, &plan, &run);
        assert!(tri.all_ok(), "{}", tri.summary());
        assert!(run.makespan >= planned.makespan());
    }

    #[test]
    fn a_null_profile_leaves_execution_fault_free() {
        let case = faulty_case(5, FaultProfile::none());
        let dag = case.dag();
        let spec = case.cluster();
        let planned = case
            .scheduler
            .build(case.seed, case.dims)
            .schedule(&dag, &spec)
            .unwrap();
        let plan = case.plan();
        assert!(plan.is_none());
        let run = execute_under_faults(&dag, &spec, &planned, &plan).unwrap();
        assert_eq!((run.failures, run.straggles), (0, 0));
        assert!(run.failed_runs.is_empty());
        let tri = check_faulty_run(&dag, &spec, &planned, &plan, &run);
        assert!(tri.all_ok(), "{}", tri.summary());
    }

    #[test]
    fn a_tampered_faulty_run_is_rejected_coherently() {
        let case = faulty_case(7, FaultProfile::with_rate(0.2));
        let dag = case.dag();
        let spec = case.cluster();
        let planned = case
            .scheduler
            .build(case.seed, case.dims)
            .schedule(&dag, &spec)
            .unwrap();
        let plan = case.plan();
        let run = execute_under_faults(&dag, &spec, &planned, &plan).unwrap();
        // Stretch the latest-finishing placement by one slot: the
        // declarative judge sees a duration off its draw, the operational
        // judge sees divergent placements, the occupancy judge sees the
        // wrong interval length — all three reject, no disagreement.
        let mut placements = run.schedule.placements().to_vec();
        let worst = (0..placements.len())
            .max_by_key(|&i| placements[i].finish)
            .unwrap();
        placements[worst].finish += 1;
        let makespan = placements.iter().map(|p| p.finish).max().unwrap();
        let mut bad = run.clone();
        bad.schedule = Schedule::from_placements(placements, makespan);
        bad.makespan = makespan;
        let tri = check_faulty_run(&dag, &spec, &planned, &plan, &bad);
        assert!(tri.validate.is_err(), "{}", tri.summary());
        assert!(tri.sim_replay.is_err(), "{}", tri.summary());
        assert!(tri.timeline_replay.is_err(), "{}", tri.summary());
        assert!(!tri.is_disagreement());
    }

    #[test]
    fn deterministic_exhaustion_is_a_legal_case_outcome() {
        let case = faulty_case(
            3,
            FaultProfile {
                fail_rate: 1.0,
                straggler_rate: 0.0,
                straggler_factor: 1.0,
                max_retries: 0,
            },
        );
        assert_eq!(case.run().unwrap(), None);
    }

    #[test]
    fn fault_corpus_is_deterministic_and_covers_the_roster() {
        let a = fault_corpus(30, 2);
        assert_eq!(a, fault_corpus(30, 2));
        for kind in SchedulerKind::ALL {
            assert!(
                a.iter().any(|c| c.scheduler == kind),
                "{} missing",
                kind.name()
            );
        }
        assert!(a.iter().all(|c| !c.profile.is_none()));
    }

    #[test]
    fn fixture_json_round_trips_sub_epsilon_demands() {
        let case = CaseSpec {
            seed: 3,
            num_tasks: 6,
            dims: 1,
            scheduler: SchedulerKind::Sjf,
            epsilon_jitter: true,
        };
        let dag = case.dag();
        let fixture = Fixture::from_parts(
            "round-trip",
            "serialization test",
            case.scheduler,
            case.seed,
            &dag,
            &case.cluster(),
        );
        let parsed = Fixture::from_json(&fixture.to_json()).unwrap();
        assert_eq!(parsed, fixture);
        // Bit-exact demands survive the JSON round trip.
        for (a, b) in parsed.tasks.iter().zip(&fixture.tasks) {
            for (x, y) in a.demand.iter().zip(&b.demand) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(parsed.dag().len(), dag.len());
    }

    #[test]
    fn shrinking_keeps_the_failure_and_minimizes() {
        let case = CaseSpec {
            seed: 11,
            num_tasks: 12,
            dims: 1,
            scheduler: SchedulerKind::Tetris,
            epsilon_jitter: false,
        };
        let dag = case.dag();
        // Pretend the bug is "contains a task with runtime >= 2".
        let fails = |d: &Dag| d.tasks().iter().any(|t| t.runtime() >= 2);
        if !fails(&dag) {
            return; // seed produced all-1 runtimes; nothing to shrink
        }
        let small = shrink_dag(&dag, fails);
        assert!(fails(&small));
        assert_eq!(small.len(), 1, "minimal witness is a single task");
    }
}
