//! Recording handles: the per-worker sink [`Obs`] and the instruments it
//! hands out. Without the `enabled` feature every type here is zero-sized
//! and every method an empty inline function.

#[cfg(feature = "enabled")]
use std::sync::Arc;
#[cfg(feature = "enabled")]
use std::time::Instant;

#[cfg(feature = "enabled")]
use crate::cell::{CounterCell, GaugeCell, HistCell, SinkInner};

/// A per-worker metric sink. Obtain one from
/// [`MetricsRegistry::sink`](crate::MetricsRegistry::sink) (live) or
/// [`Obs::noop`] (inert); clone it freely — clones share the same sink.
///
/// Creating instruments locks the sink's registry briefly (setup path);
/// recording through the returned handles is lock-free.
#[derive(Clone, Default)]
pub struct Obs {
    #[cfg(feature = "enabled")]
    pub(crate) sink: Option<Arc<SinkInner>>,
}

impl Obs {
    /// An inert sink: every instrument it creates discards its samples.
    #[must_use]
    pub fn noop() -> Obs {
        Obs::default()
    }

    /// Whether samples recorded through this sink are kept anywhere.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.sink.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// A monotone counter named `name`, created on first use. Calling
    /// again with the same name returns a handle to the same cell.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        #[cfg(feature = "enabled")]
        {
            Counter {
                cell: self.sink.as_ref().map(|s| s.counter(name)),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Counter {}
        }
    }

    /// A gauge named `name` (last value plus running min/max/mean).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        #[cfg(feature = "enabled")]
        {
            Gauge {
                cell: self.sink.as_ref().map(|s| s.gauge(name)),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Gauge {}
        }
    }

    /// A histogram named `name` with the crate-wide fixed log-spaced
    /// buckets (see [`crate::HIST_BUCKETS`]).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        #[cfg(feature = "enabled")]
        {
            Histogram {
                cell: self.sink.as_ref().map(|s| s.hist(name)),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Histogram {}
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

macro_rules! opaque_debug {
    ($($ty:ident),*) => {$(
        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(stringify!($ty))
            }
        }
    )*};
}
opaque_debug!(Counter, Gauge, Histogram, Span);

/// Monotone counter handle. Cheap to clone; clones share the cell.
#[derive(Clone, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if let Some(c) = &self.cell {
            c.add(n);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// Gauge handle: records point-in-time values (occupancy, loss, …).
#[derive(Clone, Default)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// Records `v` as the gauge's current value.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "enabled")]
        if let Some(c) = &self.cell {
            c.set(v);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }
}

/// Histogram handle over `u64` samples; callers pick the unit
/// (nanoseconds for timings, plain counts for depths and sizes).
#[derive(Clone, Default)]
pub struct Histogram {
    #[cfg(feature = "enabled")]
    cell: Option<Arc<HistCell>>,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if let Some(c) = &self.cell {
            c.record(v);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Starts a scoped timer; when the returned [`Span`] drops, the
    /// elapsed wall time in nanoseconds is recorded into this histogram.
    #[must_use]
    pub fn start_span(&self) -> Span {
        #[cfg(feature = "enabled")]
        {
            Span {
                inner: self.cell.as_ref().map(|c| (Instant::now(), Arc::clone(c))),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Span {}
        }
    }
}

/// Scoped wall-time timer; records its lifetime in nanoseconds into the
/// histogram it was started from when dropped. Inert handles never call
/// `Instant::now`, so disabled builds pay nothing.
#[derive(Default)]
pub struct Span {
    #[cfg(feature = "enabled")]
    inner: Option<(Instant, Arc<HistCell>)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((start, cell)) = self.inner.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            cell.record(nanos);
        }
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn noop_handles_record_nothing() {
        let obs = super::Obs::noop();
        assert!(!obs.is_enabled());
        obs.counter("x").add(5);
        obs.gauge("y").set(1.0);
        obs.histogram("z").record(9);
        drop(obs.histogram("z").start_span());
    }

    #[test]
    fn handles_dedup_by_name_within_a_sink() {
        let registry = MetricsRegistry::new();
        let obs = registry.sink("w");
        obs.counter("a").add(1);
        obs.counter("a").add(2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("a"), Some(3));
        assert_eq!(snap.metrics.len(), 1);
    }

    #[test]
    fn span_records_into_histogram() {
        let registry = MetricsRegistry::new();
        let obs = registry.sink("w");
        let hist = obs.histogram("t");
        {
            let _span = hist.start_span();
        }
        let snap = registry.snapshot();
        assert_eq!(snap.histogram_count("t"), Some(1));
    }
}
