//! Snapshot exporters: JSON Lines (one self-describing object per
//! metric) and the Prometheus text exposition format. Hand-rolled so the
//! crate stays dependency-free; metric names are workspace-controlled
//! but escaped anyway.

use std::fmt::Write as _;

use crate::bucket_upper_bound;
use crate::snapshot::{MetricValue, MetricsSnapshot};

impl MetricsSnapshot {
    /// Renders the snapshot as JSON Lines: one object per metric with a
    /// `metric` name, a `kind` tag, and kind-specific fields. Histogram
    /// buckets are `{"le": inclusive_upper_bound_or_null, "count": n}`
    /// with empty buckets omitted.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            match m {
                MetricValue::Counter { name, value } => {
                    let _ = writeln!(
                        out,
                        "{{\"metric\":{},\"kind\":\"counter\",\"value\":{value}}}",
                        json_string(name)
                    );
                }
                MetricValue::Gauge {
                    name,
                    last,
                    min,
                    max,
                    sum,
                    count,
                } => {
                    let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                    let _ = writeln!(
                        out,
                        "{{\"metric\":{},\"kind\":\"gauge\",\"last\":{},\"min\":{},\"max\":{},\"mean\":{},\"count\":{count}}}",
                        json_string(name),
                        json_f64(*last),
                        json_f64(*min),
                        json_f64(*max),
                        json_f64(mean),
                    );
                }
                MetricValue::Histogram {
                    name,
                    count,
                    sum,
                    min,
                    max,
                    buckets,
                } => {
                    let _ = write!(
                        out,
                        "{{\"metric\":{},\"kind\":\"histogram\",\"count\":{count},\"sum\":{sum},\"min\":{min},\"max\":{max},\"buckets\":[",
                        json_string(name)
                    );
                    for (i, (bucket, n)) in buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        match bucket_upper_bound(*bucket) {
                            Some(le) => {
                                let _ = write!(out, "{{\"le\":{le},\"count\":{n}}}");
                            }
                            None => {
                                let _ = write!(out, "{{\"le\":null,\"count\":{n}}}");
                            }
                        }
                    }
                    out.push_str("]}\n");
                }
            }
        }
        out
    }

    /// Renders the snapshot as a single JSON document: an object with a
    /// `metrics` array holding the same per-metric objects [`to_jsonl`]
    /// emits line by line. This is the shape `bench_hotpath` folds into
    /// `BENCH_mcts.json`.
    ///
    /// [`to_jsonl`]: MetricsSnapshot::to_jsonl
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, line) in self.to_jsonl().lines().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(line);
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Names are prefixed with `spear_` and sanitized to the Prometheus
    /// charset; histogram buckets are emitted cumulatively with a final
    /// `+Inf` bucket as the format requires.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let name = prom_name(m.name());
            match m {
                MetricValue::Counter { value, .. } => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {value}");
                }
                MetricValue::Gauge { last, .. } => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", prom_f64(*last));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                    ..
                } => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for (bucket, n) in buckets {
                        cumulative += n;
                        if let Some(le) = bucket_upper_bound(*bucket) {
                            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{name}_sum {sum}");
                    let _ = writeln!(out, "{name}_count {count}");
                }
            }
        }
        out
    }
}

/// Quotes and escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an f64 as a JSON value; non-finite values become `null`
/// (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Formats an f64 for Prometheus, which does accept NaN and +/-Inf.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Maps a dotted metric name onto the Prometheus charset with a
/// workspace prefix: `mcts.decision_ns` → `spear_mcts_decision_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("spear_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: vec![
                MetricValue::Counter {
                    name: "sim.admissions".to_string(),
                    value: 12,
                },
                MetricValue::Gauge {
                    name: "rl.mean_entropy".to_string(),
                    last: 0.5,
                    min: 0.25,
                    max: 0.75,
                    sum: 1.5,
                    count: 3,
                },
                MetricValue::Histogram {
                    name: "mcts.decision_ns".to_string(),
                    count: 3,
                    sum: 2100,
                    min: 100,
                    max: 1100,
                    buckets: vec![(6, 1), (10, 2)],
                },
            ],
        }
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let jsonl = sample().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"metric\":\"sim.admissions\",\"kind\":\"counter\",\"value\":12}"
        );
        assert!(lines[1].contains("\"kind\":\"gauge\""));
        assert!(lines[1].contains("\"mean\":0.5"));
        assert!(
            lines[2].contains("\"buckets\":[{\"le\":127,\"count\":1},{\"le\":2047,\"count\":2}]")
        );
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_inf() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE spear_mcts_decision_ns histogram"));
        assert!(prom.contains("spear_mcts_decision_ns_bucket{le=\"127\"} 1"));
        assert!(prom.contains("spear_mcts_decision_ns_bucket{le=\"2047\"} 3"));
        assert!(prom.contains("spear_mcts_decision_ns_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("spear_mcts_decision_ns_sum 2100"));
        assert!(prom.contains("spear_mcts_decision_ns_count 3"));
        assert!(prom.contains("spear_sim_admissions 12"));
        assert!(prom.contains("spear_rl_mean_entropy 0.5"));
    }

    #[test]
    fn json_document_wraps_the_same_objects() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("{\"metric\":\"sim.admissions\",\"kind\":\"counter\",\"value\":12}"));
        assert_eq!(json.matches("\"metric\":").count(), 3);
        assert_eq!(MetricsSnapshot::default().to_json(), "{\"metrics\":[]}");
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
    }

    #[test]
    fn empty_snapshot_exports_empty_strings() {
        let snap = MetricsSnapshot::default();
        assert!(snap.to_jsonl().is_empty());
        assert!(snap.to_prometheus().is_empty());
    }
}
