//! Zero-cost-when-disabled observability for the Spear workspace.
//!
//! The crate provides four instrument kinds — [`Counter`], [`Gauge`],
//! [`Histogram`] (fixed log-spaced buckets) and scoped [`Span`] timers —
//! recorded into lock-free per-worker sinks ([`Obs`]) that a
//! [`MetricsRegistry`] merges at report time into a [`MetricsSnapshot`]
//! with JSONL and Prometheus-text exporters.
//!
//! # Zero-cost argument
//!
//! Everything hot is gated on the `enabled` cargo feature:
//!
//! * **Compile time** — without `enabled`, every handle is a zero-sized
//!   struct and every recording method is an empty `#[inline]` function,
//!   so instrumented call sites compile to exactly the code they would be
//!   without instrumentation. Downstream crates expose this as an `obs`
//!   feature forwarding to `spear-obs/enabled`.
//! * **Run time** — with `enabled` compiled in, a handle detached from any
//!   sink (from [`Obs::noop`] or [`MetricsRegistry::disabled`]) is an
//!   `Option::None` behind one predictable branch.
//!
//! Recording never takes a lock: each worker owns its sink and cells are
//! plain relaxed atomics, so sinks can also be shared across threads when
//! convenient. Registration (handle creation) locks briefly and is meant
//! for setup paths only.
//!
//! # Example
//!
//! ```
//! use spear_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let obs = registry.sink("worker-0");
//! let admitted = obs.counter("sim.admissions");
//! admitted.add(3);
//! let snapshot = registry.snapshot();
//! if spear_obs::compiled() {
//!     assert_eq!(snapshot.counter_value("sim.admissions"), Some(3));
//!     assert!(snapshot.to_jsonl().contains("\"sim.admissions\""));
//! } else {
//!     // Built without the `enabled` feature: everything is inert.
//!     assert!(snapshot.metrics.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "enabled")]
pub(crate) mod cell;
mod export;
mod handles;
mod registry;
mod snapshot;

pub use handles::{Counter, Gauge, Histogram, Obs, Span};
pub use registry::MetricsRegistry;
pub use snapshot::{MetricValue, MetricsSnapshot};

/// Number of log-spaced histogram buckets. Bucket `0` covers `[0, 2)` and
/// bucket `i >= 1` covers `[2^i, 2^(i+1))`; the last bucket absorbs
/// everything from `2^47` up, which in nanoseconds is ≈ 39 hours.
pub const HIST_BUCKETS: usize = 48;

/// Whether the `enabled` feature was compiled in. `false` means every
/// instrument in the process is a no-op and snapshots are always empty.
#[must_use]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

/// The bucket a histogram value falls into: `floor(log2(v))` clamped to
/// the fixed bucket range.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        (63 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `index`, or `None` for the open-ended
/// last bucket.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    if index + 1 >= HIST_BUCKETS {
        None
    } else {
        Some((1u64 << (index + 1)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log_spaced() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_contiguous() {
        for i in 0..HIST_BUCKETS - 1 {
            let hi = bucket_upper_bound(i).unwrap();
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1);
        }
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), None);
    }
}
