//! The registry that owns per-worker sinks and merges them into
//! [`MetricsSnapshot`]s at report time.

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::Ordering;
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex};

#[cfg(feature = "enabled")]
use crate::cell::SinkInner;
use crate::handles::Obs;
#[cfg(feature = "enabled")]
use crate::snapshot::MetricValue;
use crate::snapshot::MetricsSnapshot;

#[cfg(feature = "enabled")]
struct RegistryInner {
    sinks: Mutex<Vec<Arc<SinkInner>>>,
}

/// Owns every per-worker sink and merges them at report time. Cloning is
/// cheap (an `Arc` bump) and clones share the same sinks, so a registry
/// can be handed to worker factories and report code alike.
///
/// Without the `enabled` feature, or when built with
/// [`MetricsRegistry::disabled`], the registry is inert: sinks are no-ops
/// and snapshots are empty.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// A live registry when the `enabled` feature is compiled in, an
    /// inert one otherwise.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        #[cfg(feature = "enabled")]
        {
            MetricsRegistry {
                inner: Some(Arc::new(RegistryInner {
                    sinks: Mutex::new(Vec::new()),
                })),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            MetricsRegistry::default()
        }
    }

    /// An inert registry regardless of compiled features: the runtime
    /// no-op path for callers that want instrumentation off.
    #[must_use]
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Whether sinks created from this registry record anything.
    #[must_use]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Creates and registers a new per-worker sink. `label` is
    /// diagnostic metadata (e.g. `"mcts-worker-3"`); metrics with the
    /// same name from different sinks merge at snapshot time.
    #[must_use]
    pub fn sink(&self, label: &str) -> Obs {
        #[cfg(feature = "enabled")]
        {
            match &self.inner {
                Some(inner) => {
                    let sink = Arc::new(SinkInner::new(label.to_string()));
                    inner
                        .sinks
                        .lock()
                        .expect("obs registry poisoned")
                        .push(Arc::clone(&sink));
                    Obs { sink: Some(sink) }
                }
                None => Obs::noop(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = label;
            Obs::noop()
        }
    }

    /// Merges every sink into a name-sorted snapshot. Counters sum;
    /// gauges and histograms combine their running statistics.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[cfg(feature = "enabled")]
        {
            match &self.inner {
                Some(inner) => merge(&inner.sinks.lock().expect("obs registry poisoned")),
                None => MetricsSnapshot::default(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            MetricsSnapshot::default()
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("active", &self.is_active())
            .finish()
    }
}

#[cfg(feature = "enabled")]
fn merge(sinks: &[Arc<SinkInner>]) -> MetricsSnapshot {
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<String, (f64, f64, f64, f64, u64)> = BTreeMap::new();
    let mut hists: BTreeMap<String, (u64, u64, u64, u64, Vec<u64>)> = BTreeMap::new();

    for sink in sinks {
        for c in sink.counters.lock().expect("obs sink poisoned").iter() {
            *counters.entry(c.name.clone()).or_insert(0) += c.value.load(Ordering::Relaxed);
        }
        for g in sink.gauges.lock().expect("obs sink poisoned").iter() {
            let count = g.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let last = f64::from_bits(g.last.load(Ordering::Relaxed));
            let min = f64::from_bits(g.min.load(Ordering::Relaxed));
            let max = f64::from_bits(g.max.load(Ordering::Relaxed));
            let sum = f64::from_bits(g.sum.load(Ordering::Relaxed));
            let entry = gauges.entry(g.name.clone()).or_insert((
                last,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                0,
            ));
            entry.0 = last;
            entry.1 = entry.1.min(min);
            entry.2 = entry.2.max(max);
            entry.3 += sum;
            entry.4 += count;
        }
        for h in sink.hists.lock().expect("obs sink poisoned").iter() {
            let count = h.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let entry = hists.entry(h.name.clone()).or_insert((
                0,
                0,
                u64::MAX,
                0,
                vec![0; crate::HIST_BUCKETS],
            ));
            entry.0 += count;
            entry.1 += h.sum.load(Ordering::Relaxed);
            entry.2 = entry.2.min(h.min.load(Ordering::Relaxed));
            entry.3 = entry.3.max(h.max.load(Ordering::Relaxed));
            for (slot, bucket) in entry.4.iter_mut().zip(h.buckets.iter()) {
                *slot += bucket.load(Ordering::Relaxed);
            }
        }
    }

    let mut metrics: Vec<MetricValue> = Vec::new();
    metrics.extend(
        counters
            .into_iter()
            .map(|(name, value)| MetricValue::Counter { name, value }),
    );
    metrics.extend(
        gauges
            .into_iter()
            .map(|(name, (last, min, max, sum, count))| MetricValue::Gauge {
                name,
                last,
                min,
                max,
                sum,
                count,
            }),
    );
    metrics.extend(
        hists.into_iter().map(
            |(name, (count, sum, min, max, buckets))| MetricValue::Histogram {
                name,
                count,
                sum,
                min,
                max,
                buckets: buckets
                    .into_iter()
                    .enumerate()
                    .filter(|(_, c)| *c > 0)
                    .collect(),
            },
        ),
    );
    metrics.sort_by(|a, b| a.name().cmp(b.name()).then(a.kind().cmp(b.kind())));
    MetricsSnapshot { metrics }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn merges_counters_across_sinks() {
        let registry = MetricsRegistry::new();
        let a = registry.sink("a");
        let b = registry.sink("b");
        a.counter("events").add(2);
        b.counter("events").add(3);
        b.counter("other").incr();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("events"), Some(5));
        assert_eq!(snap.counter_value("other"), Some(1));
    }

    #[test]
    fn merges_gauge_statistics() {
        let registry = MetricsRegistry::new();
        let a = registry.sink("a");
        let b = registry.sink("b");
        a.gauge("load").set(0.25);
        b.gauge("load").set(0.75);
        let snap = registry.snapshot();
        match &snap.metrics[0] {
            MetricValue::Gauge {
                min,
                max,
                sum,
                count,
                ..
            } => {
                assert_eq!(*min, 0.25);
                assert_eq!(*max, 0.75);
                assert_eq!(*sum, 1.0);
                assert_eq!(*count, 2);
            }
            other => panic!("expected gauge, got {other:?}"),
        }
    }

    #[test]
    fn merges_histogram_buckets() {
        let registry = MetricsRegistry::new();
        let a = registry.sink("a");
        let b = registry.sink("b");
        a.histogram("lat").record(1);
        a.histogram("lat").record(100);
        b.histogram("lat").record(100);
        let snap = registry.snapshot();
        match &snap.metrics[0] {
            MetricValue::Histogram {
                count,
                sum,
                min,
                max,
                buckets,
                ..
            } => {
                assert_eq!(*count, 3);
                assert_eq!(*sum, 201);
                assert_eq!(*min, 1);
                assert_eq!(*max, 100);
                assert_eq!(buckets, &vec![(0, 1), (crate::bucket_index(100), 2)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn disabled_registry_is_inert() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_active());
        let obs = registry.sink("w");
        assert!(!obs.is_enabled());
        obs.counter("x").add(7);
        assert!(registry.snapshot().metrics.is_empty());
    }

    #[test]
    fn unrecorded_instruments_are_omitted() {
        let registry = MetricsRegistry::new();
        let obs = registry.sink("w");
        let _g = obs.gauge("quiet");
        let _h = obs.histogram("quiet_h");
        obs.counter("loud").incr();
        let snap = registry.snapshot();
        // Counters report even at zero-after-touch; silent gauges and
        // histograms stay out of the snapshot.
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.counter_value("loud"), Some(1));
    }
}
