//! Report-time merged view of every sink in a registry. Always compiled
//! (with the `enabled` feature off, snapshots are simply empty) so
//! exporters and consumers need no feature gates.

/// One merged metric. Counters sum across sinks; gauges and histograms
/// merge their running statistics (min of mins, max of maxes, summed
/// counts and sums).
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter.
    Counter {
        /// Metric name.
        name: String,
        /// Total across all sinks.
        value: u64,
    },
    /// A gauge with running statistics over every recorded value.
    Gauge {
        /// Metric name.
        name: String,
        /// Most recently recorded value (from an arbitrary sink when
        /// several workers recorded it).
        last: f64,
        /// Smallest recorded value.
        min: f64,
        /// Largest recorded value.
        max: f64,
        /// Sum of recorded values.
        sum: f64,
        /// Number of recorded values.
        count: u64,
    },
    /// A histogram over `u64` samples with fixed log-spaced buckets.
    Histogram {
        /// Metric name.
        name: String,
        /// Number of recorded samples.
        count: u64,
        /// Sum of recorded samples.
        sum: u64,
        /// Smallest recorded sample.
        min: u64,
        /// Largest recorded sample.
        max: u64,
        /// Non-empty buckets as `(bucket_index, sample_count)` pairs,
        /// ascending by index; see [`crate::bucket_upper_bound`].
        buckets: Vec<(usize, u64)>,
    },
}

impl MetricValue {
    /// The metric's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            MetricValue::Counter { name, .. }
            | MetricValue::Gauge { name, .. }
            | MetricValue::Histogram { name, .. } => name,
        }
    }

    /// The metric kind as a lowercase static string.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter { .. } => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// A merged, name-sorted view of every metric in a
/// [`MetricsRegistry`](crate::MetricsRegistry) at one point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Merged metrics, sorted by name (kind breaks ties).
    pub metrics: Vec<MetricValue>,
}

impl MetricsSnapshot {
    /// The merged value of counter `name`, if it exists.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|m| match m {
            MetricValue::Counter { name: n, value } if n == name => Some(*value),
            _ => None,
        })
    }

    /// The last recorded value of gauge `name`, if it exists.
    #[must_use]
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find_map(|m| match m {
            MetricValue::Gauge { name: n, last, .. } if n == name => Some(*last),
            _ => None,
        })
    }

    /// The sample count of histogram `name`, if it exists.
    #[must_use]
    pub fn histogram_count(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|m| match m {
            MetricValue::Histogram { name: n, count, .. } if n == name => Some(*count),
            _ => None,
        })
    }

    /// Names of every metric whose name starts with `prefix`.
    #[must_use]
    pub fn names_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.metrics
            .iter()
            .map(MetricValue::name)
            .filter(|n| n.starts_with(prefix))
            .collect()
    }
}
