//! Atomic metric cells and the per-worker sink storage. Only compiled
//! with the `enabled` feature; the public handles in [`crate::handles`]
//! wrap these behind `Option<Arc<..>>`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{bucket_index, HIST_BUCKETS};

/// Monotone counter cell.
pub(crate) struct CounterCell {
    pub(crate) name: String,
    pub(crate) value: AtomicU64,
}

impl CounterCell {
    pub(crate) fn new(name: String) -> Self {
        CounterCell {
            name,
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }
}

/// Gauge cell: last value plus running min/max/sum/count so report-time
/// merges can show a distribution, not just whichever worker wrote last.
/// All f64 fields are stored as IEEE-754 bits in `AtomicU64`s.
pub(crate) struct GaugeCell {
    pub(crate) name: String,
    pub(crate) last: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl GaugeCell {
    pub(crate) fn new(name: String) -> Self {
        GaugeCell {
            name,
            last: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            sum: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn set(&self, v: f64) {
        self.last.store(v.to_bits(), Ordering::Relaxed);
        update_f64(&self.min, v, f64::min);
        update_f64(&self.max, v, f64::max);
        update_f64(&self.sum, v, |cur, x| cur + x);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// CAS-loop update of an f64 stored as bits. Gauge writes are not on the
/// simulation hot path, so the loop cost is acceptable.
fn update_f64(cell: &AtomicU64, v: f64, f: impl Fn(f64, f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur), v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Histogram cell with the crate-wide fixed log-spaced bucket layout.
pub(crate) struct HistCell {
    pub(crate) name: String,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    pub(crate) fn new(name: String) -> Self {
        HistCell {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }
}

use std::sync::Arc;

/// One worker's sink. Recording through previously created handles never
/// touches the mutexes — they only guard handle registration.
pub(crate) struct SinkInner {
    #[allow(dead_code)] // label is report-time metadata, read by snapshots later if needed
    pub(crate) label: String,
    pub(crate) counters: Mutex<Vec<Arc<CounterCell>>>,
    pub(crate) gauges: Mutex<Vec<Arc<GaugeCell>>>,
    pub(crate) hists: Mutex<Vec<Arc<HistCell>>>,
}

impl SinkInner {
    pub(crate) fn new(label: String) -> Self {
        SinkInner {
            label,
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            hists: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn counter(&self, name: &str) -> Arc<CounterCell> {
        let mut cells = self.counters.lock().expect("obs counter registry poisoned");
        if let Some(c) = cells.iter().find(|c| c.name == name) {
            return Arc::clone(c);
        }
        let cell = Arc::new(CounterCell::new(name.to_string()));
        cells.push(Arc::clone(&cell));
        cell
    }

    pub(crate) fn gauge(&self, name: &str) -> Arc<GaugeCell> {
        let mut cells = self.gauges.lock().expect("obs gauge registry poisoned");
        if let Some(c) = cells.iter().find(|c| c.name == name) {
            return Arc::clone(c);
        }
        let cell = Arc::new(GaugeCell::new(name.to_string()));
        cells.push(Arc::clone(&cell));
        cell
    }

    pub(crate) fn hist(&self, name: &str) -> Arc<HistCell> {
        let mut cells = self.hists.lock().expect("obs histogram registry poisoned");
        if let Some(c) = cells.iter().find(|c| c.name == name) {
            return Arc::clone(c);
        }
        let cell = Arc::new(HistCell::new(name.to_string()));
        cells.push(Arc::clone(&cell));
        cell
    }
}
