//! End-to-end observability tests over the real stack.
//!
//! These are the acceptance tests of the observability layer: attaching
//! metric sinks anywhere in the stack must never change a schedule or a
//! training outcome (bit-identity), and one instrumented run of
//! simulation + search + training must surface every metric family in
//! the exporters.
//!
//! The dev-dependencies pull the downstream crates in with their `obs`
//! features, so under `cargo test` the whole workspace is built with
//! recording compiled in — the strongest configuration to test. The
//! bit-identity assertions run identically (and still matter) when the
//! feature is off.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spear_cluster::env::{DecisionPolicy, EnvContext, EpisodeDriver, NoRng};
use spear_cluster::{Action, ClusterSpec, SimState};
use spear_dag::generator::LayeredDagSpec;
use spear_dag::Dag;
use spear_mcts::{MctsConfig, MctsScheduler, RootParallelMcts};
use spear_obs::{MetricsRegistry, Obs};
use spear_rl::pretrain::PretrainConfig;
use spear_rl::{pretrain, FeatureConfig, PolicyNetwork, ReinforceConfig, ReinforceTrainer};
use spear_sched::{CpScheduler, ObservedScheduler, Scheduler};

fn dag(seed: u64, tasks: usize) -> Dag {
    LayeredDagSpec {
        num_tasks: tasks,
        ..LayeredDagSpec::paper_training()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

fn mcts_config(budget: u64, seed: u64) -> MctsConfig {
    MctsConfig {
        initial_budget: budget,
        min_budget: (budget / 5).max(1),
        seed,
        ..MctsConfig::default()
    }
}

/// A trivial greedy policy for driving episodes directly.
struct FirstFit;

impl<R: rand::Rng + ?Sized> DecisionPolicy<R> for FirstFit {
    fn decide(
        &mut self,
        _ctx: &EnvContext<'_>,
        _state: &SimState,
        legal: &[Action],
        _rng: &mut R,
    ) -> Action {
        legal
            .iter()
            .copied()
            .find(|a| matches!(a, Action::Schedule(_)))
            .unwrap_or(Action::Process)
    }
}

#[test]
fn instrumented_episode_driver_is_bit_identical() {
    let dag = dag(11, 24);
    let spec = ClusterSpec::unit(2);
    let plain = EpisodeDriver::new(FirstFit)
        .run(&dag, &spec, &mut NoRng)
        .unwrap();
    let registry = MetricsRegistry::new();
    let observed = EpisodeDriver::new(FirstFit)
        .with_obs(&registry.sink("episodes"))
        .run(&dag, &spec, &mut NoRng)
        .unwrap();
    assert_eq!(plain, observed, "instrumentation changed the schedule");
    if spear_obs::compiled() {
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("sim.episodes"), Some(1));
        assert_eq!(snap.counter_value("sim.admissions"), Some(dag.len() as u64));
        assert_eq!(
            snap.gauge_last("sim.makespan"),
            Some(observed.makespan() as f64)
        );
    }
}

#[test]
fn instrumented_mcts_schedulers_are_bit_identical() {
    let dag = dag(5, 20);
    let spec = ClusterSpec::unit(2);

    let plain = MctsScheduler::pure(mcts_config(40, 7))
        .schedule(&dag, &spec)
        .unwrap();
    let registry = MetricsRegistry::new();
    let observed = MctsScheduler::pure(mcts_config(40, 7))
        .with_obs(&registry.sink("mcts"))
        .schedule(&dag, &spec)
        .unwrap();
    assert_eq!(plain, observed, "pure MCTS changed under instrumentation");

    let policy = PolicyNetwork::new(FeatureConfig::small(2), &mut StdRng::seed_from_u64(0));
    let plain_drl = MctsScheduler::drl(mcts_config(15, 7), policy.clone())
        .schedule(&dag, &spec)
        .unwrap();
    let observed_drl = MctsScheduler::drl(mcts_config(15, 7), policy)
        .with_obs(&registry.sink("mcts"))
        .schedule(&dag, &spec)
        .unwrap();
    assert_eq!(
        plain_drl, observed_drl,
        "DRL MCTS changed under instrumentation"
    );

    if spear_obs::compiled() {
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("mcts.episodes"), Some(2));
        assert!(snap.counter_value("mcts.iterations").unwrap() > 0);
        assert!(snap.counter_value("mcts.rollout_steps").unwrap() > 0);
        assert!(snap.histogram_count("mcts.decision_ns").unwrap() > 0);
        assert!(snap.histogram_count("mcts.tree_depth").unwrap() > 0);
        // The DRL run consulted the network (directly or via its cache).
        let probes = snap.counter_value("mcts.cache_hits").unwrap_or(0)
            + snap.counter_value("mcts.cache_misses").unwrap_or(0)
            + snap.counter_value("mcts.inference_skips").unwrap_or(0);
        assert!(probes > 0, "DRL run recorded no inference activity");
    }
}

#[test]
fn instrumented_training_is_bit_identical() {
    let spec = ClusterSpec::unit(2);
    let examples: Vec<Dag> = (0..2).map(|i| dag(20 + i, 12)).collect();
    let config = ReinforceConfig {
        epochs: 2,
        rollouts: 2,
        ..ReinforceConfig::default()
    };

    let run = |obs: Option<&Obs>| {
        let mut policy = PolicyNetwork::with_hidden(
            FeatureConfig::small(2),
            &[16],
            &mut StdRng::seed_from_u64(3),
        );
        let mut trainer = ReinforceTrainer::new(config.clone());
        if let Some(obs) = obs {
            trainer.set_obs(obs);
        }
        let curve = trainer
            .train(&mut policy, &examples, &spec, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let mut weights = Vec::new();
        policy.net().save(&mut weights).unwrap();
        (curve, weights)
    };

    let registry = MetricsRegistry::new();
    let sink = registry.sink("train");
    let (plain_curve, plain_weights) = run(None);
    let (obs_curve, obs_weights) = run(Some(&sink));
    assert_eq!(
        plain_curve, obs_curve,
        "curve changed under instrumentation"
    );
    assert_eq!(
        plain_weights, obs_weights,
        "weights changed under instrumentation"
    );

    if spear_obs::compiled() {
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("rl.epochs"), Some(2));
        assert!(snap.counter_value("rl.episodes").unwrap() > 0);
        assert!(snap.histogram_count("rl.episode_return").unwrap() > 0);
        assert!(snap.gauge_last("rl.grad_norm").unwrap() >= 0.0);
    }
}

#[test]
fn one_run_covers_every_metric_family_in_the_exporters() {
    if !spear_obs::compiled() {
        return; // Exporters have nothing to cover in a disabled build.
    }
    let registry = MetricsRegistry::new();
    let sink = registry.sink("all");
    let job = dag(2, 16);
    let spec = ClusterSpec::unit(2);

    // sim.* + sched.*: an instrumented baseline.
    ObservedScheduler::new(CpScheduler::new().with_obs(&sink), &sink)
        .schedule(&job, &spec)
        .unwrap();
    // mcts.*: an instrumented search.
    MctsScheduler::pure(mcts_config(20, 1))
        .with_obs(&sink)
        .schedule(&job, &spec)
        .unwrap();
    // rl.*: a tiny instrumented pre-training run.
    let mut policy =
        PolicyNetwork::with_hidden(FeatureConfig::small(2), &[8], &mut StdRng::seed_from_u64(1));
    let data = pretrain::build_dataset(&policy, std::slice::from_ref(&job), &spec).unwrap();
    let mut opt = spear_nn::RmsProp::new(1e-3, 0.9, 1e-9);
    pretrain::train_observed(
        &mut policy,
        &data,
        &mut opt,
        &PretrainConfig {
            epochs: 2,
            batch_size: 16,
        },
        &mut StdRng::seed_from_u64(2),
        &sink,
    );

    let snapshot = registry.snapshot();
    for family in ["sim.", "sched.", "mcts.", "rl."] {
        assert!(
            !snapshot.names_with_prefix(family).is_empty(),
            "no {family}* metrics in snapshot"
        );
    }

    let jsonl = snapshot.to_jsonl();
    for needle in [
        "\"metric\":\"sim.admissions\"",
        "\"metric\":\"sched.cp.schedule_ns\"",
        "\"metric\":\"mcts.iterations\"",
        "\"metric\":\"rl.pretrain_loss\"",
    ] {
        assert!(jsonl.contains(needle), "JSONL missing {needle}");
    }
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not an object: {line}"
        );
    }

    let prom = snapshot.to_prometheus();
    for needle in [
        "spear_sim_admissions",
        "spear_sched_cp_schedule_ns_bucket{le=\"+Inf\"}",
        "spear_mcts_iterations",
        "spear_rl_pretrain_loss",
    ] {
        assert!(prom.contains(needle), "Prometheus text missing {needle}");
    }
}

#[test]
fn parallel_workers_merge_into_one_snapshot() {
    let job = dag(4, 18);
    let spec = ClusterSpec::unit(2);
    let registry = MetricsRegistry::new();
    let mut parallel = RootParallelMcts::new(3, |seed| MctsScheduler::pure(mcts_config(15, seed)))
        .with_registry(&registry);
    let plain = RootParallelMcts::new(3, |seed| MctsScheduler::pure(mcts_config(15, seed)))
        .schedule(&job, &spec)
        .unwrap();
    let observed = parallel.schedule(&job, &spec).unwrap();
    assert_eq!(plain, observed, "registry changed the parallel result");
    if spear_obs::compiled() {
        let snap = registry.snapshot();
        // All three workers' episodes merged into the one counter.
        assert_eq!(snap.counter_value("mcts.episodes"), Some(3));
    }
}
