//! Property tests for the baseline schedulers: every scheduler must emit a
//! valid schedule within the theoretical bounds on any random DAG, and
//! deterministic schedulers must be reproducible.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use spear_cluster::ClusterSpec;
use spear_dag::generator::LayeredDagSpec;
use spear_dag::{Dag, TaskId};
use spear_sched::{
    execute_priority_order, CpScheduler, Graphene, RandomScheduler, Scheduler, SjfScheduler,
    TetrisScheduler,
};

fn random_dag(num_tasks: usize, seed: u64) -> Dag {
    LayeredDagSpec {
        num_tasks,
        min_width: 1,
        max_width: 4,
        ..LayeredDagSpec::paper_simulation()
    }
    .generate(&mut StdRng::seed_from_u64(seed))
}

fn all_schedulers(seed: u64) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(TetrisScheduler::new()),
        Box::new(SjfScheduler::new()),
        Box::new(CpScheduler::new()),
        Box::new(RandomScheduler::seeded(seed)),
        Box::new(Graphene::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every baseline produces a valid schedule whose makespan is between
    /// the lower bound and the serial upper bound.
    #[test]
    fn every_scheduler_is_valid_and_bounded(
        num_tasks in 1usize..35,
        dag_seed in any::<u64>(),
        rng_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        for mut s in all_schedulers(rng_seed) {
            let schedule = s.schedule(&dag, &spec).unwrap();
            schedule.validate(&dag, &spec).unwrap();
            prop_assert!(
                schedule.makespan() >= dag.makespan_lower_bound(spec.capacity()),
                "{} beat the lower bound",
                s.name()
            );
            prop_assert!(
                schedule.makespan() <= dag.total_work(),
                "{} exceeded serial work",
                s.name()
            );
        }
    }

    /// Deterministic schedulers reproduce the same schedule on repeat runs.
    #[test]
    fn deterministic_schedulers_are_reproducible(
        num_tasks in 1usize..25,
        dag_seed in any::<u64>(),
    ) {
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        for make in [
            || Box::new(TetrisScheduler::new()) as Box<dyn Scheduler>,
            || Box::new(SjfScheduler::new()) as Box<dyn Scheduler>,
            || Box::new(CpScheduler::new()) as Box<dyn Scheduler>,
            || Box::new(Graphene::new()) as Box<dyn Scheduler>,
        ] {
            let a = make().schedule(&dag, &spec).unwrap();
            let b = make().schedule(&dag, &spec).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    /// `execute_priority_order` yields a valid schedule for any permutation
    /// of the task set.
    #[test]
    fn any_order_executes_validly(
        num_tasks in 1usize..30,
        dag_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        let dag = random_dag(num_tasks, dag_seed);
        let spec = ClusterSpec::unit(2);
        let mut order: Vec<TaskId> = dag.task_ids().collect();
        order.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let s = execute_priority_order(&dag, &spec, &order).unwrap();
        s.validate(&dag, &spec).unwrap();
        prop_assert!(s.makespan() <= dag.total_work());
    }

    /// On a serial chain every scheduler achieves exactly the critical
    /// path (there is nothing to decide).
    #[test]
    fn chain_dag_is_always_optimal(
        runtimes in prop::collection::vec(1u64..15, 1..12),
        rng_seed in any::<u64>(),
    ) {
        use spear_dag::{DagBuilder, ResourceVec, Task};
        let mut b = DagBuilder::new(2);
        let ids: Vec<TaskId> = runtimes
            .iter()
            .map(|&rt| b.add_task(Task::new(rt, ResourceVec::from_slice(&[0.5, 0.5]))))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let dag = b.build().unwrap();
        let spec = ClusterSpec::unit(2);
        let total: u64 = runtimes.iter().sum();
        for mut s in all_schedulers(rng_seed) {
            let schedule = s.schedule(&dag, &spec).unwrap();
            prop_assert_eq!(schedule.makespan(), total, "{} suboptimal on chain", s.name());
        }
    }
}
