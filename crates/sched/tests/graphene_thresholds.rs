//! Hand-computed Graphene troublesome-set tests over the paper's four
//! runtime thresholds, plus a determinism property: the whole pipeline
//! (DAG generation seed → Graphene sweep → schedule) is a pure function
//! of its inputs, so rerunning it must reproduce the schedule bit for
//! bit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spear_cluster::ClusterSpec;
use spear_dag::generator::LayeredDagSpec;
use spear_dag::{Dag, DagBuilder, ResourceVec, Task, TaskId};
use spear_sched::{Graphene, GrapheneConfig, Scheduler};

fn ids(indices: &[usize]) -> Vec<TaskId> {
    indices.iter().map(|&i| TaskId::new(i)).collect()
}

/// A chain whose runtimes are chosen so each paper threshold cuts at a
/// different point. Max runtime is 10, so the cutoffs are exactly
/// 2 / 4 / 6 / 8.
///
/// | task | 0 | 1 | 2 | 3 | 4 | 5 | 6 |
/// |------|---|---|---|---|---|---|---|
/// | rt   | 10| 9 | 7 | 5 | 3 | 2 | 1 |
fn fixture() -> Dag {
    let mut b = DagBuilder::new(2);
    let runtimes = [10u64, 9, 7, 5, 3, 2, 1];
    let tasks: Vec<TaskId> = runtimes
        .iter()
        .map(|&rt| b.add_task(Task::new(rt, ResourceVec::from_slice(&[0.3, 0.2]))))
        .collect();
    // A light dependency spine (0→2→4→6) keeps this a real DAG without
    // constraining which tasks are troublesome.
    b.add_edge(tasks[0], tasks[2]).unwrap();
    b.add_edge(tasks[2], tasks[4]).unwrap();
    b.add_edge(tasks[4], tasks[6]).unwrap();
    b.build().unwrap()
}

#[test]
fn troublesome_sets_match_hand_computation_at_each_threshold() {
    let dag = fixture();
    let spec = ClusterSpec::unit(2);
    let g = Graphene::new();
    assert_eq!(dag.max_runtime(), 10);

    // threshold 0.2 → cutoff 2: everything with runtime ≥ 2.
    assert_eq!(
        g.troublesome_tasks(&dag, &spec, 0.2),
        ids(&[0, 1, 2, 3, 4, 5])
    );
    // threshold 0.4 → cutoff 4: runtimes 10, 9, 7, 5.
    assert_eq!(g.troublesome_tasks(&dag, &spec, 0.4), ids(&[0, 1, 2, 3]));
    // threshold 0.6 → cutoff 6: runtimes 10, 9, 7.
    assert_eq!(g.troublesome_tasks(&dag, &spec, 0.6), ids(&[0, 1, 2]));
    // threshold 0.8 → cutoff 8: runtimes 10, 9.
    assert_eq!(g.troublesome_tasks(&dag, &spec, 0.8), ids(&[0, 1]));
}

#[test]
fn boundary_runtime_is_troublesome() {
    // `runtime >= threshold × max` is inclusive: a task exactly at the
    // cutoff belongs to the troublesome set.
    let mut b = DagBuilder::new(1);
    b.add_task(Task::new(10, ResourceVec::from_slice(&[0.5])));
    b.add_task(Task::new(4, ResourceVec::from_slice(&[0.5])));
    let dag = b.build().unwrap();
    let spec = ClusterSpec::unit(1);
    let g = Graphene::new();
    assert_eq!(g.troublesome_tasks(&dag, &spec, 0.4), ids(&[0, 1]));
    // Just above the boundary excludes it.
    assert_eq!(g.troublesome_tasks(&dag, &spec, 0.41), ids(&[0]));
}

#[test]
fn demand_threshold_widens_every_runtime_set() {
    let dag = fixture();
    let spec = ClusterSpec::unit(2);
    let plain = Graphene::new();
    let with_demand = Graphene::with_config(GrapheneConfig {
        runtime_thresholds: vec![0.2, 0.4, 0.6, 0.8],
        demand_threshold: Some(0.25),
    });
    for thr in [0.2, 0.4, 0.6, 0.8] {
        let a = plain.troublesome_tasks(&dag, &spec, thr);
        let b = with_demand.troublesome_tasks(&dag, &spec, thr);
        assert!(b.len() >= a.len(), "threshold {thr}");
        // Every fixture task has demand fraction 0.3 ≥ 0.25, so the
        // demand criterion marks all of them.
        assert_eq!(b.len(), dag.len(), "threshold {thr}");
    }
}

#[test]
fn winning_choice_comes_from_the_sweep() {
    let dag = LayeredDagSpec::paper_training().generate(&mut StdRng::seed_from_u64(17));
    let spec = ClusterSpec::unit(2);
    let (schedule, choice) = Graphene::new().schedule_with_details(&dag, &spec).unwrap();
    schedule.validate(&dag, &spec).unwrap();
    assert!([0.2, 0.4, 0.6, 0.8].contains(&choice.threshold));
    assert_eq!(
        choice.troublesome,
        Graphene::new()
            .troublesome_tasks(&dag, &spec, choice.threshold)
            .len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same generation seed ⇒ bit-identical Graphene schedule (the whole
    /// sweep is deterministic; there is no hidden RNG).
    #[test]
    fn graphene_is_deterministic(seed in 0u64..1_000, tasks in 6usize..24) {
        let gen = LayeredDagSpec { num_tasks: tasks, ..LayeredDagSpec::paper_training() };
        let dag_a = gen.generate(&mut StdRng::seed_from_u64(seed));
        let dag_b = gen.generate(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&dag_a, &dag_b);

        let spec = ClusterSpec::unit(2);
        let s1 = Graphene::new().schedule(&dag_a, &spec).unwrap();
        let s2 = Graphene::new().schedule(&dag_b, &spec).unwrap();
        prop_assert_eq!(&s1, &s2);
        s1.validate(&dag_a, &spec).unwrap();

        // The sweep never loses to any single threshold it contains.
        for thr in [0.2, 0.4, 0.6, 0.8] {
            let single = Graphene::with_config(GrapheneConfig {
                runtime_thresholds: vec![thr],
                demand_threshold: None,
            })
            .schedule(&dag_a, &spec)
            .unwrap();
            prop_assert!(s1.makespan() <= single.makespan());
        }
    }
}
